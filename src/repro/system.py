"""The Figure 2 architecture: queues, analyzer, scheduler, states.

This module glues the pieces into the operational structure the paper
draws: an IDS posts alerts into a bounded **alert queue**; the recovery
analyzer drains it, emitting units of recovery tasks into a bounded
**recovery-task queue**; the scheduler executes recovery (and normal)
tasks.  The system is always in one of three states (Section IV-C):

- **NORMAL** — both queues empty; normal tasks execute freely;
- **SCAN** — alerts queued; the analyzer works, recovery tasks are *not*
  executed (a redo might read data a fresh alert is about to condemn);
- **RECOVERY** — alert queue empty, recovery units queued; the scheduler
  executes them.

Semantics faithfully modeled:

- when the recovery queue is full, the analyzer *blocks* (scan steps
  refuse to run) and the alert queue fills; once it is also full,
  further alerts are **lost** (Section IV-E) — the loss the CTMC's
  Definition 3 measures;
- under the strict-correctness strategy, normal-task submission is
  refused while damage analysis is incomplete (Theorem 4's consequence:
  "we cannot run any normal task until all malicious tasks reported by
  the IDS have been processed").

The underlying repair uses the :class:`~repro.core.healer.Healer`, which
assumes one heal per log epoch; the system therefore executes all queued
recovery units in one batch when RECOVERY begins (the paper likewise
requires the alert queue to drain before recovery runs).
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.analyzer import RecoveryAnalyzer
from repro.core.epochs import EpochManager
from repro.core.healer import HealReport, Healer
from repro.core.plan import RecoveryPlan
from repro.core.strategies import RecoveryStrategy
from repro.errors import RecoveryError, SchedulingError
from repro.ids.alerts import Alert, BoundedQueue
from repro.obs.events import (
    AlertEnqueued,
    AlertLost,
    EventBus,
    HealFinished,
    HealStarted,
    NormalTaskRefused,
    StateTransition,
    UnitEmitted,
)
from repro.obs.perf import PhaseProfiler
from repro.workflow.data import DataStore
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec

__all__ = ["SystemState", "SelfHealingSystem"]


class SystemState(str, Enum):
    """The three operating states of Section IV-C."""

    NORMAL = "NORMAL"
    SCAN = "SCAN"
    RECOVERY = "RECOVERY"


class SelfHealingSystem:
    """Operational self-healing workflow system (Figure 2).

    Parameters
    ----------
    store, log, specs_by_instance:
        The workflow system being protected.  Alternatively pass
        ``manager`` (an :class:`~repro.core.epochs.EpochManager`) and
        leave these ``None``: the system then protects whatever the
        manager currently holds, heals through ``manager.heal`` (which
        rolls the epoch), and keeps working across attack waves — the
        mode the fleet control plane runs every tenant in.
    alert_buffer:
        Capacity of the IDS-alert queue.
    recovery_buffer:
        Capacity of the recovery-task queue (the performance-critical
        buffer of Section IV-E).
    strategy:
        Concurrency strategy (Section III-D); only ``STRICT`` changes
        behaviour here (normal-task gating).
    bus:
        Optional :class:`repro.obs.events.EventBus`; when attached, the
        system publishes typed events (alert enqueued/lost, scan steps,
        unit emissions, state transitions, heal lifecycle).  ``None``
        (the default) makes every instrumentation site a single ``None``
        check — no events are built.
    clock:
        Zero-argument callable supplying event timestamps; defaults to
        ``time.monotonic``.  Inject a
        :class:`repro.obs.tracing.ManualClock` to stamp events with
        simulated time.
    verify:
        Opt-in N-version safety net: when ``True``, every plan the
        analyzer emits is re-derived from first principles by the
        independent checker (:func:`repro.lint.verify_plan` — shares no
        code with the analyzer) before it is queued; a discrepancy
        raises :class:`~repro.errors.RecoveryError` instead of healing
        from a wrong plan.  Off by default (it re-traverses the log per
        alert).
    profiler:
        Optional :class:`~repro.obs.perf.PhaseProfiler`; when attached,
        the pipeline attributes its wall time to phases — ``analyze``
        (with the analyzer's closure/plan and the verifier's
        ``analyze.verify`` splits), ``schedule``, ``heal`` (with the
        healer's undo/settle/reconcile splits) — and records each
        alert's queue dwell as the sim-time ``buffer-wait`` line item.
        No-op when ``None``.
    """

    def __init__(
        self,
        store: Optional[DataStore] = None,
        log: Optional[SystemLog] = None,
        specs_by_instance: Optional[Mapping[str, WorkflowSpec]] = None,
        alert_buffer: int = 15,
        recovery_buffer: int = 15,
        strategy: RecoveryStrategy = RecoveryStrategy.STRICT,
        bus: Optional[EventBus] = None,
        clock: Optional[Callable[[], float]] = None,
        verify: bool = False,
        manager: Optional[EpochManager] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if manager is not None:
            if (store is not None or log is not None
                    or specs_by_instance is not None):
                raise ValueError(
                    "pass either manager= or store/log/specs_by_instance, "
                    "not both"
                )
        elif store is None or log is None or specs_by_instance is None:
            raise ValueError(
                "store, log and specs_by_instance are required without "
                "a manager"
            )
        self._manager = manager
        self._store = store
        self._log = log
        self._specs = (dict(specs_by_instance)
                       if specs_by_instance is not None else None)
        self._alerts: BoundedQueue[Alert] = BoundedQueue(alert_buffer)
        self._plans: BoundedQueue[RecoveryPlan] = BoundedQueue(recovery_buffer)
        self._strategy = strategy
        self._bus = bus
        self._clock = clock if clock is not None else _time.monotonic  # lint: allow[DET001] injectable clock; wall time is the live default
        # The queues publish their own typed drop events, so rejections
        # are observable with their clock time even on call paths that
        # never reach the system-level AlertLost instrumentation.
        self._alerts.instrument("alert", bus, self._clock)
        self._plans.instrument("recovery", bus, self._clock)
        # In manager mode the log and spec set roll with every heal, so
        # the analyzer is rebuilt per scan (its constructor is cheap —
        # dependency analysis is lazy); standalone mode keeps one.
        self._profiler = profiler
        self._analyzer = (
            None if manager is not None
            else RecoveryAnalyzer(log, self._specs, bus=bus,
                                  clock=self._clock, profiler=profiler)
        )
        self._verify = verify
        self._heals: List[HealReport] = []
        self._last_state = self.state
        #: uid → clock time at enqueue, for buffer-wait attribution.
        self._enqueued_at: Dict[str, float] = {}

    # -- the protected world (epoch-aware in manager mode) ------------------

    @property
    def manager(self) -> Optional[EpochManager]:
        """The epoch manager, when running in manager mode."""
        return self._manager

    def _current_log(self) -> SystemLog:
        if self._manager is not None:
            return self._manager.log
        return self._log  # type: ignore[return-value]

    def _current_specs(self) -> Dict[str, WorkflowSpec]:
        if self._manager is not None:
            return self._manager.specs_by_instance
        return self._specs  # type: ignore[return-value]

    def _current_store(self) -> DataStore:
        if self._manager is not None:
            return self._manager.store
        return self._store  # type: ignore[return-value]

    # -- observable state ---------------------------------------------------

    @property
    def state(self) -> SystemState:
        """Current state per Section IV-C."""
        if len(self._alerts):
            return SystemState.SCAN
        if len(self._plans):
            return SystemState.RECOVERY
        return SystemState.NORMAL

    @property
    def alerts_queued(self) -> int:
        """Alerts waiting for the analyzer."""
        return len(self._alerts)

    @property
    def recovery_units_queued(self) -> int:
        """Units of recovery tasks waiting for the scheduler."""
        return sum(p.units for p in self._plans)

    @property
    def alerts_lost(self) -> int:
        """Alerts rejected because the alert queue was full."""
        return self._alerts.lost

    @property
    def heal_reports(self) -> List[HealReport]:
        """Reports of completed recoveries, oldest first."""
        return list(self._heals)

    @property
    def strategy(self) -> RecoveryStrategy:
        """The configured concurrency strategy."""
        return self._strategy

    @property
    def alert_queue(self) -> BoundedQueue:
        """The bounded IDS-alert queue (read access for instrumentation)."""
        return self._alerts

    @property
    def recovery_queue(self) -> BoundedQueue:
        """The bounded recovery-plan queue (read access for
        instrumentation)."""
        return self._plans

    # -- instrumentation ----------------------------------------------------

    def _note_state(self) -> None:
        """Publish a StateTransition if the operating state changed."""
        new = self.state
        if new is not self._last_state:
            self._bus.publish(StateTransition(
                self._clock(), old=self._last_state.value, new=new.value,
            ))
            self._last_state = new

    # -- the three flows ---------------------------------------------------------

    def submit_alert(self, alert: Union[Alert, str]) -> bool:
        """Offer an IDS alert; ``False`` when it was lost (queue full)."""
        if isinstance(alert, str):
            alert = Alert(0.0, alert)
        accepted = self._alerts.offer(alert)
        if accepted and self._profiler is not None:
            self._enqueued_at[alert.uid] = self._clock()
        if self._bus is not None and self._bus.active:
            cls = AlertEnqueued if accepted else AlertLost
            self._bus.publish(cls(
                self._clock(), uid=alert.uid,
                queue_depth=len(self._alerts),
            ))
            self._note_state()
        return accepted

    def scan_step(self) -> Optional[RecoveryPlan]:
        """Let the analyzer process one queued alert.

        Returns the produced recovery unit, or ``None`` when there is
        nothing to scan or the analyzer is blocked by a full recovery
        queue (Section IV-E).
        """
        if not self._alerts or self._plans.full:
            return None
        alert = self._alerts.pop()
        prof = self._profiler
        if prof is not None:
            queued_at = self._enqueued_at.pop(alert.uid, None)
            if queued_at is not None:
                # Queue dwell in the system clock's units (sim time when
                # a ManualClock is injected) — no wall time burns while
                # an alert waits, so the wall side stays zero.
                prof.add_at(("buffer-wait",), 0.0,
                            sim=self._clock() - queued_at)
        with (prof.phase("analyze") if prof is not None
              else nullcontext()):
            analyzer = self._analyzer
            if analyzer is None:  # manager mode: bind the current epoch
                analyzer = RecoveryAnalyzer(
                    self._manager.log, self._manager.specs_by_instance,
                    bus=self._bus, clock=self._clock, profiler=prof,
                )
            plan = analyzer.analyze(
                [alert], outstanding=list(self._plans)
            )
            if self._verify:
                self._check_plan(plan)
        self._plans.push(plan)
        if self._bus is not None and self._bus.active:
            # Stamp the queued plan's claimed blast radius so the
            # conformance monitor can hold it against the Theorem 1/2
            # decision events of this same scan (claim-consistency).
            self._bus.publish(UnitEmitted(
                self._clock(), units=plan.units,
                queue_depth=len(self._plans),
                claimed=True,
                claimed_undo=tuple(sorted(plan.undo_analysis.definite)),
                claimed_redo=tuple(sorted(plan.redo_analysis.definite)),
            ))
            self._note_state()
        return plan

    def _check_plan(self, plan: RecoveryPlan) -> None:
        """Run the independent plan verifier; raise on any discrepancy.

        Imported lazily so the lint package stays optional on the hot
        path — constructing the system with ``verify=False`` (the
        default) never touches it.
        """
        from repro.lint.plan_verifier import verify_plan

        prof = self._profiler
        with (prof.phase("analyze.verify") if prof is not None
              else nullcontext()):
            findings = verify_plan(self._current_log(),
                                   self._current_specs(), plan)
        if findings:
            detail = "; ".join(
                f"{d.rule}: {d.message}" for d in findings[:3]
            )
            raise RecoveryError(
                f"independent plan verification failed with "
                f"{len(findings)} finding(s) — {detail}"
            )

    def recovery_step(
        self, extra_uids: Tuple[str, ...] = ()
    ) -> Optional[HealReport]:
        """Execute the queued recovery units (RECOVERY state only).

        All queued units are executed as one batch heal — recovery can
        only run once the alert queue is empty, and a batch is exactly
        the paper's "all damages of the system are identified" point.
        Returns the heal report, or ``None`` outside RECOVERY.

        ``extra_uids`` are out-of-band administrator reports (Section
        IV-D: alerts lost to a full queue are ultimately reported by
        the administrator) folded into this batch — essential in
        manager mode, where the epoch rolls at the commit and uids of
        the just-archived epoch would be unreachable afterwards.
        """
        if self.state is not SystemState.RECOVERY:
            return None
        uids: List[str] = []
        plans: List[RecoveryPlan] = []
        while self._plans:
            plan = self._plans.pop()
            plans.append(plan)
            uids.extend(plan.alert_uids)
        uids.extend(extra_uids)
        observed = self._bus is not None and self._bus.active
        prof = self._profiler
        started = self._clock() if observed else 0.0
        if observed:
            self._bus.publish(HealStarted(started, malicious=tuple(uids)))
            with (prof.phase("schedule") if prof is not None
                  else nullcontext()):
                self._publish_schedule(plans)
        with (prof.phase("heal") if prof is not None else nullcontext()):
            if self._manager is not None:
                # The manager heals against its epoch baseline and rolls
                # the epoch, so the system keeps protecting the
                # post-heal world.
                report = self._manager.heal(uids, bus=self._bus,
                                            clock=self._clock,
                                            profiler=prof)
            else:
                healer = Healer(self._store, self._log, self._specs,
                                bus=self._bus, clock=self._clock,
                                profiler=prof)
                report = healer.heal(uids)
        self._heals.append(report)
        if observed:
            now = self._clock()
            self._bus.publish(HealFinished(
                now,
                undone=len(report.undone),
                redone=len(report.redone),
                kept=len(report.kept),
                abandoned=len(report.abandoned),
                new_executions=len(report.new_executions),
                duration=now - started,
            ))
            self._note_state()
        return report

    def _publish_schedule(self, plans: List[RecoveryPlan]) -> None:
        """Emit the realized dispatch order of the batch's recovery
        actions as :class:`~repro.obs.events.ActionDispatched` events.

        Each plan's Theorem 3 order is driven through the instrumented
        :class:`~repro.workflow.scheduler.PartialOrderScheduler` with a
        no-op executor (units dispatch FIFO, respecting the cross-unit
        constraints); deterministic tie-breaking makes the published
        schedule a pure function of the plans.
        """
        from repro.workflow.scheduler import PartialOrderScheduler

        for plan in plans:
            PartialOrderScheduler(
                plan.order, executor=lambda action: None,
                bus=self._bus, clock=self._clock,
            ).run()

    def normal_task_admissible(self) -> bool:
        """May a normal task run right now?

        Under strict correctness, normal tasks wait whenever damage
        analysis or repair is in progress; the risk strategies admit
        them always (accepting possible later repair).
        """
        if not self._strategy.blocks_normal_tasks:
            return True
        admissible = self.state is SystemState.NORMAL
        if not admissible and self._bus is not None and self._bus.active:
            self._bus.publish(NormalTaskRefused(
                self._clock(), state=self.state.value,
            ))
        return admissible

    def run_to_quiescence(self, max_steps: int = 100_000) -> SystemState:
        """Drive scan and recovery until the system returns to NORMAL.

        "If there are no further intrusions, the recovery will
        definitely be terminated" — this is that loop.
        """
        for _ in range(max_steps):
            if self.state is SystemState.SCAN:
                if self.scan_step() is None and self._plans.full:
                    # Analyzer blocked with alerts pending: the paper's
                    # deadlock-by-overflow; execute recovery to drain.
                    raise RecoveryError(
                        "analyzer blocked: recovery queue full while "
                        "alerts are pending — recovery cannot start "
                        "until the alert queue drains (increase the "
                        "recovery buffer)"
                    )
            elif self.state is SystemState.RECOVERY:
                self.recovery_step()
            else:
                return SystemState.NORMAL
        raise SchedulingError(
            f"system did not quiesce within {max_steps} steps"
        )
