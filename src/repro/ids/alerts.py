"""IDS alerts and the bounded queues of the recovery architecture.

Figure 2 of the paper shows two queues: the queue of IDS alerts feeding
the recovery analyzer, and the queue of recovery tasks feeding the
scheduler.  Both are finite in a real system (Section IV-E); when the
alert queue overflows, alerts are *lost* — the quantity the CTMC's loss
probability measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import QueueFullError
from repro.obs.events import EventBus, QueueItemDropped

__all__ = ["Alert", "BoundedQueue"]

T = TypeVar("T")


@dataclass(frozen=True, order=True)
class Alert:
    """One IDS alert: a task instance reported as malicious.

    Attributes
    ----------
    detected_at:
        Simulation / wall-clock time of the report (alerts order by it).
    uid:
        Uid of the reported task instance.
    genuine:
        ``False`` for false alarms (the uid does not denote a truly malicious
        instance); the recovery analyzer treats both alike, which lets
        experiments measure the cost of false positives.
    """

    detected_at: float
    uid: str
    genuine: bool = True


#: Instrumentation hook: called as ``hook(op, queue)`` with ``op`` one
#: of ``"offer"``, ``"lost"``, ``"pop"`` after the operation applied.
QueueHook = Callable[[str, "BoundedQueue"], None]


class BoundedQueue(Generic[T]):
    """FIFO queue with finite capacity and loss accounting.

    ``offer`` returns ``False`` (and counts a loss) when the queue is
    full; ``push`` raises instead.  Used for both the alert queue and the
    recovery-task queue.

    Besides loss counts the queue tracks its **high-water mark** — the
    maximum simultaneous occupancy since creation or the last
    :meth:`reset_stats` — which is what the CTMC comparison and the
    metrics layer need (occupancy, not just losses).  An optional
    instrumentation hook (:meth:`set_hook`) observes every mutation;
    when unset the only overhead is one ``None`` check per operation.
    """

    def __init__(self, capacity: int,
                 hook: Optional[QueueHook] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._items: Deque[T] = deque()
        self._lost = 0
        self._accepted = 0
        self._high_water = 0
        self._hook = hook
        self._name = ""
        self._bus: Optional[EventBus] = None
        self._clock: Optional[Callable[[], float]] = None

    @property
    def capacity(self) -> int:
        """Maximum number of queued items."""
        return self._capacity

    @property
    def lost(self) -> int:
        """Number of items rejected because the queue was full."""
        return self._lost

    @property
    def accepted(self) -> int:
        """Number of items successfully enqueued over the queue's life."""
        return self._accepted

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy since the last stats reset."""
        return self._high_water

    def set_hook(self, hook: Optional[QueueHook]) -> None:
        """Install (or, with ``None``, remove) the instrumentation hook."""
        self._hook = hook

    def instrument(self, name: str, bus: Optional[EventBus],
                   clock: Callable[[], float]) -> None:
        """Make the queue publish a typed
        :class:`~repro.obs.events.QueueItemDropped` on every rejection.

        The queue itself owns the emission (not the code calling
        ``offer``), so windowed loss estimators and the flight recorder
        see *every* drop with its clock time, even on call paths that
        bypass the system-level instrumentation.  ``name`` labels which
        queue dropped (``"alert"`` / ``"recovery"``); ``bus=None``
        removes the instrumentation.
        """
        self._name = name
        self._bus = bus
        self._clock = clock

    def reset_stats(self) -> None:
        """Zero the loss/accepted counters and re-base the high-water
        mark at the current occupancy (queued items are untouched)."""
        self._lost = 0
        self._accepted = 0
        self._high_water = len(self._items)

    def offer(self, item: T) -> bool:
        """Enqueue ``item`` if capacity allows; count a loss otherwise."""
        if len(self._items) >= self._capacity:
            self._lost += 1
            if self._bus is not None and self._clock is not None:
                self._bus.publish(QueueItemDropped(
                    self._clock(), queue=self._name,
                    depth=len(self._items), lost_total=self._lost,
                ))
            if self._hook is not None:
                self._hook("lost", self)
            return False
        self._items.append(item)
        self._accepted += 1
        if len(self._items) > self._high_water:
            self._high_water = len(self._items)
        if self._hook is not None:
            self._hook("offer", self)
        return True

    def push(self, item: T) -> None:
        """Enqueue ``item`` or raise :class:`QueueFullError`."""
        if len(self._items) >= self._capacity:
            # push's failure is an error, not a loss
            raise QueueFullError(
                f"queue full (capacity {self._capacity})"
            )
        self.offer(item)

    def pop(self) -> T:
        """Dequeue the oldest item."""
        item = self._items.popleft()
        if self._hook is not None:
            self._hook("pop", self)
        return item

    def peek(self) -> T:
        """Oldest item without dequeuing."""
        return self._items[0]

    @property
    def full(self) -> bool:
        """True when at capacity."""
        return len(self._items) >= self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoundedQueue({len(self._items)}/{self._capacity}, "
            f"lost={self._lost})"
        )
