"""IDS alerts and the bounded queues of the recovery architecture.

Figure 2 of the paper shows two queues: the queue of IDS alerts feeding
the recovery analyzer, and the queue of recovery tasks feeding the
scheduler.  Both are finite in a real system (Section IV-E); when the
alert queue overflows, alerts are *lost* — the quantity the CTMC's loss
probability measures.

The fleet control plane (:mod:`repro.fleet`) multiplexes every tenant's
alerts through one :class:`PriorityBoundedQueue`: the same bounded
semantics, but items carry a priority class (BREACH-tenant alerts
preempt OK-tenant alerts) with FIFO order preserved *within* each
class.  Queues are not internally locked — the architecture admits and
drains them in serial phases; only the obs layer
(:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.events.EventBus`) is shared across fleet workers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import QueueFullError
from repro.obs.events import EventBus, QueueItemDropped
from repro.obs.perf import bump as perf_bump

__all__ = ["Alert", "BoundedQueue", "PriorityBoundedQueue"]

T = TypeVar("T")


@dataclass(frozen=True, order=True)
class Alert:
    """One IDS alert: a task instance reported as malicious.

    Attributes
    ----------
    detected_at:
        Simulation / wall-clock time of the report (alerts order by it).
    uid:
        Uid of the reported task instance.
    genuine:
        ``False`` for false alarms (the uid does not denote a truly malicious
        instance); the recovery analyzer treats both alike, which lets
        experiments measure the cost of false positives.
    """

    detected_at: float
    uid: str
    genuine: bool = True


#: Instrumentation hook: called as ``hook(op, queue)`` with ``op`` one
#: of ``"offer"``, ``"lost"``, ``"pop"`` after the operation applied.
QueueHook = Callable[[str, "BoundedQueue"], None]


class BoundedQueue(Generic[T]):
    """FIFO queue with finite capacity and loss accounting.

    ``offer`` returns ``False`` (and counts a loss) when the queue is
    full; ``push`` raises instead.  Used for both the alert queue and the
    recovery-task queue.

    Besides loss counts the queue tracks its **high-water mark** — the
    maximum simultaneous occupancy since creation or the last
    :meth:`reset_stats` — which is what the CTMC comparison and the
    metrics layer need (occupancy, not just losses).  An optional
    instrumentation hook (:meth:`set_hook`) observes every mutation;
    when unset the only overhead is one ``None`` check per operation.

    Storage is accessed only through the ``_store`` / ``_take`` /
    ``_peek_next`` / ``_size`` / ``_iter_items`` primitives, so
    subclasses (:class:`PriorityBoundedQueue`) can change the queueing
    discipline without touching the capacity, loss-accounting,
    high-water, hook, or drop-event machinery.
    """

    def __init__(self, capacity: int,
                 hook: Optional[QueueHook] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._items: Deque[T] = deque()
        self._lost = 0
        self._accepted = 0
        self._high_water = 0
        self._hook = hook
        self._name = ""
        self._bus: Optional[EventBus] = None
        self._clock: Optional[Callable[[], float]] = None

    # -- storage primitives (the only methods touching the backing
    # -- container; subclasses override these) ----------------------------

    def _size(self) -> int:
        return len(self._items)

    def _store(self, item: T) -> None:
        self._items.append(item)

    def _take(self) -> T:
        return self._items.popleft()

    def _peek_next(self) -> T:
        return self._items[0]

    def _iter_items(self) -> Iterator[T]:
        return iter(self._items)

    def _class_of(self, item: T) -> int:
        """Priority class of ``item`` (base queue: everything is 0)."""
        return 0

    def _make_room(self, item: T) -> bool:
        """Try to make room for ``item`` when at capacity.

        The base FIFO queue never evicts; subclasses may (priority
        preemption).  Returns ``True`` when a slot was freed.
        """
        return False

    # -- stats -------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of queued items."""
        return self._capacity

    @property
    def lost(self) -> int:
        """Number of items rejected because the queue was full."""
        return self._lost

    @property
    def accepted(self) -> int:
        """Number of items successfully enqueued over the queue's life."""
        return self._accepted

    @property
    def high_water(self) -> int:
        """Maximum simultaneous occupancy since the last stats reset."""
        return self._high_water

    def set_hook(self, hook: Optional[QueueHook]) -> None:
        """Install (or, with ``None``, remove) the instrumentation hook."""
        self._hook = hook

    def instrument(self, name: str, bus: Optional[EventBus],
                   clock: Callable[[], float]) -> None:
        """Make the queue publish a typed
        :class:`~repro.obs.events.QueueItemDropped` on every rejection.

        The queue itself owns the emission (not the code calling
        ``offer``), so windowed loss estimators and the flight recorder
        see *every* drop with its clock time, even on call paths that
        bypass the system-level instrumentation.  ``name`` labels which
        queue dropped (``"alert"`` / ``"recovery"``); ``bus=None``
        removes the instrumentation.
        """
        self._name = name
        self._bus = bus
        self._clock = clock

    def reset_stats(self) -> None:
        """Zero the loss/accepted counters and re-base the high-water
        mark at the current occupancy (queued items are untouched)."""
        self._lost = 0
        self._accepted = 0
        self._high_water = self._size()

    def _note_lost(self, item: T) -> None:
        """Account one rejected (or evicted) item and publish its drop."""
        self._lost += 1
        perf_bump("queue_evictions")
        if self._bus is not None and self._clock is not None:
            self._bus.publish(QueueItemDropped(
                self._clock(), queue=self._name,
                depth=self._size(), lost_total=self._lost,
                priority=self._class_of(item),
            ))
        if self._hook is not None:
            self._hook("lost", self)

    def offer(self, item: T) -> bool:
        """Enqueue ``item`` if capacity allows; count a loss otherwise."""
        if self._size() >= self._capacity and not self._make_room(item):
            self._note_lost(item)
            return False
        self._store(item)
        self._accepted += 1
        if self._size() > self._high_water:
            self._high_water = self._size()
        if self._hook is not None:
            self._hook("offer", self)
        return True

    def push(self, item: T) -> None:
        """Enqueue ``item`` or raise :class:`QueueFullError`.

        ``push`` never evicts — a full queue is an error even for
        priority queues with preemption enabled (callers that want
        preemption use :meth:`offer`).
        """
        if self._size() >= self._capacity:
            # push's failure is an error, not a loss
            raise QueueFullError(
                f"queue full (capacity {self._capacity})"
            )
        self.offer(item)

    def pop(self) -> T:
        """Dequeue the next item (oldest; for priority queues, oldest
        of the most urgent class)."""
        item = self._take()
        if self._hook is not None:
            self._hook("pop", self)
        return item

    def peek(self) -> T:
        """Next item without dequeuing."""
        return self._peek_next()

    @property
    def full(self) -> bool:
        """True when at capacity."""
        return self._size() >= self._capacity

    def __len__(self) -> int:
        return self._size()

    def __bool__(self) -> bool:
        return self._size() > 0

    def __iter__(self) -> Iterator[T]:
        return self._iter_items()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self._size()}/{self._capacity}, "
            f"lost={self._lost})"
        )


class PriorityBoundedQueue(BoundedQueue[T]):
    """Bounded queue with priority classes and optional preemption.

    Items are assigned a class in ``[0, classes)`` by ``priority_of``
    (lower class number = more urgent); :meth:`pop` serves the oldest
    item of the most urgent non-empty class, and order *within* a class
    is strictly FIFO.  Capacity, loss accounting, ``high_water``,
    ``reset_stats`` and drop-event instrumentation behave exactly as in
    :class:`BoundedQueue`; the published
    :class:`~repro.obs.events.QueueItemDropped` additionally carries
    the rejected item's class, and :attr:`lost_by_class` /
    :attr:`accepted_by_class` break the counters down per class.

    With ``evict_lower=True`` an arrival into a full queue may preempt:
    the *newest* item of the least urgent class less urgent than the
    arrival is evicted (counted as a loss of the evicted item's class)
    and the arrival admitted.  An arrival that is not more urgent than
    everything's tail is rejected as usual — total occupancy never
    exceeds ``capacity``.
    """

    def __init__(
        self,
        capacity: int,
        classes: int = 3,
        priority_of: Optional[Callable[[T], int]] = None,
        evict_lower: bool = False,
        hook: Optional[QueueHook] = None,
    ) -> None:
        if classes < 1:
            raise ValueError(f"classes must be >= 1, got {classes}")
        super().__init__(capacity, hook)
        self._classes = classes
        self._priority_of = priority_of
        self._evict_lower = evict_lower
        self._lanes: List[Deque[T]] = [deque() for _ in range(classes)]
        self._lost_by_class = [0] * classes
        self._accepted_by_class = [0] * classes

    # -- storage primitives ------------------------------------------------

    def _size(self) -> int:
        return sum(len(lane) for lane in self._lanes)

    def _class_of(self, item: T) -> int:
        cls = self._priority_of(item) if self._priority_of else 0
        if not 0 <= cls < self._classes:
            raise ValueError(
                f"priority class {cls} outside [0, {self._classes})"
            )
        return cls

    def _store(self, item: T) -> None:
        cls = self._class_of(item)
        self._lanes[cls].append(item)
        self._accepted_by_class[cls] += 1

    def _take(self) -> T:
        for lane in self._lanes:
            if lane:
                return lane.popleft()
        raise IndexError("pop from an empty PriorityBoundedQueue")

    def _peek_next(self) -> T:
        for lane in self._lanes:
            if lane:
                return lane[0]
        raise IndexError("peek at an empty PriorityBoundedQueue")

    def _iter_items(self) -> Iterator[T]:
        """Items in drain order: class by class, FIFO within a class."""
        for lane in self._lanes:
            for item in lane:
                yield item

    def _make_room(self, item: T) -> bool:
        """Preempt the newest least-urgent item when allowed."""
        if not self._evict_lower:
            return False
        cls = self._class_of(item)
        for victim_cls in range(self._classes - 1, cls, -1):
            lane = self._lanes[victim_cls]
            if lane:
                victim = lane.pop()  # newest of the class: least regret
                self._note_lost(victim)
                return True
        return False

    # -- per-class stats ---------------------------------------------------

    @property
    def classes(self) -> int:
        """Number of priority classes."""
        return self._classes

    @property
    def lost_by_class(self) -> Tuple[int, ...]:
        """Losses (rejections + evictions) broken down by class."""
        return tuple(self._lost_by_class)

    @property
    def accepted_by_class(self) -> Tuple[int, ...]:
        """Accepted items broken down by class."""
        return tuple(self._accepted_by_class)

    def depth_of_class(self, cls: int) -> int:
        """Current occupancy of one class's lane."""
        return len(self._lanes[cls])

    def _note_lost(self, item: T) -> None:
        self._lost_by_class[self._class_of(item)] += 1
        super()._note_lost(item)

    def reset_stats(self) -> None:
        """Zero all counters (including the per-class breakdowns) and
        re-base the high-water mark, exactly like the base queue."""
        super().reset_stats()
        self._lost_by_class = [0] * self._classes
        self._accepted_by_class = [0] * self._classes
