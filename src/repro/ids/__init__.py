"""Attack injection and intrusion detection substrate.

The paper assumes an independent IDS (citing Lee & Stolfo) that
"periodically reports intrusions... by putting IDS alerts in a queue", and
attackers who inject malicious tasks or forge task data.  This package
provides both sides:

- :mod:`repro.ids.attacks` — tamper hooks that corrupt task outputs or
  forge whole malicious runs, recording ground truth for evaluation;
- :mod:`repro.ids.alerts` — alerts and the bounded queues of the recovery
  architecture (Figure 2);
- :mod:`repro.ids.detector` — an IDS simulator with detection delay,
  detection probability and false alarms.
"""

from repro.ids.alerts import Alert, BoundedQueue
from repro.ids.attacks import (
    AttackCampaign,
    OutputOverride,
    OutputTransform,
    TargetSelector,
)
from repro.ids.detector import DetectorConfig, IntrusionDetector

__all__ = [
    "Alert",
    "BoundedQueue",
    "AttackCampaign",
    "OutputOverride",
    "OutputTransform",
    "TargetSelector",
    "IntrusionDetector",
    "DetectorConfig",
]
