"""Attack models.

The paper's threat model (Section I): attackers who penetrated the system
"inject malicious tasks or incorrect data into the workflow system" —
e.g. forged bank transactions, or travel bookings carrying forged credit
card data.  We model an attack as a *tamper hook* installed in the engine:
when a targeted task instance executes, its outputs are silently replaced.
The campaign records exactly which instances it tampered with — the ground
truth that the IDS observes imperfectly and that evaluation compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.workflow.task import TaskInstance

__all__ = [
    "TargetSelector",
    "OutputOverride",
    "OutputTransform",
    "AttackCampaign",
]


@dataclass(frozen=True)
class TargetSelector:
    """Selects the task instances an attack applies to.

    ``None`` fields are wildcards: ``TargetSelector(task_id="t1")``
    matches ``t1`` in every workflow instance and every visit.
    """

    workflow_instance: Optional[str] = None
    task_id: Optional[str] = None
    number: Optional[int] = None

    def matches(self, instance: TaskInstance) -> bool:
        """Does ``instance`` fall under this selector?"""
        if (
            self.workflow_instance is not None
            and instance.workflow_instance != self.workflow_instance
        ):
            return False
        if self.task_id is not None and instance.task_id != self.task_id:
            return False
        if self.number is not None and instance.number != self.number:
            return False
        return True


class _Tamper:
    """One installed tampering rule (selector + payload)."""

    def __init__(
        self,
        selector: TargetSelector,
        payload: Callable[[Mapping[str, Any], Mapping[str, Any]], Mapping[str, Any]],
        label: str,
    ) -> None:
        self.selector = selector
        self.payload = payload
        self.label = label


def OutputOverride(**values: Any) -> Callable[
    [Mapping[str, Any], Mapping[str, Any]], Mapping[str, Any]
]:
    """Payload that replaces selected output objects with fixed values.

    Only objects the task already writes are overridden — an attacker
    forging values inside a legitimate task cannot widen its write set.
    """

    def payload(
        inputs: Mapping[str, Any], outputs: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        result = dict(outputs)
        for name, value in values.items():
            if name in result:
                result[name] = value
        return result

    return payload


def OutputTransform(
    fn: Callable[[Mapping[str, Any], Mapping[str, Any]], Mapping[str, Any]]
) -> Callable[[Mapping[str, Any], Mapping[str, Any]], Mapping[str, Any]]:
    """Payload that rewrites outputs with an arbitrary function of the
    task's inputs and genuine outputs (must keep the same key set)."""

    def payload(
        inputs: Mapping[str, Any], outputs: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        result = dict(fn(inputs, outputs))
        if set(result) != set(outputs):
            raise ValueError(
                "attack transform changed the task's write set: "
                f"{sorted(result)} != {sorted(outputs)}"
            )
        return result

    return payload


class AttackCampaign:
    """A set of tampering rules, usable as the engine's tamper hook.

    Example
    -------
    >>> campaign = AttackCampaign()
    >>> _ = campaign.corrupt_task("t1", amount=999_999)
    >>> # ... engine.interleave(runs, tamper=campaign) ...
    """

    def __init__(self) -> None:
        self._tampers: List[_Tamper] = []
        self._malicious: Dict[str, str] = {}  # uid -> label

    # -- configuring -----------------------------------------------------------

    def corrupt_task(
        self,
        task_id: str,
        workflow_instance: Optional[str] = None,
        number: Optional[int] = None,
        label: str = "",
        **values: Any,
    ) -> "AttackCampaign":
        """Forge fixed output values for matching executions of a task."""
        self._tampers.append(
            _Tamper(
                TargetSelector(workflow_instance, task_id, number),
                OutputOverride(**values),
                label or f"corrupt {task_id}",
            )
        )
        return self

    def transform_task(
        self,
        task_id: str,
        fn: Callable[[Mapping[str, Any], Mapping[str, Any]], Mapping[str, Any]],
        workflow_instance: Optional[str] = None,
        number: Optional[int] = None,
        label: str = "",
    ) -> "AttackCampaign":
        """Rewrite outputs of matching executions with ``fn(inputs, outputs)``."""
        self._tampers.append(
            _Tamper(
                TargetSelector(workflow_instance, task_id, number),
                OutputTransform(fn),
                label or f"transform {task_id}",
            )
        )
        return self

    def shift_outputs(
        self,
        task_id: Optional[str] = None,
        delta: int = 4_242,
        modulus: int = 10_007,
        workflow_instance: Optional[str] = None,
        number: Optional[int] = None,
        label: str = "",
    ) -> "AttackCampaign":
        """Shift every integer output of matching executions by
        ``delta`` modulo ``modulus``.

        The workhorse corruption of the generated campaigns: it both
        corrupts downstream data and can flip parity-based branch
        decisions (the Figure 1 phenomenon), exercising all four
        conditions of Theorem 1.
        """

        def tamper(inputs, outputs, _d=delta, _m=modulus):
            return {
                name: (int(value) + _d) % _m
                for name, value in outputs.items()
            }

        return self.transform_task(
            task_id,
            tamper,
            workflow_instance=workflow_instance,
            number=number,
            label=label or (
                f"shift {task_id or workflow_instance or '*'} by {delta}"
            ),
        )

    def forge_run(self, workflow_instance: str,
                  label: str = "") -> "AttackCampaign":
        """Mark an entire run as attacker-forged.

        Every task instance of the run is recorded as malicious even
        though its outputs are computed normally — this models a workflow
        instance the attacker started with stolen credentials (the forged
        bank transaction of the paper's introduction): the computation is
        "correct" but should never have happened.
        """
        self._tampers.append(
            _Tamper(
                TargetSelector(workflow_instance=workflow_instance),
                lambda inputs, outputs: outputs,
                label or f"forged run {workflow_instance}",
            )
        )
        return self

    # -- engine hook -------------------------------------------------------------

    def apply(
        self,
        instance: TaskInstance,
        inputs: Mapping[str, Any],
        outputs: Mapping[str, Any],
    ) -> Mapping[str, Any]:
        """Tamper hook called by the engine for every executed instance."""
        result: Mapping[str, Any] = outputs
        for tamper in self._tampers:
            if tamper.selector.matches(instance):
                result = tamper.payload(inputs, result)
                self._malicious[instance.uid] = tamper.label
        return result

    # -- ground truth ---------------------------------------------------------------

    @property
    def malicious_uids(self) -> Tuple[str, ...]:
        """Uids of every instance actually tampered with, in hit order."""
        return tuple(self._malicious)

    def label_of(self, uid: str) -> Optional[str]:
        """Label of the tamper that hit ``uid``, or ``None``."""
        return self._malicious.get(uid)

    def __len__(self) -> int:
        return len(self._tampers)
