"""Intrusion detection system simulator.

The paper treats the IDS as an independent black box that periodically
reports malicious tasks, possibly late and possibly incompletely: "the
recovery still depends on the accuracy of the IDS... we assume that all
corrupted tasks will ultimately be identified" (Section IV-D).  This
simulator reproduces those knobs:

- **detection probability** — per malicious instance, the chance the IDS
  (rather than the administrator) catches it;
- **detection delay** — exponential lag between commit and report;
- **false alarm rate** — spurious alerts naming innocent instances;
- **reporting period** — alerts are batched and released periodically.

Ground truth comes from an :class:`~repro.ids.attacks.AttackCampaign`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ids.alerts import Alert
from repro.ids.attacks import AttackCampaign
from repro.workflow.log import SystemLog

__all__ = ["DetectorConfig", "IntrusionDetector"]


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs of the simulated IDS.

    Attributes
    ----------
    detection_probability:
        Probability that a malicious instance is reported by the IDS at
        all.  Undetected instances can still be reported manually via
        :meth:`IntrusionDetector.administrator_report` (the paper's
        "identified by the administrator").
    mean_detection_delay:
        Mean of the exponential delay between an instance's commit and its
        alert becoming available.
    false_alarm_rate:
        Expected number of false alarms per inspected *innocent* log
        record (Bernoulli per record).
    report_period:
        Alerts are released in batches every ``report_period`` time units
        ("the IDS periodically reports intrusions").  ``0`` releases
        alerts as soon as their delay elapses.
    """

    detection_probability: float = 1.0
    mean_detection_delay: float = 0.0
    false_alarm_rate: float = 0.0
    report_period: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_probability <= 1.0:
            raise ValueError("detection_probability must be in [0, 1]")
        if self.mean_detection_delay < 0:
            raise ValueError("mean_detection_delay must be >= 0")
        if not 0.0 <= self.false_alarm_rate <= 1.0:
            raise ValueError("false_alarm_rate must be in [0, 1]")
        if self.report_period < 0:
            raise ValueError("report_period must be >= 0")


class IntrusionDetector:
    """Simulated IDS producing the alert stream the recovery consumes.

    Typical use: after (or while) workflows execute, call :meth:`inspect`
    with the current log and commit times, then :meth:`poll` to drain the
    alerts whose release time has arrived.
    """

    def __init__(
        self,
        campaign: AttackCampaign,
        config: Optional[DetectorConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._campaign = campaign
        self._config = config if config is not None else DetectorConfig()
        self._rng = rng if rng is not None else random.Random(0)
        self._inspected: Set[str] = set()
        self._pending: List[Alert] = []  # not yet released
        self._missed: List[str] = []     # malicious but never alerted

    @property
    def config(self) -> DetectorConfig:
        """The detector's configuration."""
        return self._config

    @property
    def missed(self) -> Tuple[str, ...]:
        """Malicious uids the IDS decided not to report (admin's job)."""
        return tuple(self._missed)

    # -- producing alerts ---------------------------------------------------

    def inspect(self, log: SystemLog, now: float = 0.0) -> int:
        """Examine log records not seen before; schedule alerts.

        Returns the number of new alerts scheduled.  Idempotent over
        already-inspected records.
        """
        cfg = self._config
        malicious = set(self._campaign.malicious_uids)
        scheduled = 0
        for record in log.normal_records():
            uid = record.uid
            if uid in self._inspected:
                continue
            self._inspected.add(uid)
            if uid in malicious:
                if self._rng.random() <= cfg.detection_probability:
                    at = now + self._delay()
                    self._pending.append(Alert(at, uid, genuine=True))
                    scheduled += 1
                else:
                    self._missed.append(uid)
            elif cfg.false_alarm_rate > 0 and (
                self._rng.random() < cfg.false_alarm_rate
            ):
                at = now + self._delay()
                self._pending.append(Alert(at, uid, genuine=False))
                scheduled += 1
        return scheduled

    def poll(self, now: float) -> List[Alert]:
        """Release every pending alert whose report time has arrived.

        With a nonzero ``report_period`` an alert is held until the first
        periodic report boundary at or after its detection time.
        """
        released: List[Alert] = []
        still: List[Alert] = []
        for alert in sorted(self._pending):
            if self._release_time(alert.detected_at) <= now:
                released.append(alert)
            else:
                still.append(alert)
        self._pending = still
        return released

    def drain(self) -> List[Alert]:
        """Release all pending alerts immediately (end of experiment)."""
        released = sorted(self._pending)
        self._pending = []
        return released

    def administrator_report(self, uid: str, now: float = 0.0) -> Alert:
        """Manually report an instance the IDS missed (Section IV-D: all
        corrupted tasks are ultimately identified by the administrator)."""
        if uid in self._missed:
            self._missed.remove(uid)
        alert = Alert(now, uid, genuine=True)
        self._pending.append(alert)
        return alert

    # -- internal --------------------------------------------------------------

    def _delay(self) -> float:
        mean = self._config.mean_detection_delay
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def _release_time(self, detected_at: float) -> float:
        period = self._config.report_period
        if period <= 0:
            return detected_at
        import math

        return math.ceil(detected_at / period) * period
