"""Tenant workload archetypes for the fleet control plane.

Each tenant of the fleet runs one of four workload archetypes — small
workflow families patterned on the repo's scenario suite (the Figure 1
branching shape, the banking balance ledger, a travel booking pair, a
supply chain) — under a Poisson attack process.  A
:class:`TenantProfile` bundles the workflow family with the queueing
parameters the paper's CTMC needs (λ, scan/recovery service times,
buffer sizes), so every tenant's health monitor gets a calibrated
:class:`~repro.obs.health.ModelPrediction` as its null model.

Predictions require a steady-state solve, so they are cached per
distinct queueing configuration: a 10k-tenant fleet drawn from the four
archetypes performs four solves, not ten thousand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.strategies import RecoveryStrategy
from repro.errors import FleetError
from repro.ids.attacks import AttackCampaign
from repro.obs.health import HealthConfig, ModelPrediction
from repro.sim.fullstack import FullStackConfig
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = [
    "TenantProfile",
    "GeneratedTenantProfile",
    "PROFILES",
    "resolve_mix",
    "prediction_for",
]


def _figure1_spec(name: str) -> WorkflowSpec:
    """Produce-then-consume pair in the Figure 1 shape: the first task
    writes the shared object the second one branches its output on."""
    return (
        workflow(name)
        .task("produce", reads=["x"], writes=["x", f"mark_{name}"],
              compute=lambda d: {"x": d["x"] + 1,
                                 f"mark_{name}": d["x"] + 1})
        .task("consume", reads=["x"], writes=[f"out_{name}"],
              compute=lambda d: {f"out_{name}": d["x"] * 2 + d["x"] % 2})
        .chain("produce", "consume")
        .build()
    )


def _banking_spec(name: str) -> WorkflowSpec:
    """The full-stack simulator's ledger victim: apply a delta to the
    shared balance and record a receipt (damage chains across runs)."""
    return (
        workflow(name)
        .task("apply", reads=["balance"],
              writes=["balance", f"receipt_{name}"],
              compute=lambda d: {
                  "balance": d["balance"] + 10,
                  f"receipt_{name}": d["balance"] + 10,
              })
        .build()
    )


def _travel_spec(name: str) -> WorkflowSpec:
    """Book-then-bill pair against a shared seat inventory."""
    return (
        workflow(name)
        .task("book", reads=["seats"],
              writes=["seats", f"res_{name}"],
              compute=lambda d: {"seats": d["seats"] - 1,
                                 f"res_{name}": d["seats"] - 1})
        .task("bill", reads=[f"res_{name}"], writes=[f"bill_{name}"],
              compute=lambda d: {f"bill_{name}": d[f"res_{name}"] * 3})
        .chain("book", "bill")
        .build()
    )


def _supply_spec(name: str) -> WorkflowSpec:
    """Order → ship → bill chain drawing down shared stock."""
    return (
        workflow(name)
        .task("order", reads=["stock"],
              writes=["stock", f"po_{name}"],
              compute=lambda d: {"stock": d["stock"] - 2,
                                 f"po_{name}": d["stock"] - 2})
        .task("ship", reads=[f"po_{name}"], writes=[f"ship_{name}"],
              compute=lambda d: {f"ship_{name}": d[f"po_{name}"] + 1})
        .task("bill", reads=[f"ship_{name}"], writes=[f"inv_{name}"],
              compute=lambda d: {f"inv_{name}": d[f"ship_{name}"] * 5})
        .chain("order", "ship", "bill")
        .build()
    )


@dataclass(frozen=True)
class TenantProfile:
    """One tenant archetype: workflow family + queueing parameters.

    ``spec_factory(instance_name)`` builds the per-attack workflow;
    ``attacked_task`` is the task whose output the attacker forges
    (always the first task, so corruption flows through the shared
    object into later runs); ``initial_data`` seeds the tenant's store.
    The queueing fields mirror :class:`~repro.sim.fullstack.FullStackConfig`
    and map onto the CTMC exactly the same way.
    """

    name: str
    spec_factory: Callable[[str], WorkflowSpec] = field(repr=False)
    attacked_task: str = "apply"
    attacked_object: str = "balance"
    initial_data: Tuple[Tuple[str, int], ...] = (("balance", 100),)
    arrival_rate: float = 0.25
    scan_time: float = 1.0 / 15.0
    unit_recovery_time: float = 1.0 / 20.0
    alert_buffer: int = 8
    recovery_buffer: int = 8
    health_config: Optional[HealthConfig] = None
    #: The tenant's Section III-D concurrency strategy.  Selects the
    #: conformance property pack its health monitor runs
    #: (:func:`repro.obs.monitor.strict_property_pack`): a
    #: ``RISK_NORMAL_ONLY`` tenant is not judged against
    #: ``task-within-heal``, which multi-version re-repairs
    #: legitimately break.  Surfaced per tenant in the fleet rollup.
    strategy: RecoveryStrategy = RecoveryStrategy.STRICT

    def effective_health_config(self) -> Optional[HealthConfig]:
        """The health config the tenant's monitor should run with.

        A non-strict :attr:`strategy` is authoritative: it is stamped
        onto the (possibly default) health config so the conformance
        monitor picks the matching property pack.  With the default
        ``STRICT`` strategy the explicit :attr:`health_config` passes
        through untouched (including any strategy *it* selects).
        """
        if self.strategy is RecoveryStrategy.STRICT:
            return self.health_config
        base = (self.health_config if self.health_config is not None
                else HealthConfig())
        return replace(base, strategy=self.strategy)

    def queueing_config(self) -> FullStackConfig:
        """This profile's knobs as a full-stack queueing config (the
        shared CTMC mapping lives there)."""
        return FullStackConfig(
            arrival_rate=self.arrival_rate,
            scan_time=self.scan_time,
            unit_recovery_time=self.unit_recovery_time,
            alert_buffer=self.alert_buffer,
            recovery_buffer=self.recovery_buffer,
        )

    def build_attack(
        self, seq: int
    ) -> Tuple[WorkflowSpec, AttackCampaign, str]:
        """The ``seq``-th attacked run of this tenant: returns the
        workflow spec, the tamper campaign, and the instance name."""
        name = f"atk{seq}"
        spec = self.spec_factory(name)
        campaign = AttackCampaign().transform_task(
            self.attacked_task,
            lambda inputs, outputs: {
                key: (value + 5000 if key == self.attacked_object
                      else value)
                for key, value in outputs.items()
            },
            workflow_instance=name,
        )
        return spec, campaign, name


def _web_spec(name: str) -> WorkflowSpec:
    """Request → render pair against a shared inventory — the web-shop
    tier of :mod:`repro.scenarios.web_app` at fleet scale."""
    return (
        workflow(name)
        .task("request", reads=["inventory"],
              writes=["inventory", f"cart_{name}"],
              compute=lambda d: {
                  "inventory": d["inventory"] - 1,
                  f"cart_{name}": d["inventory"] - 1,
              })
        .task("render", reads=[f"cart_{name}"], writes=[f"page_{name}"],
              compute=lambda d: {f"page_{name}": d[f"cart_{name}"] * 2 + 1})
        .chain("request", "render")
        .build()
    )


@dataclass(frozen=True)
class GeneratedTenantProfile(TenantProfile):
    """A tenant whose attacked runs are seeded random chains.

    The fuzzing harness (:mod:`repro.scenarios.fuzz`) uses this profile
    to drive the fleet control plane with campaign-specific traffic:
    each attacked run is a small task chain drawn from
    ``stable_seed(campaign_seed, seq)``, reading and (in its last task)
    writing the shared ``pool`` object — the contagion channel through
    which one tenant's corruption chains across its own later runs.
    Two profiles with the same ``campaign_seed`` draw identical attack
    streams (the *correlated* cross-tenant campaigns of the DSL).
    """

    #: Unused — attacked specs are generated, not factory-built.
    spec_factory: Optional[Callable[[str], WorkflowSpec]] = field(
        default=None, repr=False)
    initial_data: Tuple[Tuple[str, int], ...] = (("pool", 1),)
    campaign_seed: int = 0
    chain_length: int = 3
    delta: int = 4_242

    def build_attack(
        self, seq: int
    ) -> Tuple[WorkflowSpec, AttackCampaign, str]:
        from repro.scenarios.generate import MODULUS, stable_seed

        rng = random.Random(stable_seed(self.campaign_seed, seq))
        name = f"atk{seq}"
        length = max(2, self.chain_length)
        builder = workflow(name)
        prev_obj: Optional[str] = None
        prev_tid: Optional[str] = None
        for i in range(length):
            tid = f"r{i + 1}"
            own = f"{name}_o{i + 1}"
            last = i == length - 1
            if prev_obj is None:
                reads = ["pool"]
            elif last:
                reads = [prev_obj, "pool"]
            else:
                reads = [prev_obj]
            writes = [own, "pool"] if last else [own]
            weight, bias = rng.randint(1, 9), rng.randint(0, 999)

            def compute(d, _r=tuple(reads), _w=tuple(writes),
                        _a=weight, _b=bias):
                acc = _b
                for key in _r:
                    acc = (acc * _a + int(d[key])) % MODULUS
                return {w: (acc + j) % MODULUS for j, w in enumerate(_w)}

            builder.task(tid, reads=reads, writes=writes, compute=compute)
            if prev_tid is not None:
                builder.edge(prev_tid, tid)
            prev_obj, prev_tid = own, tid
        spec = builder.build()
        victim = f"r{rng.randint(1, length)}"
        campaign = AttackCampaign().shift_outputs(
            victim,
            delta=self.delta,
            modulus=MODULUS,
            workflow_instance=name,
            label=f"generated corrupt {name}:{victim}",
        )
        return spec, campaign, name


#: The built-in archetypes a fleet mix draws from.
PROFILES: Dict[str, TenantProfile] = {
    "figure1": TenantProfile(
        name="figure1", spec_factory=_figure1_spec,
        attacked_task="produce", attacked_object="x",
        initial_data=(("x", 7),), arrival_rate=0.2,
    ),
    "banking": TenantProfile(
        name="banking", spec_factory=_banking_spec,
        attacked_task="apply", attacked_object="balance",
        initial_data=(("balance", 100),), arrival_rate=0.25,
    ),
    "travel": TenantProfile(
        name="travel", spec_factory=_travel_spec,
        attacked_task="book", attacked_object="seats",
        initial_data=(("seats", 500),), arrival_rate=0.2,
    ),
    "supply": TenantProfile(
        name="supply", spec_factory=_supply_spec,
        attacked_task="order", attacked_object="stock",
        initial_data=(("stock", 1000),), arrival_rate=0.15,
    ),
    "web": TenantProfile(
        name="web", spec_factory=_web_spec,
        attacked_task="request", attacked_object="inventory",
        initial_data=(("inventory", 200),), arrival_rate=0.25,
    ),
}


def resolve_mix(mix: Sequence[str]) -> List[TenantProfile]:
    """Resolve archetype names to profiles; unknown names are a
    :class:`~repro.errors.FleetError` (the CLI's exit-3 path)."""
    if not mix:
        raise FleetError("attack mix must name at least one archetype")
    profiles = []
    for name in mix:
        profile = PROFILES.get(name)
        if profile is None:
            raise FleetError(
                f"unknown workload archetype {name!r}; available: "
                f"{', '.join(sorted(PROFILES))}"
            )
        profiles.append(profile)
    return profiles


#: Steady-state solves cached per distinct queueing configuration.
_PREDICTIONS: Dict[FullStackConfig, ModelPrediction] = {}


def prediction_for(profile: TenantProfile) -> ModelPrediction:
    """The calibrated CTMC prediction for ``profile``'s queueing
    config, computed once per distinct config (fleets re-use the same
    four archetypes thousands of times)."""
    cfg = profile.queueing_config()
    prediction = _PREDICTIONS.get(cfg)
    if prediction is None:
        prediction = ModelPrediction.from_stg(cfg.stg())
        _PREDICTIONS[cfg] = prediction
    return prediction
