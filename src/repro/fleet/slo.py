"""Fleet-level SLO aggregation: per-tenant verdicts into one view.

The fleet ``/slo`` endpoint needs one answer for "is the fleet
healthy?" plus a drill-down per tenant.  Aggregation reuses the obs
layer's associative machinery — :func:`~repro.obs.health.worst_state`
for the verdict and :func:`~repro.obs.health.merge_conformance` for the
counts — so the rollup is **invariant under tenant permutation and
shard repartition**: any grouping of tenants into sub-rollups, merged
in any order, produces the identical fleet view (pinned by a
hypothesis property test, mirroring the existing ``merge_conformance``
permutation test).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import FleetError
from repro.obs.health import (
    ConformanceReport,
    SloState,
    merge_conformance,
    worst_state,
)

__all__ = [
    "TenantVerdict",
    "FleetHealth",
    "rollup",
    "merge_health",
    "percentile",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (0 when empty).

    Nearest-rank (not interpolated) so the result is always an actually
    observed latency — the convention benchmark consumers expect.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise FleetError(f"percentile must be in [0, 100], got {q}")
    rank = max(int(math.ceil(q / 100.0 * len(sorted_values))), 1)
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class TenantVerdict:
    """One tenant's frozen health snapshot, as mergeable plain data."""

    tenant: str
    verdict: SloState
    report: ConformanceReport
    attacks: int = 0
    heals: int = 0
    audits_ok: bool = True
    latencies: Tuple[float, ...] = ()
    #: The Section III-D strategy whose conformance property pack
    #: judged this tenant (``"strict"`` unless the tenant profile
    #: selected otherwise) — the fleet rollup surfaces it so mixed
    #: fleets stay auditable per tenant.
    strategy: str = "strict"

    @property
    def conformance(self) -> SloState:
        """The tenant's LTLf strict-correctness SLO state (OK when the
        tenant's monitor ran without the conformance SLO)."""
        for name, value in self.report.slo_states:
            if name == "conformance":
                return SloState(value)
        return SloState.OK

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able row of the fleet drill-down table."""
        return {
            "tenant": self.tenant,
            "verdict": self.verdict.value,
            "strategy": self.strategy,
            "conformance": self.conformance.value,
            "violations": self.report.violations,
            "attacks": self.attacks,
            "alerts": self.report.arrivals,
            "lost": self.report.losses,
            "heals": self.heals,
            "audits_ok": self.audits_ok,
            "drift_count": self.report.drift_count,
        }


@dataclass(frozen=True)
class FleetHealth:
    """The fleet-wide rollup: worst-of verdict + merged counts.

    Holds its tenant verdicts sorted by tenant id, so two rollups over
    the same tenants are equal regardless of the order (or grouping)
    they were built from.
    """

    tenants: Tuple[TenantVerdict, ...]

    @property
    def verdict(self) -> SloState:
        """Worst verdict across the fleet (associative max-severity)."""
        return worst_state([t.verdict for t in self.tenants])

    @property
    def by_state(self) -> Dict[str, int]:
        """Tenant count per verdict state."""
        counts = {state.value: 0 for state in SloState}
        for t in self.tenants:
            counts[t.verdict.value] += 1
        return counts

    @property
    def by_strategy(self) -> Dict[str, int]:
        """Tenant count per conformance strategy — how many tenants
        are judged by the strict pack vs a relaxed one."""
        counts: Dict[str, int] = {}
        for t in self.tenants:
            counts[t.strategy] = counts.get(t.strategy, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def merged(self) -> ConformanceReport:
        """All tenants' conformance counts merged into one report."""
        return merge_conformance([t.report for t in self.tenants])

    @property
    def latencies(self) -> List[float]:
        """Every tenant's detect→heal latencies, sorted ascending."""
        out: List[float] = []
        for t in self.tenants:
            out.extend(t.latencies)
        out.sort()
        return out

    def worst_tenants(self, limit: int = 10) -> List[TenantVerdict]:
        """The most troubled tenants first (severity, then loss count,
        then id — a total order, so the list is deterministic)."""
        severity = {SloState.OK: 0, SloState.WARN: 1, SloState.BREACH: 2}
        return sorted(
            self.tenants,
            key=lambda t: (-severity[t.verdict], -t.report.losses,
                           t.tenant),
        )[:limit]

    def as_dict(self) -> Dict[str, Any]:
        """The fleet ``/slo`` schema (documented in docs/FLEET.md)."""
        lat = self.latencies
        return {
            "fleet": True,
            "tenants": len(self.tenants),
            "verdict": self.verdict.value,
            "by_state": self.by_state,
            "by_strategy": self.by_strategy,
            "alerts": self.merged.arrivals,
            "losses": self.merged.losses,
            "loss_fraction": self.merged.loss_fraction,
            "heals": sum(t.heals for t in self.tenants),
            "audits_ok": all(t.audits_ok for t in self.tenants),
            "drift_count": self.merged.drift_count,
            "violations": self.merged.violations,
            "latency": {
                "samples": len(lat),
                "p50": percentile(lat, 50),
                "p99": percentile(lat, 99),
                "max": lat[-1] if lat else 0.0,
            },
            "worst_tenants": [t.as_dict() for t in self.worst_tenants()],
            "merged": self.merged.as_dict(),
        }


def rollup(verdicts: Sequence[TenantVerdict]) -> FleetHealth:
    """Aggregate tenant verdicts into one :class:`FleetHealth`.

    Canonicalizes by tenant id, so the result is independent of input
    order.  Duplicate tenant ids are a :class:`~repro.errors.FleetError`
    (two shards claiming one tenant is a control-plane bug, and silently
    double-counting would corrupt the fleet counts).
    """
    if not verdicts:
        raise FleetError("cannot roll up zero tenant verdicts")
    ordered = tuple(sorted(verdicts, key=lambda t: t.tenant))
    for a, b in zip(ordered, ordered[1:]):
        if a.tenant == b.tenant:
            raise FleetError(
                f"duplicate tenant id {a.tenant!r} in fleet rollup"
            )
    return FleetHealth(tenants=ordered)


def merge_health(parts: Sequence[FleetHealth]) -> FleetHealth:
    """Merge per-shard-group rollups into the fleet rollup.

    ``merge_health([rollup(g) for g in partition]) == rollup(all)``
    for every partition of the tenants — the shard-repartition
    invariance the property test pins.
    """
    if not parts:
        raise FleetError("cannot merge zero fleet rollups")
    combined: List[TenantVerdict] = []
    for part in parts:
        combined.extend(part.tenants)
    return rollup(combined)
