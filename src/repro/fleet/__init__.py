"""repro.fleet — multi-tenant sharded recovery control plane.

Runs N independent self-healing systems (one per tenant) behind a
single service: per-tenant sharded state
(:class:`~repro.fleet.shard.TenantShard`), a prioritized central
scheduling queue where BREACH-tenant alerts preempt healthy tenants'
(:class:`~repro.fleet.control.FleetControlPlane`), a thread worker pool
for the parallel analysis/heal phase
(:class:`~repro.fleet.pool.WorkerPool`), and a fleet-level SLO rollup
(:func:`~repro.fleet.slo.rollup`) served by ``repro.obs.server``.

Design notes and the scheduling model live in ``docs/FLEET.md``.
"""

from repro.fleet.control import FleetConfig, FleetControlPlane, FleetReport
from repro.fleet.pool import WorkerPool
from repro.fleet.shard import PRIORITY_OF_VERDICT, TenantShard
from repro.fleet.slo import (
    FleetHealth,
    TenantVerdict,
    merge_health,
    percentile,
    rollup,
)
from repro.fleet.workload import (
    PROFILES,
    TenantProfile,
    prediction_for,
    resolve_mix,
)

__all__ = [
    "FleetConfig",
    "FleetControlPlane",
    "FleetReport",
    "WorkerPool",
    "TenantShard",
    "PRIORITY_OF_VERDICT",
    "FleetHealth",
    "TenantVerdict",
    "rollup",
    "merge_health",
    "percentile",
    "TenantProfile",
    "PROFILES",
    "resolve_mix",
    "prediction_for",
]
