"""The fleet control plane: N tenants behind one recovery service.

Architecture (docs/FLEET.md has the picture):

- every tenant is a :class:`~repro.fleet.shard.TenantShard` — a fully
  isolated self-healing world with its own store, epoch-managed log,
  bounded queues, clock and health monitor;
- one **central scheduling queue** — a
  :class:`~repro.ids.alerts.PriorityBoundedQueue` — multiplexes all
  tenants' accepted alerts; its priority classes come from the owning
  tenant's live SLO verdict (BREACH preempts WARN preempts OK), so a
  burning tenant's detection work is served first under contention;
- a :class:`~repro.fleet.pool.WorkerPool` runs the granted shards'
  analysis/heal work concurrently.

Time is simulated, advanced in **tick rounds** of three phases:

1. *ingest* (serial, tenant order): draw this tick's attack arrivals
   per tenant, execute the attacked workflows, admit alerts to the
   tenant queues (overflow = true loss, the paper's Definition 3), and
   record the accepted alerts as central-scheduling candidates;
2. *schedule* (serial): offer every tenant's unscheduled candidates to
   the central queue — rejection or eviction there is a **deferral**
   (the alert stays in its tenant queue and is re-offered next round),
   *not* a loss — then drain the queue in priority order into
   per-tenant grant counts;
3. *process* (parallel): each granted shard scans its grants through
   the real analyzer and batch-heals when its alert queue drains.

Phases 1–2 are serial and deterministic; phase 3 touches only disjoint
shard state plus commutative lock-protected fleet counters, so **the
worker count cannot change any result** — ``workers=8`` produces
bit-identical per-tenant verdicts to ``workers=1`` (the acceptance
test pins this).  Workers buy wall-clock time only.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError, ObsError
from repro.fleet.pool import WorkerPool
from repro.fleet.shard import TenantShard
from repro.fleet.slo import FleetHealth, TenantVerdict, rollup
from repro.fleet.workload import TenantProfile, resolve_mix
from repro.ids.alerts import Alert, PriorityBoundedQueue
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import PhaseProfiler, ProfileReport
from repro.obs.tracing import ManualClock

__all__ = ["FleetConfig", "FleetReport", "FleetControlPlane"]


@dataclass(frozen=True)
class Token:
    """One centrally scheduled alert: which tenant, which alert, and
    the priority class *baked at offer time* (a verdict flip while
    queued must not silently re-lane an item).  ``offered_at`` is the
    sim time the alert was *first* offered centrally — deferrals
    re-offer with the original stamp, so the grant-time dwell measures
    the whole central-scheduling wait."""

    priority: int
    tenant_index: int
    alert: Alert
    offered_at: float = 0.0


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of a fleet run.

    Attributes
    ----------
    tenants:
        Number of tenant shards.
    mix:
        Workload archetype names (:data:`repro.fleet.workload.PROFILES`)
        assigned round-robin across tenants.
    duration:
        Simulated run length.
    tick:
        Scheduling round length (sim time).
    workers:
        Worker-pool size for the parallel process phase.
    central_capacity:
        Central scheduling queue capacity — the per-round grant bound.
        ``0`` (default) sizes it at ``4 × tenants`` (ample: contention
        then only throttles genuinely bursty rounds).
    seed:
        Fleet seed; tenant ``i`` runs on ``seed + i`` so every tenant's
        attack process is independent of the others and of the worker
        count.
    """

    tenants: int = 10
    mix: Tuple[str, ...] = ("figure1", "banking", "travel", "supply")
    duration: float = 50.0
    tick: float = 1.0
    workers: int = 1
    central_capacity: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise FleetError(f"tenants must be >= 1, got {self.tenants}")
        if self.duration <= 0:
            raise FleetError(
                f"duration must be > 0, got {self.duration}"
            )
        if self.tick <= 0:
            raise FleetError(f"tick must be > 0, got {self.tick}")
        if self.workers < 1:
            raise FleetError(f"workers must be >= 1, got {self.workers}")
        if self.central_capacity < 0:
            raise FleetError(
                f"central_capacity must be >= 0, got "
                f"{self.central_capacity}"
            )

    @property
    def resolved_central_capacity(self) -> int:
        """The central queue capacity actually used."""
        return self.central_capacity or 4 * self.tenants


@dataclass
class FleetReport:
    """Outcome of one fleet run."""

    config: FleetConfig
    health: FleetHealth
    ticks: int = 0
    attacks: int = 0
    alerts_accepted: int = 0
    alerts_lost: int = 0
    scans: int = 0
    heals: int = 0
    central_deferrals: int = 0

    @property
    def verdicts_by_tenant(self) -> Dict[str, str]:
        """Tenant id → final verdict (the determinism pin compares
        these across worker counts)."""
        return {t.tenant: t.verdict.value for t in self.health.tenants}

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "tenants": self.config.tenants,
            "workers": self.config.workers,
            "duration": self.config.duration,
            "ticks": self.ticks,
            "attacks": self.attacks,
            "alerts_accepted": self.alerts_accepted,
            "alerts_lost": self.alerts_lost,
            "scans": self.scans,
            "heals": self.heals,
            "central_deferrals": self.central_deferrals,
            "health": self.health.as_dict(),
        }


class FleetControlPlane:
    """Runs N tenant shards behind one prioritized scheduling queue.

    Parameters
    ----------
    config:
        The fleet configuration.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` for
        fleet-level instruments (lock-protected, updated from worker
        threads); one is created when omitted.
    bus:
        Optional fleet-level bus; receives the central queue's
        :class:`~repro.obs.events.QueueItemDropped` deferral events
        stamped with tick time.  Per-tenant events stay on per-shard
        buses (tracers and monitors are single-owner).
    profiles:
        Explicit profile cycle overriding ``config.mix`` resolution —
        tests use this to inject custom archetypes.
    profiler:
        Optional started :class:`~repro.obs.perf.PhaseProfiler`.  The
        control plane records its tick phases (``tick.ingest`` /
        ``tick.schedule`` / ``tick.process`` / ``tick.harvest``, plus
        ``drain`` and ``sweep``) into it, gives every shard a private
        profiler whose pipeline phases are folded in serially at
        harvest under ``workers;<tenant>;…``, and measures the
        central-scheduling dwell (``central-queue-wait``) and grant
        count per granted alert.  See :meth:`profile_report` /
        :meth:`profile_snapshot`.
    """

    def __init__(
        self,
        config: FleetConfig,
        registry: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
        profiles: Optional[Sequence[TenantProfile]] = None,
        profiler: Optional[PhaseProfiler] = None,
        sanitizer: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bus = bus
        self._profiler = profiler
        #: Optional dynamic race sanitizer (duck-typed:
        #: ``instrument_fleet`` / ``barrier`` / ``note_access``, see
        #: :class:`repro.lint.sanitizer.RaceSanitizer`).  Instrumented
        #: at the end of __init__, fenced at every phase boundary.
        self._sanitizer = sanitizer
        cycle = (list(profiles) if profiles is not None
                 else resolve_mix(config.mix))
        width = len(str(max(config.tenants - 1, 1)))
        self.shards: List[TenantShard] = [
            TenantShard(
                tenant=f"t{i:0{width}d}",
                profile=cycle[i % len(cycle)],
                seed=config.seed + i,
                profiled=profiler is not None,
            )
            for i in range(config.tenants)
        ]
        if profiler is not None:
            # Mirror phase exits into labeled registry histograms so a
            # /metrics scrape sees repro_phase_wall_seconds{phase=...}
            # alongside the fleet counters.  Shard profilers share the
            # fleet registry: instrument locks make the cross-thread
            # observes safe, and labels stay per-phase (not per-tenant)
            # so cardinality is bounded.
            profiler.bind_registry(self.registry)
            for shard in self.shards:
                if shard.profiler is not None:
                    shard.profiler.bind_registry(self.registry)
        self.clock = ManualClock(0.0)
        self.central: PriorityBoundedQueue[Token] = PriorityBoundedQueue(
            config.resolved_central_capacity,
            classes=3,
            priority_of=lambda token: token.priority,
            evict_lower=True,
        )
        self.central.instrument("central", bus, self.clock)
        #: Per-tenant FIFO of accepted alerts awaiting a central grant.
        self._unscheduled: List[Deque[Alert]] = [
            deque() for _ in range(config.tenants)
        ]
        r = self.registry
        self._m_attacks = r.counter(
            "repro_fleet_attacks_total",
            help="attacked workflow runs executed across the fleet")
        self._m_accepted = r.counter(
            "repro_fleet_alerts_accepted_total",
            help="alerts admitted to tenant queues")
        self._m_lost = r.counter(
            "repro_fleet_alerts_lost_total",
            help="alerts dropped by full tenant queues (true loss)")
        self._m_deferred = r.counter(
            "repro_fleet_central_deferrals_total",
            help="central-queue rejections/evictions (re-offered later)")
        self._m_scans = r.counter(
            "repro_fleet_scans_total",
            help="alerts served through the analyzer")
        self._m_heals = r.counter(
            "repro_fleet_heals_total",
            help="batch heals committed across the fleet")
        self._m_depth = r.gauge(
            "repro_fleet_central_queue_depth",
            help="central scheduling queue depth at drain time")
        self._m_latency = r.histogram(
            "repro_fleet_detect_heal_latency",
            help="detect-to-heal latency per healed alert (sim time)")
        self._latency_seen: List[int] = [0] * config.tenants
        self._ticks = 0
        self._deferrals = 0
        #: (tenant_index, uid) → sim time of the alert's *first*
        #: central offer (cleared at grant; survives deferral).
        self._first_offered: Dict[Tuple[int, str], float] = {}
        #: Per-shard fold high-water marks: tenant → path → last
        #: (calls, wall, sim) already folded into the fleet profiler.
        self._shard_folded: Dict[
            str, Dict[Tuple[str, ...], Tuple[int, float, float]]] = {}
        #: Fleet-profiler high-water marks for per-tick deltas.
        self._tick_folded: Dict[
            Tuple[str, ...], Tuple[int, float, float]] = {}
        #: Recent per-tick phase breakdowns (bounded; /profile payload).
        self._tick_profiles: Deque[Dict[str, object]] = deque(maxlen=256)
        if sanitizer is not None:
            sanitizer.instrument_fleet(self)

    # -- one scheduling round ----------------------------------------------

    def run_tick(self, pool: WorkerPool) -> None:
        """Advance the fleet by one tick round (see module docstring)."""
        self._ticks += 1
        tick_end = self._ticks * self.config.tick
        self.clock.set(max(tick_end, self.clock.now))
        prof = self._profiler
        san = self._sanitizer

        # The parent "tick" phase swallows the inter-round glue, so
        # top-level attribution never leaks tick-internal gaps.
        with (prof.phase("tick") if prof is not None
              else nullcontext()):
            # Phase 1 — ingest (serial, tenant order).
            with (prof.phase("tick.ingest") if prof is not None
                  else nullcontext()):
                for index, shard in enumerate(self.shards):
                    accepted = shard.ingest(tick_end)
                    self._unscheduled[index].extend(accepted)
            if san is not None:
                san.barrier("tick.ingest")
            # Phase 2 — schedule (serial).
            with (prof.phase("tick.schedule") if prof is not None
                  else nullcontext()):
                grants = self._schedule_round()
            if san is not None:
                san.barrier("tick.schedule")
            # Phase 3 — process (parallel over granted shards).  The
            # pool.map join is the real happens-before edge the barrier
            # mirrors: worker writes are published to the main thread.
            with (prof.phase("tick.process") if prof is not None
                  else nullcontext()):
                self._process_round(pool, grants, tick_end)
            if san is not None:
                san.barrier("tick.process")
            # Phase 4 — harvest (serial): fleet metrics, then shard
            # profiles.  The per-tick note runs after the phase closes
            # so its tick.harvest delta covers this very tick.
            with (prof.phase("tick.harvest") if prof is not None
                  else nullcontext()):
                self._harvest_serial()
                if prof is not None:
                    self._fold_shard_profiles()
            if san is not None:
                san.barrier("tick.harvest")
            if prof is not None:
                self._note_tick_profile(tick_end)

    def _schedule_round(self) -> List[Tuple[int, int]]:
        """Offer unscheduled alerts centrally, drain by priority.

        Returns ``(tenant_index, grant_count)`` pairs in priority-drain
        order.  Deferred alerts (central rejection/eviction) stay in
        their per-tenant FIFO for the next round.
        """
        offered: Dict[int, int] = {}
        for index, backlog in enumerate(self._unscheduled):
            if not backlog:
                continue
            cls = self.shards[index].priority_class
            count = 0
            for alert in backlog:
                first = self._first_offered.setdefault(
                    (index, alert.uid), self.clock.now)
                if not self.central.offer(
                        Token(cls, index, alert, first)):
                    break  # no room even with preemption: defer rest
                count += 1
            offered[index] = count
        # Eviction may have bumped earlier tenants' tokens: the drain
        # below is the ground truth of who got granted this round.
        self._m_depth.set(len(self.central))
        prof = self._profiler
        granted: Dict[int, int] = {}
        order: List[int] = []
        while self.central:
            token = self.central.pop()
            if token.tenant_index not in granted:
                granted[token.tenant_index] = 0
                order.append(token.tenant_index)
            granted[token.tenant_index] += 1
            if prof is not None:
                # Central-scheduling dwell (first offer → grant) and
                # the grant count: sim-time/calls-only line items, so
                # neither distorts the wall attribution.
                self._first_offered.pop(
                    (token.tenant_index, token.alert.uid), None)
                prof.add_at(("central-queue-wait",), 0.0,
                            sim=self.clock.now - token.offered_at)
                prof.add_at(("grant",), 0.0, 0.0, calls=1)
        # Grants consume each tenant's FIFO from the front; whatever
        # was offered-but-evicted (or never offered) stays queued.
        deferred_round = 0
        for index, backlog in enumerate(self._unscheduled):
            take = granted.get(index, 0)
            for _ in range(take):
                backlog.popleft()
            deferred_round += len(backlog)
        if deferred_round:
            self._deferrals += deferred_round
            self._m_deferred.inc(deferred_round)
        return [(index, granted[index]) for index in order]

    def _process_round(
        self,
        pool: WorkerPool,
        grants: List[Tuple[int, int]],
        tick_end: float,
    ) -> None:
        """Run granted shards on the pool; re-queue unserved grants."""

        def serve(grant: Tuple[int, int]) -> Tuple[int, int]:
            index, count = grant
            shard = self.shards[index]
            leftover = shard.process(count, tick_end)
            # Fleet counters are lock-protected and commutative — safe
            # and order-independent from worker threads.
            self._m_scans.inc(count - leftover)
            return index, leftover

        results = pool.map(serve, grants)  # lint: allow[RACE005] phase-confined; sanitizer barriers fence the join
        for index, leftover in results:
            if leftover:
                # Analyzer blocked mid-grant: the unserved alerts are
                # still at the front of the tenant queue; put them back
                # at the front of the unscheduled FIFO too.
                shard = self.shards[index]
                queued = list(shard.system.alert_queue)
                for alert in reversed(queued[:leftover]):
                    self._unscheduled[index].appendleft(alert)

    def _harvest_serial(self) -> None:
        """Fold per-shard deltas into fleet metrics (serial phase, so
        gauges and non-commutative reads stay deterministic)."""
        if self._sanitizer is not None:
            # The folds below read shard fields directly (no wrapped
            # method runs), so tell the sanitizer about the cross-phase
            # reads explicitly — it proves the ingest/process writes
            # were fenced before the main thread read them back.
            for shard in self.shards:
                self._sanitizer.note_access(
                    f"shard[{shard.tenant}]", write=False)
        attacks = sum(s.attacks for s in self.shards)
        accepted = sum(s.system.alert_queue.accepted for s in self.shards)
        lost = sum(s.alerts_lost for s in self.shards)
        heals = sum(s.heals for s in self.shards)
        self._set_total(self._m_attacks, attacks)
        self._set_total(self._m_accepted, accepted)
        self._set_total(self._m_lost, lost)
        self._set_total(self._m_heals, heals)
        for index, shard in enumerate(self.shards):
            new = shard.latencies[self._latency_seen[index]:]
            self._latency_seen[index] += len(new)
            for value in new:
                self._m_latency.observe(value)

    @staticmethod
    def _set_total(counter, total: int) -> None:
        delta = total - counter.value
        if delta > 0:
            counter.inc(delta)

    # -- profiling ---------------------------------------------------------

    def _fold_shard_profiles(self) -> None:
        """Fold each shard profiler's *new* stats into the fleet
        profiler under ``workers;<tenant>;…`` (serial phase, owner
        thread — the same discipline as :meth:`_harvest_serial`)."""
        assert self._profiler is not None
        for shard in self.shards:
            sprof = shard.profiler
            if sprof is None:
                continue
            folded = self._shard_folded.setdefault(shard.tenant, {})
            for path, (calls, wall, sim) in sorted(
                    sprof.snapshot().items()):
                c0, w0, s0 = folded.get(path, (0, 0.0, 0.0))
                dc, dw, ds = calls - c0, wall - w0, sim - s0
                if dc or dw or ds:
                    self._profiler.add_at(
                        ("workers", shard.tenant) + path,
                        dw, ds, calls=dc)
                folded[path] = (calls, wall, sim)

    def _note_tick_profile(self, tick_end: float) -> None:
        """Append this tick's per-phase deltas to the bounded per-tick
        breakdown ring (the ``/profile`` payload's ``ticks``)."""
        assert self._profiler is not None
        entry_phases: Dict[str, Dict[str, float]] = {}
        for path, (calls, wall, sim) in sorted(
                self._profiler.snapshot().items()):
            if (len(path) != 2 or path[0] != "tick"
                    or not path[1].startswith("tick.")):
                continue
            c0, w0, s0 = self._tick_folded.get(path, (0, 0.0, 0.0))
            entry_phases[path[1]] = {
                "calls": calls - c0, "wall": wall - w0, "sim": sim - s0,
            }
            self._tick_folded[path] = (calls, wall, sim)
        self._tick_profiles.append({
            "tick": self._ticks,
            "sim_end": tick_end,
            "phases": entry_phases,
        })

    def profile_report(self, scenario: str = "fleet") -> ProfileReport:
        """The fleet's attribution breakdown so far.

        The per-tenant subtrees folded under the synthetic ``workers``
        root are detail, not coverage — their wall time ran on worker
        threads concurrently with the ``tick.*`` phases — so they are
        excluded from the attribution fraction (``aux_roots``).
        """
        if self._profiler is None:
            raise ObsError(
                "fleet was constructed without a profiler; pass "
                "profiler= to FleetControlPlane to enable /profile"
            )
        return self._profiler.report(scenario, aux_roots=("workers",))

    def profile_snapshot(self) -> Dict[str, object]:
        """JSON-able ``/profile`` payload: the fleet report plus
        per-tenant pipeline tables and the recent per-tick breakdowns.

        Readable between phase boundaries from the serving thread
        (under the server owner lock, like ``/metrics`` and ``/slo``).
        """
        report = self.profile_report()
        tenants: Dict[str, List[Dict[str, object]]] = {}
        for row in report.rows:
            parts = str(row["path"]).split(";")
            if len(parts) < 3 or parts[0] != "workers":
                continue
            tenants.setdefault(parts[1], []).append({
                "path": ";".join(parts[2:]),
                "calls": row["calls"],
                "wall": row["wall"],
                "sim": row["sim"],
            })
        return {
            "fleet": report.as_dict(),
            "tenants": tenants,
            # Copy each ring entry (and its phase dicts): the payload
            # outlives the snapshot call, and handing out aliases to
            # the live ring would let a scraper see — or mutate —
            # entries the next tick is still appending around.
            "ticks": [
                {
                    "tick": entry["tick"],
                    "sim_end": entry["sim_end"],
                    "phases": {
                        name: dict(stats)
                        for name, stats in entry["phases"].items()  # type: ignore[union-attr]
                    },
                }
                for entry in self._tick_profiles
            ],
        }

    # -- the full run ------------------------------------------------------

    def run(self) -> FleetReport:
        """Run ``duration`` sim time of tick rounds, sweep every shard
        to quiescence, and return the fleet report."""
        cfg = self.config
        prof = self._profiler
        ticks = int(round(cfg.duration / cfg.tick))
        with WorkerPool(cfg.workers) as pool:
            for _ in range(max(ticks, 1)):
                self.run_tick(pool)
            # Drain-down: keep scheduling rounds — without new ingest —
            # until every accepted alert has been granted and served,
            # or no round can make progress any more (shards whose
            # analyzer is blocked by a full recovery queue with alerts
            # still pending: the paper's deadlock-by-overflow, resolved
            # only by the sweep's administrator path below).
            with (prof.phase("drain") if prof is not None
                  else nullcontext()):
                guard = 0
                while any(self._unscheduled) or any(
                        s.system.alerts_queued for s in self.shards):
                    guard += 1
                    if guard > 100_000:
                        raise FleetError(
                            "fleet drain-down did not quiesce"
                        )
                    before = sum(
                        s.scans + s.heals for s in self.shards)
                    self._ticks += 1
                    end = self._ticks * cfg.tick
                    self.clock.set(max(end, self.clock.now))
                    grants = self._schedule_round()
                    self._process_round(pool, grants, end)
                    if self._sanitizer is not None:
                        self._sanitizer.barrier("drain.process")
                    self._harvest_serial()
                    if sum(s.scans + s.heals
                           for s in self.shards) == before:
                        break  # only blocked shards; sweep resolves
            # Final per-shard sweep: heal stragglers (blocked shards,
            # admin backlog) and audit end to end.
            sweep_at = self.clock.now

            def sweep(shard: TenantShard) -> None:
                shard.sweep(sweep_at)

            with (prof.phase("sweep") if prof is not None
                  else nullcontext()):
                pool.map(sweep, self.shards)  # lint: allow[RACE005] phase-confined; sanitizer barriers fence the join
            if self._sanitizer is not None:
                self._sanitizer.barrier("sweep")
        # Final rollup: harvest, shard-profile fold, health freeze.
        with (prof.phase("rollup") if prof is not None
              else nullcontext()):
            self._harvest_serial()
            if prof is not None:
                self._fold_shard_profiles()
            return FleetReport(
                config=cfg,
                health=self.health(),
                ticks=self._ticks,
                attacks=sum(s.attacks for s in self.shards),
                alerts_accepted=sum(
                    s.system.alert_queue.accepted for s in self.shards
                ),
                alerts_lost=sum(s.alerts_lost for s in self.shards),
                scans=sum(s.scans for s in self.shards),
                heals=sum(s.heals for s in self.shards),
                central_deferrals=self._deferrals,
            )

    # -- live health -------------------------------------------------------

    def tenant_verdict(self, shard: TenantShard) -> TenantVerdict:
        """Freeze one shard's current health."""
        return TenantVerdict(
            tenant=shard.tenant,
            verdict=shard.verdict,
            report=shard.monitor.report(),
            attacks=shard.attacks,
            heals=shard.heals,
            audits_ok=shard.audits_ok,
            latencies=tuple(shard.latencies),
            strategy=shard.profile.strategy.value,
        )

    def health(self) -> FleetHealth:
        """The current fleet rollup (readable any time between ticks —
        shard monitors are only written in phases the caller drives)."""
        return rollup([self.tenant_verdict(s) for s in self.shards])

    def shard_by_tenant(self, tenant: str) -> TenantShard:
        """Look up one shard; unknown ids are a
        :class:`~repro.errors.FleetError`."""
        for shard in self.shards:
            if shard.tenant == tenant:
                return shard
        raise FleetError(f"unknown tenant {tenant!r}")
