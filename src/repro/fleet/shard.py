"""Per-tenant shard: one isolated self-healing world.

Each tenant of the fleet owns a full vertical slice — data store,
epoch-managed system log, self-healing system, event bus, simulated
clock, health monitor, and attack RNG.  Shards share **no mutable
state** with each other; the only cross-shard objects a shard touches
are the fleet's lock-protected
:class:`~repro.obs.metrics.MetricsRegistry` counters, whose increments
commute.  That isolation is what makes the control plane's parallel
processing phase deterministic: any worker schedule computes the same
per-tenant state, because no ordering between shards is observable.

The shard's lifecycle is driven by the control plane in tick rounds:

- :meth:`ingest` (serial phase) draws this tick's Poisson attack
  arrivals, executes each attacked workflow for real, and offers the
  IDS alert to the tenant's bounded alert queue — a full queue is a
  *true loss* (the paper's Definition 3, per tenant); lost uids join
  the administrator backlog (Section IV-D) healed at the next commit;
- :meth:`process` (parallel phase) consumes centrally granted alerts
  through the real analyzer, advancing the shard clock by the modeled
  service times, and — once the tenant's alert queue is drained — runs
  the batch heal, which rolls the tenant's epoch;
- :meth:`sweep` heals everything still in flight at end of run so the
  final strict-correctness audit covers the whole history.
"""

from __future__ import annotations

import random
from typing import Dict, List

from contextlib import nullcontext
from typing import Optional

from repro.core.epochs import EpochManager
from repro.errors import RecoveryError
from repro.fleet.workload import TenantProfile, prediction_for
from repro.ids.alerts import Alert
from repro.obs.events import EventBus, HealStarted
from repro.obs.health import HealthMonitor, SloState
from repro.obs.perf import PhaseProfiler
from repro.obs.tracing import ManualClock
from repro.system import SelfHealingSystem
from repro.workflow.data import DataStore

__all__ = ["TenantShard"]

#: Tenant SLO verdict → central-queue priority class (lower = served
#: first): a breaching tenant's alerts preempt a healthy tenant's.
PRIORITY_OF_VERDICT: Dict[SloState, int] = {
    SloState.BREACH: 0, SloState.WARN: 1, SloState.OK: 2,
}


class TenantShard:
    """One tenant's sharded self-healing world (see module docstring).

    Parameters
    ----------
    tenant:
        Unique tenant id (``"t0042"``).
    profile:
        Workload archetype (:mod:`repro.fleet.workload`).
    seed:
        Per-tenant RNG seed — the attack process is a pure function of
        ``(profile, seed)``, independent of every other tenant.
    profiled:
        When true, the shard owns a private
        :class:`~repro.obs.perf.PhaseProfiler` (``sim_clock`` = the
        shard clock) that its pipeline phases accumulate into.  The
        profiler is as single-owner as the shard itself: the control
        plane's phase discipline guarantees at most one thread drives
        a shard at a time, and the fleet profiler folds shard stats in
        serially at harvest.
    """

    def __init__(self, tenant: str, profile: TenantProfile,
                 seed: int, profiled: bool = False) -> None:
        self.tenant = tenant
        self.profile = profile
        self.clock = ManualClock(0.0)
        self.bus = EventBus()
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler(sim_clock=self.clock) if profiled else None
        )
        initial = dict(profile.initial_data)
        self.manager = EpochManager(DataStore(initial), initial)
        self.system = SelfHealingSystem(
            manager=self.manager,
            alert_buffer=profile.alert_buffer,
            recovery_buffer=profile.recovery_buffer,
            bus=self.bus,
            clock=self.clock,
            profiler=self.profiler,
        )
        self.monitor = HealthMonitor(
            prediction_for(profile),
            config=profile.effective_health_config(),
        ).attach(self.bus)
        self._rng = random.Random(seed)
        self._next_arrival = (
            self._rng.expovariate(profile.arrival_rate)
            if profile.arrival_rate > 0 else None
        )
        self._attack_seq = 0
        #: detected_at per accepted-but-unhealed alert uid.
        self._pending_detect: Dict[str, float] = {}
        #: Detect→heal latencies (sim time), in heal order.
        self.latencies: List[float] = []
        #: Lost alerts awaiting an administrator report (Section IV-D).
        self._admin_backlog: List[str] = []
        self.attacks = 0
        self.heals = 0
        self.scans = 0
        self.audits_ok = True
        self.bus.subscribe(self._on_heal_started, types=[HealStarted])

    # -- verdicts ----------------------------------------------------------

    @property
    def verdict(self) -> SloState:
        """The tenant's current worst SLO state."""
        return self.monitor.verdict

    @property
    def priority_class(self) -> int:
        """Central-queue class of this tenant's alerts right now."""
        return PRIORITY_OF_VERDICT[self.verdict]

    @property
    def alerts_lost(self) -> int:
        """Alerts dropped by the tenant's bounded queue (true loss)."""
        return self.system.alerts_lost

    def _on_heal_started(self, event: HealStarted) -> None:
        for uid in event.malicious:
            detected = self._pending_detect.pop(uid, None)
            if detected is not None:
                self.latencies.append(event.time - detected)

    # -- serial phase ------------------------------------------------------

    def ingest(self, until: float) -> List[Alert]:
        """Execute every attack arriving up to sim time ``until``.

        Runs the attacked workflow, offers the alert to the tenant
        queue, and returns the *accepted* alerts (candidates for the
        central scheduling queue).  Rejected alerts are true losses,
        queued for the administrator backlog.
        """
        accepted: List[Alert] = []
        prof = self.profiler
        with (prof.phase("detect") if prof is not None
              else nullcontext()):
            self._ingest_into(accepted, until)
        return accepted

    def _ingest_into(self, accepted: List[Alert],
                     until: float) -> None:
        while (self._next_arrival is not None
               and self._next_arrival <= until):
            arrival = self._next_arrival
            self._next_arrival = arrival + self._rng.expovariate(
                self.profile.arrival_rate
            )
            self.attacks += 1
            self._attack_seq += 1
            spec, campaign, name = self.profile.build_attack(
                self._attack_seq
            )
            self.manager.run_workflow_attacked(spec, campaign, name)
            uid = campaign.malicious_uids[0]
            # Busy shards clamp the alert's event time forward — the
            # shard clock never moves backward.
            self.clock.set(max(arrival, self.clock.now))
            alert = Alert(arrival, uid)
            if self.system.submit_alert(alert):
                self._pending_detect[uid] = arrival
                accepted.append(alert)
            else:
                self._admin_backlog.append(uid)

    # -- parallel phase ----------------------------------------------------

    def process(self, granted: int, until: float) -> int:
        """Serve ``granted`` centrally scheduled alerts, then heal if
        the alert queue drained.

        Advances the shard clock by the modeled service times (scan:
        ``scan_time × (1 + outstanding units)``; heal: ``unit_time ×
        units``).  Returns the number of granted alerts *not* served —
        the analyzer blocks when the recovery queue fills (Section
        IV-E), and unserved grants return to the central backlog.
        """
        self.clock.set(max(until, self.clock.now))
        served = 0
        for _ in range(granted):
            outstanding = len(self.system.recovery_queue)
            if self.system.recovery_queue.full:
                break  # analyzer blocked; remaining grants deferred
            self.clock.advance(
                self.profile.scan_time * (1 + outstanding)
            )
            if self.system.scan_step() is None:
                raise RecoveryError(
                    f"tenant {self.tenant}: granted alert missing from "
                    "the tenant queue (grant/queue desync)"
                )
            served += 1
            self.scans += 1
        self._maybe_heal()
        return granted - served

    def _maybe_heal(self) -> None:
        """Batch-heal once the alert queue is empty (the paper's
        discipline), folding in administrator reports for lost alerts
        so they are repaired before their epoch archives."""
        if self.system.alerts_queued or not self.system.recovery_units_queued:
            return
        units = self.system.recovery_units_queued
        self.clock.advance(self.profile.unit_recovery_time * units)
        backlog = tuple(self._admin_backlog)
        report = self.system.recovery_step(extra_uids=backlog)
        if report is not None:
            del self._admin_backlog[:len(backlog)]
            self.heals += 1

    # -- end of run --------------------------------------------------------

    def sweep(self, until: float) -> None:
        """Drain everything still in flight at end of run: scan every
        queued alert, heal, and fold in any remaining administrator
        backlog — then audit the whole multi-epoch history."""
        self.clock.set(max(until, self.clock.now))
        guard = 0
        while (self.system.alerts_queued
               or self.system.recovery_units_queued
               or self._admin_backlog):
            guard += 1
            if guard > 100_000:
                raise RecoveryError(
                    f"tenant {self.tenant}: final sweep did not quiesce"
                )
            if self.system.alerts_queued:
                leftover = self.process(self.system.alerts_queued,
                                        self.clock.now)
                if leftover:
                    # Analyzer blocked with alerts pending — the
                    # paper's deadlock-by-overflow.  At end of run the
                    # operator resolves it: remaining queued alerts
                    # become administrator reports folded into the
                    # batch heal of the already-planned units.
                    while self.system.alert_queue:
                        alert = self.system.alert_queue.pop()
                        self._admin_backlog.append(alert.uid)
                    self._maybe_heal()
            elif self.system.recovery_units_queued:
                self._maybe_heal()
            else:
                # Only lost-alert reports remain: a dedicated
                # administrator heal commits them (and rolls the epoch).
                backlog = tuple(self._admin_backlog)
                with (self.profiler.phase("heal")
                      if self.profiler is not None else nullcontext()):
                    self.manager.heal(backlog, bus=self.bus,
                                      clock=self.clock, bracket=True,
                                      profiler=self.profiler)
                del self._admin_backlog[:len(backlog)]
                self.heals += 1
        # Close the monitored trace: unresolved LTLf obligations (an
        # undo decided but never executed, a heal never finished) become
        # conformance violations in the tenant's final verdict.
        self.monitor.finalize()
        with (self.profiler.phase("audit")
              if self.profiler is not None else nullcontext()):
            self.audits_ok = self.manager.audit().ok
