"""Worker pool for the fleet control plane.

A thin, order-preserving map over a thread pool.  Threads (not
processes) because the per-shard work — damage analysis and healing —
is CPU-light, allocation-heavy Python with no I/O, and shards share
nothing mutable except the lock-protected obs layer; processes would
pay pickling for no isolation gain.

``workers=1`` degenerates to an inline loop with no pool at all, which
is both the determinism baseline the acceptance test compares against
and the zero-overhead default.  Wall-clock time is the *only* thing the
worker count may change: shards are disjoint state driven by
simulated-time clocks, so per-tenant results are identical at any
worker count (pinned by ``tests/test_fleet.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import FleetError

__all__ = ["WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """Order-preserving parallel map with an inline ``workers=1`` mode.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers,
                               thread_name_prefix="fleet")
            if workers > 1 else None
        )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        A worker exception propagates to the caller (after the other
        in-flight items finish), exactly like the inline mode.
        """
        if self._executor is None or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        """Shut the pool down (waits for in-flight work)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
