"""Command-line interface.

Exposes the library's main flows without writing code::

    repro-workflow demo figure1          # the paper's worked example
    repro-workflow demo banking          # forged transfer + recovery
    repro-workflow demo travel           # forged card data + recovery
    repro-workflow demo web-app          # session hijack + recovery
    repro-workflow steady --lam 1.0      # Equation 1 for one config
    repro-workflow transient --t 4       # Equations 2–3 over time
    repro-workflow design --lam 1 --epsilon 0.01   # Section VI sizing
    repro-workflow simulate --horizon 5000          # Gillespie run
    repro-workflow obs --scenario figure1           # metrics + trace
    repro-workflow obs record --log run.jsonl       # flight-record a run
    repro-workflow obs replay --log run.jsonl       # deterministic replay
    repro-workflow obs explain 'wf1/t6#1'           # causal chain
    repro-workflow obs trace --out trace.json       # Chrome/Perfetto trace
    repro-workflow fleet --tenants 16 --serve 0     # multi-tenant fleet
    repro-workflow profile --scenario fleet         # latency attribution
    repro-workflow lint spec --all-scenarios        # static spec checks
    repro-workflow lint plan run.jsonl              # verify recovery provenance
    repro-workflow lint code src/repro              # determinism lint
    repro-workflow fuzz --budget 60s     # oracle-checked campaign fuzzing
    repro-workflow fuzz --replay tests/corpus/*.json   # corpus replay
    repro-workflow stg-dot --buffer 3    # Figure 3 as Graphviz DOT

Every command prints plain text tables (see ``--help`` per command).
Domain failures (:class:`~repro.errors.RecoveryError`,
:class:`~repro.errors.SchedulingError`) exit with code
:data:`EXIT_DOMAIN_ERROR` and a one-line message — never a traceback.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro.errors import (
    FleetError,
    GenerationError,
    ObsError,
    RecoveryError,
    SchedulingError,
    SimulationError,
    WorkflowSpecError,
)
from repro.markov.degradation import power_law
from repro.markov.design import design_system, peak_resilience
from repro.markov.metrics import (
    category_probabilities,
    expected_alerts,
    expected_lost_alerts,
    expected_recovery_units,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.markov.transient import transient_probabilities
from repro.report.tables import Table

__all__ = ["main", "build_parser", "EXIT_DOMAIN_ERROR"]

#: Exit code for clean domain failures (recovery/scheduling errors).
EXIT_DOMAIN_ERROR = 3


def _stg_from_args(args) -> RecoverySTG:
    return RecoverySTG(
        arrival_rate=args.lam,
        scan=power_law(args.mu1, args.alpha),
        recovery=power_law(args.xi1, args.alpha),
        recovery_buffer=args.buffer,
        alert_buffer=args.alert_buffer,
    )


def _backend_from_args(args):
    backend = getattr(args, "backend", "auto")
    return None if backend == "auto" else backend


def _positive_int(text: str) -> int:
    """argparse type: strictly positive integer (exit code 2 on
    violation, like any other argparse type error)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--lam", type=float, default=1.0,
                   help="IDS alert arrival rate λ (default 1.0)")
    p.add_argument("--mu1", type=float, default=15.0,
                   help="base alert-processing rate μ₁ (default 15)")
    p.add_argument("--xi1", type=float, default=20.0,
                   help="base recovery-execution rate ξ₁ (default 20)")
    p.add_argument("--alpha", type=float, default=1.0,
                   help="degradation exponent: rate_k = rate₁/k^α "
                        "(default 1.0; 0 = no degradation)")
    p.add_argument("--buffer", type=int, default=15,
                   help="recovery-task buffer size (default 15)")
    p.add_argument("--alert-buffer", type=int, default=None,
                   help="alert buffer size (default: same as --buffer)")
    p.add_argument("--backend", choices=["auto", "dense", "sparse"],
                   default="auto",
                   help="CTMC solver backend (default auto: dense for "
                        "small STGs, sparse for large ones)")


def cmd_demo(args) -> int:
    """Run one of the built-in scenarios end to end."""
    if getattr(args, "flight_log", None) and args.scenario != "web-app":
        raise ObsError(
            "demo --flight-log is supported for the web-app scenario "
            "only (the other demos heal outside the Figure 2 pipeline)"
        )
    if args.scenario == "figure1":
        from repro.scenarios.figure1 import Figure1Scenario, build_figure1

        sc = build_figure1(attacked=True)
        report = sc.heal_now()
        T = Figure1Scenario.task_ids
        print("System log:",
              " ".join(str(r.instance) for r in sc.log.normal_records()))
        print(report.summary())
        for label, uids in (
            ("undone", report.undone), ("redone", report.redone),
            ("abandoned", report.abandoned),
            ("new", report.new_executions), ("kept", report.kept),
        ):
            print(f"  {label:<10}: {' '.join(sorted(T(uids)))}")
        print(f"strictly correct: {sc.audit.ok}")
        return 0 if sc.audit.ok else 1
    if args.scenario == "banking":
        from repro.scenarios.banking import build_banking

        sc = build_banking()
        print("balances before heal:", sc.balances())
        report = sc.heal_now()
        print(report.summary())
        print("balances after heal :", sc.balances())
        print(f"strictly correct: {sc.audit.ok}")
        return 0 if sc.audit.ok else 1
    if args.scenario == "travel":
        from repro.scenarios.travel import build_travel

        sc = build_travel()
        print(f"before heal: seats={sc.store.read('seats')} "
              f"revenue={sc.store.read('revenue')}")
        report = sc.heal_now()
        print(report.summary())
        print(f"after heal : seats={sc.store.read('seats')} "
              f"revenue={sc.store.read('revenue')}")
        print(f"strictly correct: {sc.audit.ok}")
        return 0 if sc.audit.ok else 1
    if args.scenario == "web-app":
        from repro.scenarios.web_app import build_web_app

        sc = build_web_app()
        if getattr(args, "flight_log", None):
            return _demo_web_app_recorded(sc, args.flight_log)
        print(f"before heal: {sc.summary()}")
        report = sc.heal_now()
        print(report.summary())
        print(f"after heal : {sc.summary()}")
        print(f"strictly correct: {sc.audit.ok}")
        return 0 if sc.audit.ok else 1
    # supply-chain
    from repro.scenarios.supply_chain import build_supply_chain

    sc = build_supply_chain()
    print(f"before heal: {sc.summary()}")
    report = sc.heal_now()
    print(report.summary())
    print(f"after heal : {sc.summary()}")
    print(f"strictly correct: {sc.audit.ok}")
    return 0 if sc.audit.ok else 1


def _demo_web_app_recorded(sc, path: str) -> int:
    """Heal the hijacked web shop through the full Figure 2 pipeline
    (alert queue → analyzer scan → batch heal) with a flight recorder
    attached, leaving a replayable log whose conformance verdicts can
    be re-derived offline (``obs replay --conformance --log FILE``)."""
    from repro.obs.events import EventBus
    from repro.obs.recorder import FlightRecorder
    from repro.obs.tracing import ManualClock
    from repro.system import SelfHealingSystem

    bus = EventBus()
    clock = ManualClock(0.0)
    out = None if path == "-" else path
    flight = FlightRecorder(
        label="web-app",
        path=out,
        # The run ends at quiescence, so offline replay must close the
        # trace (resolve remaining LTLf obligations) to reproduce the
        # online monitor's final verdicts.
        meta={"conformance_finalized": True},
    ).attach(bus)
    system = SelfHealingSystem(
        store=sc.store,
        log=sc.log,
        specs_by_instance=sc.specs_by_instance,
        bus=bus,
        clock=clock,
    )
    flight.mark("start", clock.now, state=system.state.value)
    print(f"before heal: {sc.summary()}")
    system.submit_alert(sc.hijacked_uid)
    clock.advance(1.0)
    while system.alerts_queued:
        if system.scan_step() is None:
            raise ObsError("web-app analyzer stalled with alerts queued")
        clock.advance(1.0)
    report = system.recovery_step()
    if report is None:
        raise ObsError("web-app pipeline produced no heal report")
    audit = sc.record_heal(report)
    flight.mark("finalize", clock.now, state=system.state.value)
    flight.close()
    print(report.summary())
    print(f"after heal : {sc.summary()}")
    print(f"strictly correct: {audit.ok}")
    if out is None:
        print(flight.text(), end="")
    else:
        lines = flight.text().count("\n")
        print(f"{lines} flight-log records written to {out}")
    return 0 if audit.ok else 1


def cmd_steady(args) -> int:
    """Steady-state analysis of one configuration (Equation 1)."""
    stg = _stg_from_args(args)
    pi = steady_state(stg.ctmc(), backend=_backend_from_args(args))
    cats = category_probabilities(stg, pi)
    table = Table(f"Steady state of {stg!r}", ["metric", "value"])
    for cat in StateCategory:
        table.add_row(f"P({cat.value})", cats[cat])
    table.add_row("loss probability", loss_probability(stg, pi))
    table.add_row("E[alerts queued]", expected_alerts(stg, pi))
    table.add_row("E[recovery units]", expected_recovery_units(stg, pi))
    print(table.render())
    return 0


def cmd_transient(args) -> int:
    """Transient analysis from NORMAL (Equations 2 and 3)."""
    stg = _stg_from_args(args)
    chain = stg.ctmc()
    pi0 = stg.initial_distribution()
    table = Table(
        f"Transient behaviour of {stg!r} (start: NORMAL)",
        ["t", "P(NORMAL)", "P(SCAN)", "P(RECOVERY)", "loss prob",
         "E[lost alerts]"],
    )
    for t in args.t:
        pi_t = transient_probabilities(
            chain, pi0, t, backend=_backend_from_args(args)
        )
        cats = category_probabilities(stg, pi_t)
        table.add_row(
            t,
            cats[StateCategory.NORMAL],
            cats[StateCategory.SCAN],
            cats[StateCategory.RECOVERY],
            loss_probability(stg, pi_t),
            expected_lost_alerts(stg, t),
        )
    print(table.render())
    return 0


def cmd_design(args) -> int:
    """Section VI: size a system for a target (λ, ε)."""
    result = design_system(
        arrival_rate=args.lam,
        epsilon=args.epsilon,
        scan=power_law(args.mu1, args.alpha),
        recovery=power_law(args.xi1, args.alpha),
        max_buffer=args.max_buffer,
    )
    table = Table(
        f"Design sweep for lambda={args.lam}, epsilon={args.epsilon}",
        ["buffer size", "steady-state loss"],
    )
    for n, loss in sorted(result.swept.items()):
        table.add_row(n, loss)
    print(table.render())
    print()
    print(result.summary())
    if result.feasible and args.peak > 0:
        stg = RecoverySTG(
            arrival_rate=args.peak,
            scan=power_law(args.mu1, args.alpha),
            recovery=power_law(args.xi1, args.alpha),
            recovery_buffer=result.buffer_size,
        )
        resist = peak_resilience(stg, epsilon=max(args.epsilon, 0.01),
                                 horizon=30.0, step=0.25)
        print(f"peak rate {args.peak}: withstands ~{resist:g} time units")
    return 0 if result.feasible else 1


def cmd_simulate(args) -> int:
    """Exact Gillespie simulation of the configured STG.

    With ``--replications N`` (N > 1) the run becomes a batch of
    independent seeded replications, fanned out over ``--workers K``
    worker processes (K=1 runs inline, no pool) and merged; the
    printed occupancies are then means over replications and the loss
    probability carries a standard error.

    ``--serve PORT`` (0 for an ephemeral port) rides a health monitor
    on the run and then serves its telemetry over HTTP — ``/metrics``
    (Prometheus), ``/healthz``, ``/slo`` — for ``--serve-for`` seconds.
    ``--slo-loss`` overrides the loss-SLO objective (default: 3x the
    model's predicted loss).
    """
    stg = _stg_from_args(args)
    backend = _backend_from_args(args)
    pi = steady_state(stg.ctmc(), backend=backend)
    cats = category_probabilities(stg, pi)

    if args.serve is not None and args.replications > 1:
        raise SimulationError(
            "--serve monitors a single trajectory; drop --replications "
            "or run them separately"
        )

    if args.replications > 1:
        from repro.sim.batch import run_gillespie_batch

        batch = run_gillespie_batch(
            stg, horizon=args.horizon, replications=args.replications,
            workers=args.workers, seed=args.seed,
        )
        table = Table(
            f"Gillespie batch of {stg!r} (horizon {args.horizon:g}, "
            f"{args.replications} replications, {args.workers} "
            f"worker{'s' if args.workers != 1 else ''}, seed "
            f"{args.seed})",
            ["metric", "analytic", "simulated"],
        )
        occ = batch.category_occupancy
        for cat in StateCategory:
            table.add_row(f"P({cat.value})", cats[cat],
                          occ.get(cat, 0.0))
        table.add_row("loss probability", loss_probability(stg, pi),
                      batch.loss_time_fraction)
        print(table.render())
        print(f"\nloss probability stderr: "
              f"{batch.loss_time_stderr:.3e} over "
              f"{batch.replications} replications")
        print(f"alerts: {batch.arrivals} generated, "
              f"{batch.arrivals_lost} lost "
              f"({batch.alert_loss_fraction:.2%}); {batch.jumps} jumps")
        print(f"batch wall time: {batch.elapsed:.2f}s "
              f"(sum of replication times "
              f"{sum(batch.wall_times):.2f}s)")
        return 0

    from repro.sim.ctmc_sim import run_replication

    monitor = None
    if args.serve is not None:
        from repro.obs.events import EventBus
        from repro.obs.health import (
            HealthConfig,
            HealthMonitor,
            ModelPrediction,
        )
        from repro.obs.metrics import MetricsRegistry

        prediction = ModelPrediction.from_stg(
            stg, backend=backend, with_convergence=True,
        )
        config = HealthConfig(loss_objective=args.slo_loss) \
            if args.slo_loss is not None else None
        monitor = HealthMonitor(
            prediction, config=config, registry=MetricsRegistry(),
        ).attach(EventBus())
    result = run_replication(stg, horizon=args.horizon, seed=args.seed,
                             bus=monitor.bus if monitor else None)
    table = Table(
        f"Gillespie simulation of {stg!r} (horizon {args.horizon:g}, "
        f"seed {args.seed})",
        ["metric", "analytic", "simulated"],
    )
    for cat in StateCategory:
        table.add_row(
            f"P({cat.value})", cats[cat],
            result.category_occupancy.get(cat, 0.0),
        )
    table.add_row("loss probability", loss_probability(stg, pi),
                  result.loss_time_fraction)
    print(table.render())
    print(f"\nalerts: {result.arrivals} generated, "
          f"{result.arrivals_lost} lost "
          f"({result.alert_loss_fraction:.2%}); {result.jumps} jumps")

    if monitor is not None:
        return _serve_telemetry(args, monitor)
    return 0


def _serve_telemetry(args, monitor) -> int:
    """Expose a finished run's health telemetry over HTTP.

    Prints a parseable ``serving telemetry at <url>`` line (the CI
    smoke test greps for it), then blocks for ``--serve-for`` seconds
    (0: until interrupted).  Exit code 0 even on BREACH — the verdict
    is the payload, not the process status.
    """
    import threading

    from repro.obs.server import TelemetryServer

    print(f"health verdict: {monitor.verdict.value}")
    server = TelemetryServer(registry=monitor.registry, monitor=monitor,
                             port=args.serve)
    with server:
        print(f"serving telemetry at {server.url}", flush=True)
        print("endpoints: /metrics /healthz /slo", flush=True)
        try:
            if args.serve_for > 0:
                threading.Event().wait(args.serve_for)
            else:
                threading.Event().wait()
        except KeyboardInterrupt:
            pass
    return 0


def _obs_recorded_run(args, path: Optional[str] = None):
    """Run the selected scenario with a flight recorder attached;
    returns ``(recorder, obs_run)``.  Only the scenarios whose drivers
    are recorder-instrumented qualify."""
    from repro.obs.recorder import FlightRecorder

    if args.scenario == "figure1":
        from repro.obs.runner import run_figure1_observed

        flight = FlightRecorder(
            label="figure1", path=path,
            meta={"false_alarms": args.false_alarms},
        )
        run = run_figure1_observed(
            false_alarms=args.false_alarms,
            alert_buffer=args.alert_buffer or args.buffer,
            recovery_buffer=args.buffer,
            scan_time=1.0 / args.mu1,
            task_time=1.0 / args.xi1,
            flight=flight,
        )
    elif args.scenario == "fullstack":
        from repro.obs.runner import run_fullstack_observed
        from repro.sim.fullstack import FullStackConfig

        cfg = FullStackConfig(
            arrival_rate=args.lam,
            scan_time=1.0 / args.mu1,
            unit_recovery_time=1.0 / args.xi1,
            alert_buffer=args.alert_buffer or args.buffer,
            recovery_buffer=args.buffer,
        )
        meta = {"seed": args.seed, "horizon": args.horizon}
        pred = None
        health_config = None
        if getattr(args, "health", False):
            from repro.obs.health import HealthConfig, ModelPrediction

            pred = ModelPrediction.from_stg(cfg.stg())
            slo_loss = getattr(args, "slo_loss", None)
            if slo_loss is not None:
                health_config = HealthConfig(loss_objective=slo_loss)
            # The model parameters go into the header so replay can
            # rebuild the identical null model and re-derive verdicts.
            meta["health"] = {
                "arrival_rate": cfg.arrival_rate,
                "scan_time": cfg.scan_time,
                "unit_recovery_time": cfg.unit_recovery_time,
                "alert_buffer": cfg.alert_buffer,
                "recovery_buffer": cfg.recovery_buffer,
                "loss_objective": slo_loss,
            }
        flight = FlightRecorder(label="fullstack", path=path, meta=meta)
        run = run_fullstack_observed(
            cfg,
            horizon=args.horizon,
            seed=args.seed,
            flight=flight,
            health=pred,
            health_config=health_config,
        )
    else:
        raise ObsError(
            "flight recording supports --scenario figure1 and "
            "fullstack (gillespie trajectories have no recovery "
            "pipeline to record)"
        )
    flight.close()
    return flight, run


def _obs_load_log(args):
    """A flight log for replay/explain/trace: from ``--log`` when
    given, else freshly recorded in memory."""
    from repro.obs.recorder import load_flight_log, read_flight_log

    if args.log:
        return load_flight_log(args.log)
    flight, _ = _obs_recorded_run(args)
    return read_flight_log(flight.text())


def _cmd_obs_record(args) -> int:
    path = args.log if args.log and args.log != "-" else None
    flight, _ = _obs_recorded_run(args, path=path)
    lines = flight.text().count("\n")
    if path is None:
        print(flight.text(), end="")
    else:
        print(f"{lines} flight-log records written to {path}")
    return 0


def _replay_verdict_check(log, run) -> None:
    """When a flight log carries health-monitor verdicts, re-derive
    them from the raw events and report whether they match.

    Requires the log's ``meta.health`` model parameters (written by
    ``obs record --scenario fullstack --health``); logs of unmonitored
    runs print nothing.
    """
    from repro.obs.events import (
        ConformanceViolation,
        DriftDetected,
        SloTransition,
    )
    from repro.obs.health import (
        HealthConfig,
        ModelPrediction,
        replay_verdicts,
    )
    from repro.sim.fullstack import FullStackConfig

    recorded = [e for e in run.events
                if isinstance(e, (SloTransition, DriftDetected,
                                  ConformanceViolation))]
    health = log.meta.get("health")
    if not recorded and not health:
        return
    print(f"  SLO verdicts: {len(run.slo_transitions)} transitions, "
          f"{len(run.drifts)} drift alarms")
    if not health:
        print("  verdict replay: skipped (log header carries no "
              "health model parameters)")
        return
    cfg = FullStackConfig(
        arrival_rate=float(health["arrival_rate"]),
        scan_time=float(health["scan_time"]),
        unit_recovery_time=float(health["unit_recovery_time"]),
        alert_buffer=int(health["alert_buffer"]),
        recovery_buffer=int(health["recovery_buffer"]),
    )
    config = None
    if health.get("loss_objective") is not None:
        config = HealthConfig(
            loss_objective=float(health["loss_objective"])
        )
    replayed = replay_verdicts(
        run.events, ModelPrediction.from_stg(cfg.stg()), config=config,
        finalize=bool(log.meta.get("conformance_finalized")),
    )
    identical = replayed == recorded
    print(f"  verdict replay: {len(replayed)} re-derived, identical "
          f"to recorded: {identical}")
    if not identical:
        raise ObsError(
            "replayed SLO verdicts diverge from the recorded stream — "
            "the flight log and the health model parameters in its "
            "header do not describe the same run"
        )


def _cmd_obs_replay(args) -> int:
    from repro.obs.export import metrics_table, render_prometheus
    from repro.obs.provenance import replay

    log = _obs_load_log(args)
    run = replay(log)
    source = args.log if args.log else f"fresh {args.scenario} run"
    print(f"Replayed flight log: {source} "
          f"(label={log.label!r}, schema {log.header.get('schema')})")
    print(f"  events: {len(run.events)}")
    print(f"  undo set (definite): "
          f"{' '.join(sorted(run.plan_undo)) or '-'}")
    if run.undo_candidates:
        print(f"  undo candidates    : "
              f"{' '.join(sorted(run.undo_candidates))}")
    print(f"  redo set (definite): "
          f"{' '.join(sorted(run.plan_redo)) or '-'}")
    if run.redo_candidates:
        print(f"  redo candidates    : "
              f"{' '.join(sorted(run.redo_candidates))}")
    print(f"  order edges: {len(run.order_edges)}  "
          f"schedule: {len(run.schedule)} dispatches")
    if run.schedule:
        print("  realized schedule: " + " -> ".join(run.schedule))
    _replay_verdict_check(log, run)
    violations = 0
    if getattr(args, "conformance", False):
        violations = _replay_conformance_check(log)
    print()
    print(metrics_table(run.metrics, "Replayed pipeline metrics")
          .render())
    if args.prom:
        print("\nPrometheus exposition:")
        print(render_prometheus(run.metrics.registry), end="")
    return 1 if violations else 0


def _replay_conformance_check(log) -> int:
    """Re-derive the LTLf strict-correctness verdicts from the raw
    event stream (``obs replay --conformance``); prints every violation
    and returns the count.

    The trace is closed (liveness obligations resolved) exactly when
    the log's header says the recording driver finalized its own
    monitor — so replayed verdicts match the online ones event for
    event on monitored runs, and add the end-of-trace resolution on
    logs recorded with ``conformance_finalized``.
    """
    from repro.obs.events import ConformanceViolation
    from repro.obs.monitor import replay_conformance

    monitor = replay_conformance(
        log.events,
        finalize=bool(log.meta.get("conformance_finalized")),
    )
    recorded = [e for e in log.events
                if isinstance(e, ConformanceViolation)]
    count = monitor.violation_count
    print(f"  conformance: {len(monitor.properties)} LTLf properties, "
          f"{monitor.events_seen} events checked, "
          f"{count} violation(s)")
    if recorded:
        identical = list(monitor.violations) == recorded
        print(f"  conformance replay: {len(recorded)} recorded verdicts, "
              f"identical to re-derived: {identical}")
        if not identical:
            raise ObsError(
                "replayed conformance verdicts diverge from the "
                "recorded stream — the flight log was not produced by "
                "this monitor (or was edited)"
            )
    for v in monitor.violations:
        instance = f" [{v.instance}]" if v.instance else ""
        print(f"    {v.property}{instance}: {v.verdict} "
              f"at t={v.time:g} — {v.detail}")
    return count


def _cmd_obs_explain(args) -> int:
    from repro.obs.provenance import explain

    if not args.target:
        raise ObsError(
            "obs explain needs a task instance uid, e.g. "
            "repro-workflow obs explain 'wf1/t6#1'"
        )
    print(explain(_obs_load_log(args), args.target))
    return 0


def _cmd_obs_trace(args) -> int:
    from repro.obs.export import spans_to_chrome_trace
    from repro.obs.provenance import build_span_tree

    log = _obs_load_log(args)
    text = spans_to_chrome_trace(build_span_tree(log), log.events)
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"Chrome trace written to {args.out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    else:
        print(text)
    return 0


def _cmd_obs_watch(args) -> int:
    """Live SLO health monitoring against the calibrated CTMC.

    Runs a Gillespie trajectory of the configured STG with a
    :class:`~repro.obs.health.HealthMonitor` riding the event bus,
    printing every SLO transition and drift alarm as it happens.  With
    ``--attack-rate R`` the arrival rate steps to R at ``--horizon``
    (for ``--attack-horizon`` further time units) — the live
    demonstration that a mid-run λ change breaches model conformance.

    Exit code 0 when the monitor behaved as the scenario demands: a
    conformant run ends OK, an attacked run ends BREACH with at least
    one drift alarm.
    """
    import dataclasses

    from repro.obs.events import (
        DriftDetected,
        EventBus,
        EventRecorder,
        SloTransition,
    )
    from repro.obs.health import (
        HealthConfig,
        HealthMonitor,
        ModelPrediction,
    )
    from repro.sim.ctmc_sim import GillespieSimulator

    stg = _stg_from_args(args)
    prediction = ModelPrediction.from_stg(
        stg, backend=_backend_from_args(args), with_convergence=True,
    )
    config = HealthConfig(loss_objective=args.slo_loss) \
        if args.slo_loss is not None else None

    def _live(event) -> None:
        if isinstance(event, DriftDetected):
            print(f"t={event.time:9.3f}  drift[{event.detector}]: "
                  f"statistic {event.statistic:.2f} > threshold "
                  f"{event.threshold:.2f} ({event.signal})")
        elif isinstance(event, SloTransition):
            print(f"t={event.time:9.3f}  slo[{event.slo}]: "
                  f"{event.old} -> {event.new} "
                  f"(value {event.value:.4g}, "
                  f"objective {event.objective:.4g})")

    bus = EventBus()
    monitor = HealthMonitor(prediction, config=config).attach(bus)
    bus.subscribe(_live, types=[SloTransition, DriftDetected])

    print(f"watching {stg!r} for {args.horizon:g} time units "
          f"(seed {args.seed})")
    if prediction.convergence_time is not None:
        print(f"model: loss {prediction.loss_probability:.3e}, "
              f"converges within {prediction.convergence_time:g} "
              f"time units (Definition 4)")
    GillespieSimulator(stg, random.Random(args.seed), bus=bus).run(
        args.horizon
    )

    attacked = args.attack_rate is not None and args.attack_rate > 0
    if attacked:
        print(f"t={args.horizon:9.3f}  == arrival rate steps to "
              f"{args.attack_rate:g} (model still calibrated for "
              f"{args.lam:g}) ==")
        attack_stg = RecoverySTG(
            arrival_rate=args.attack_rate,
            scan=power_law(args.mu1, args.alpha),
            recovery=power_law(args.xi1, args.alpha),
            recovery_buffer=args.buffer,
            alert_buffer=args.alert_buffer,
        )
        # Simulate the attacked workload separately and feed its
        # events, time-shifted, through the same monitor — the monitor
        # never learns the rate changed, which is the point.
        attack_bus = EventBus()
        attack_rec = EventRecorder().attach(attack_bus)
        GillespieSimulator(
            attack_stg, random.Random(args.seed + 1), bus=attack_bus,
        ).run(args.attack_horizon)
        for event in attack_rec.events:
            bus.publish(dataclasses.replace(
                event, time=event.time + args.horizon
            ))

    summary = monitor.summary()
    rates = summary["rates"]
    table = Table("Live estimates vs calibrated CTMC",
                  ["metric", "model", "measured"])
    table.add_row("arrival rate", args.lam, rates["lambda_hat"])
    table.add_row("scan rate (base)", args.mu1, rates["mu_hat"])
    table.add_row("recovery rate (base)", args.xi1, rates["xi_hat"])
    table.add_row("loss fraction", prediction.loss_probability,
                  summary["loss"]["fraction"])
    table.add_row("E[alerts queued]", prediction.expected_alerts,
                  summary["occupancy"]["alert_mean"])
    print()
    print(table.render())
    lo, hi = summary["loss"]["ci"]
    print(f"\nloss 95% CI: [{lo:.3e}, {hi:.3e}] over "
          f"{summary['loss']['window_arrivals']} windowed arrivals")
    for name, slo in summary["slos"].items():
        print(f"slo {name}: {slo['state']} "
              f"(value {slo['value']:.4g}, "
              f"objective {slo['objective']:.4g})")
    verdict = monitor.verdict.value
    print(f"verdict: {verdict}")
    if attacked:
        return 0 if (verdict == "BREACH" and monitor.drifts) else 1
    return 0 if verdict == "OK" else 1


def cmd_obs(args) -> int:
    """Observability: run a scenario instrumented ('report', the
    default), capture a replayable flight log ('record'), reconstruct a
    run from one ('replay'), print one task's causal chain ('explain
    <task>'), or export a Chrome/Perfetto trace ('trace')."""
    from repro.obs.export import (
        events_to_jsonl,
        metrics_table,
        render_prometheus,
    )
    from repro.obs.tracing import render_span_tree

    action = getattr(args, "action", "report")
    if action == "record":
        return _cmd_obs_record(args)
    if action == "replay":
        return _cmd_obs_replay(args)
    if action == "explain":
        return _cmd_obs_explain(args)
    if action == "trace":
        return _cmd_obs_trace(args)
    if action == "watch":
        return _cmd_obs_watch(args)

    if args.scenario == "figure1":
        from repro.obs.runner import run_figure1_observed

        run = run_figure1_observed(
            false_alarms=args.false_alarms,
            alert_buffer=args.alert_buffer or args.buffer,
            recovery_buffer=args.buffer,
            scan_time=1.0 / args.mu1,
            task_time=1.0 / args.xi1,
        )
        title = "Observed figure1 incident"
    elif args.scenario == "gillespie":
        from repro.obs.runner import run_gillespie_observed

        run = run_gillespie_observed(
            _stg_from_args(args), horizon=args.horizon, seed=args.seed
        )
        title = (f"Observed Gillespie trajectory "
                 f"(horizon {args.horizon:g}, seed {args.seed})")
    else:  # fullstack
        from repro.obs.runner import run_fullstack_observed
        from repro.sim.fullstack import FullStackConfig

        cfg = FullStackConfig(
            arrival_rate=args.lam,
            scan_time=1.0 / args.mu1,
            unit_recovery_time=1.0 / args.xi1,
            alert_buffer=args.alert_buffer or args.buffer,
            recovery_buffer=args.buffer,
        )
        pred = None
        if getattr(args, "health", False):
            from repro.obs.health import ModelPrediction

            pred = ModelPrediction.from_stg(cfg.stg())
        run = run_fullstack_observed(
            cfg,
            horizon=args.horizon,
            seed=args.seed,
            health=pred,
        )
        title = (f"Observed full-stack run "
                 f"(horizon {args.horizon:g}, seed {args.seed})")

    print(metrics_table(run.metrics, title).render())
    if getattr(run, "monitor", None) is not None:
        report = run.monitor.report()
        print(f"\nhealth: verdict {report.verdict.value} — "
              f"loss {report.loss_fraction:.3e} "
              f"(model {report.predicted_loss:.3e}, "
              f"objective {report.loss_objective:.3e}), "
              f"{report.drift_count} drift alarm(s), "
              f"{report.slo_transitions} SLO transition(s)")
    if run.spans:
        print("\nIncident span tree:")
        print(render_span_tree(run.spans))
    if args.scenario == "gillespie":
        # Put the measurement next to the model's prediction.
        stg = _stg_from_args(args)
        pi = steady_state(stg.ctmc())
        predicted = loss_probability(stg, pi)
        cats = category_probabilities(stg, pi)
        occ = run.metrics.occupancy()
        table = Table("Empirical vs CTMC", ["metric", "CTMC", "measured"])
        for cat in StateCategory:
            table.add_row(f"P({cat.value})", cats[cat],
                          occ.get(cat.name, 0.0))
        table.add_row("loss probability", predicted,
                      run.metrics.loss_fraction)
        print()
        print(table.render())
    if args.prom:
        print("\nPrometheus exposition:")
        print(render_prometheus(run.metrics.registry), end="")
    if args.events:
        text = events_to_jsonl(run.events)
        if args.events == "-":
            print("\nEvent log (JSONL):")
            print(text)
        else:
            with open(args.events, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"\n{len(run.events)} events written to {args.events}")
    return 0


def cmd_fleet(args) -> int:
    """Multi-tenant fleet: N sharded self-healing systems behind one
    prioritized recovery control plane.

    Each tenant runs a workload archetype from ``--mix`` under its own
    Poisson attack process; alerts multiplex through a central priority
    queue where breaching tenants preempt healthy ones, and ``--workers
    K`` threads process shards concurrently (per-tenant results are
    identical at any worker count).  ``--serve PORT`` then exposes the
    fleet telemetry over HTTP: ``/slo`` is the fleet rollup,
    ``/slo?tenant=ID`` the drill-down, ``/healthz`` probes the worst-of
    verdict.

    ``--sanitize`` runs the same fleet under the dynamic race
    sanitizer (Eraser-style lockset checking on the registry, bus,
    central queue and shards) and fails with exit 2 on any violation.

    Exit code 0 when every tenant audits strictly correct and the
    fleet's final verdict is not BREACH; 1 otherwise; 2 on sanitizer
    violations; 3 on domain errors (unknown archetypes, invalid
    counts).
    """
    from repro.fleet import FleetConfig, FleetControlPlane

    config = FleetConfig(
        tenants=args.tenants,
        mix=tuple(args.mix),
        duration=args.duration,
        tick=args.tick,
        workers=args.workers,
        central_capacity=args.central_capacity,
        seed=args.seed,
    )
    sanitizer = None
    if args.sanitize:
        from repro.lint.sanitizer import RaceSanitizer
        sanitizer = RaceSanitizer()
    plane = FleetControlPlane(config, sanitizer=sanitizer)
    print(f"fleet: {config.tenants} tenant(s), mix "
          f"{'/'.join(config.mix)}, duration {config.duration:g}, "
          f"{config.workers} worker(s), seed {config.seed}")
    report = plane.run()
    health = report.health

    table = Table(
        f"Fleet of {config.tenants} after {report.ticks} rounds",
        ["metric", "value"],
    )
    table.add_row("verdict", health.verdict.value)
    for state, count in health.by_state.items():
        table.add_row(f"tenants {state}", count)
    table.add_row("attacks", report.attacks)
    table.add_row("alerts accepted", report.alerts_accepted)
    table.add_row("alerts lost", report.alerts_lost)
    table.add_row("central deferrals", report.central_deferrals)
    table.add_row("scans", report.scans)
    table.add_row("heals", report.heals)
    audits_ok = all(t.audits_ok for t in health.tenants)
    table.add_row("audits strictly correct", audits_ok)
    lat = health.as_dict()["latency"]
    table.add_row("detect->heal p50", lat["p50"])
    table.add_row("detect->heal p99", lat["p99"])
    print(table.render())

    troubled = [t for t in health.worst_tenants(5)
                if t.verdict.value != "OK" or t.report.losses]
    if troubled:
        detail = Table("Worst tenants",
                       ["tenant", "verdict", "attacks", "lost", "heals"])
        for t in troubled:
            detail.add_row(t.tenant, t.verdict.value, t.attacks,
                           t.report.losses, t.heals)
        print()
        print(detail.render())

    if sanitizer is not None:
        stats = sanitizer.summary()
        print()
        print(f"sanitizer: {stats['accesses']} access(es) over "
              f"{stats['tracked_vars']} var(s), {stats['locks']} lock(s), "
              f"{stats['barriers']} barrier(s), "
              f"{stats['violations']} violation(s)")
        if sanitizer.violations:
            print(sanitizer.report().render_text())
            return 2

    ok = audits_ok and health.verdict.value != "BREACH"
    if args.serve is not None:
        import threading

        from repro.obs.server import TelemetryServer

        server = TelemetryServer(registry=plane.registry, fleet=plane,
                                 port=args.serve)
        with server:
            print(f"serving fleet telemetry at {server.url}", flush=True)
            print("endpoints: /metrics /healthz /slo /slo?tenant=ID",
                  flush=True)
            try:
                if args.serve_for > 0:
                    threading.Event().wait(args.serve_for)
                else:
                    threading.Event().wait()
            except KeyboardInterrupt:
                pass
    return 0 if ok else 1


_LINT_SCENARIOS = (
    "figure1", "banking", "travel", "supply-chain", "web-app",
)


def _scenario_specs(name: str) -> List:
    """The (deduplicated) workflow specs a built-in scenario executes."""
    if name == "figure1":
        from repro.scenarios.figure1 import build_figure1
        built = build_figure1(attacked=False)
    elif name == "banking":
        from repro.scenarios.banking import build_banking
        built = build_banking()
    elif name == "travel":
        from repro.scenarios.travel import build_travel
        built = build_travel()
    elif name == "web-app":
        from repro.scenarios.web_app import build_web_app
        built = build_web_app()
    else:
        from repro.scenarios.supply_chain import build_supply_chain
        built = build_supply_chain()
    by_id = {
        spec.workflow_id: spec
        for spec in built.specs_by_instance.values()
    }
    return [by_id[wf] for wf in sorted(by_id)]


def _emit_report(args, report) -> int:
    """Render a lint report per ``--format``/``--out``; exit 2 on ERROR."""
    if args.format == "json":
        text = report.to_json()
    elif args.format == "sarif":
        text = report.to_sarif_json()
    else:
        text = report.render_text()
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"{len(report)} finding(s) written to {args.out} "
              f"({args.format})")
    else:
        print(text)
    return report.exit_code


def cmd_lint(args) -> int:
    """Static verification: 'spec' lints workflow graphs and read/write
    sets (JSON documents or built-in scenarios), 'plan' re-derives the
    paper's Theorems 1-3 over a flight log's recovery provenance with
    independent code, 'code' scans Python sources for replay-poisonous
    nondeterminism ('code --all' also runs the race pass and merges
    both into one report), 'races' runs the static lockset/lock-order
    analysis alone.  Exit code 2 when any ERROR-level finding exists."""
    from repro.lint import LintReport

    if args.pass_ == "spec":
        from repro.lint import lint_documents, lint_specs
        from repro.workflow.serialize import WorkflowDocument

        diags = []
        scenarios: List[str] = list(args.scenario or ())
        if args.all_scenarios:
            scenarios = list(_LINT_SCENARIOS)
        if not scenarios and not args.files:
            scenarios = list(_LINT_SCENARIOS)
        for name in scenarios:
            diags.extend(lint_specs(_scenario_specs(name)))
        docs = []
        for path in args.files:
            if path == "-":
                docs.append(WorkflowDocument.from_json(sys.stdin.read()))
            else:
                with open(path, "r", encoding="utf-8") as fh:
                    docs.append(WorkflowDocument.from_json(fh.read()))
        if docs:
            diags.extend(lint_documents(docs))
        return _emit_report(args, LintReport(diags))

    if args.pass_ == "plan":
        from repro.lint import verify_flight_log
        from repro.obs.recorder import load_flight_log

        diags = []
        for path in args.files:
            diags.extend(verify_flight_log(load_flight_log(path)))
        return _emit_report(args, LintReport(diags))

    paths = args.files or ["src/repro"]

    if args.pass_ == "races":
        from repro.lint import lint_races

        return _emit_report(args, LintReport(lint_races(paths)))

    # code
    from repro.lint import lint_paths

    if not getattr(args, "all", False):
        return _emit_report(args, LintReport(lint_paths(paths)))

    # code --all: determinism + races in one report.  SARIF keeps the
    # passes as separate runs with distinct tool.driver names so a
    # viewer can tell which analyzer produced each result; text/json
    # merge into one finding list.
    from repro.lint import combine_sarif, lint_races

    det = LintReport(lint_paths(paths))
    races = LintReport(lint_races(paths))
    if args.format == "sarif":
        text = combine_sarif([
            ("repro-lint-determinism", det),
            ("repro-lint-races", races),
        ])
        if args.out and args.out != "-":
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"{len(det) + len(races)} finding(s) written to "
                  f"{args.out} (sarif)")
        else:
            print(text)
        return max(det.exit_code, races.exit_code)
    merged = LintReport(list(det) + list(races))
    return _emit_report(args, merged)


def _budget_seconds(text: str) -> float:
    """Parse a fuzz budget: ``90``, ``60s``, or ``2m``."""
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("m"):
        raw, scale = raw[:-1], 60.0
    elif raw.endswith("s"):
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid budget {text!r}; use e.g. 90, 60s, or 2m"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return value


def cmd_fuzz(args) -> int:
    """Adversarial campaign fuzzing: run generated attack campaigns
    (single-tenant full-stack episodes and multi-tenant fleets) through
    the composite oracle — plan verifier, strict-correctness audit,
    flight-log determinism, health-monitor conformance — shrinking and
    persisting any counterexample as a replayable corpus file.  With
    --inject, every analyzer plan is mutated and the run checks the
    plan verifier catches it (exit 0 only when nothing slips through);
    with --replay, corpus files are re-run instead of fuzzing."""
    from repro.scenarios.fuzz import fuzz, replay_corpus

    if args.replay:
        failures = 0
        for path, outcome in replay_corpus(args.replay):
            if outcome.ok:
                print(f"{path}: ok ({outcome.plans_checked} plans, "
                      f"{outcome.heals} heals)")
            else:
                failures += 1
                print(f"{path}: {len(outcome.violations)} violation(s)")
                for violation in outcome.violations:
                    print(f"  {violation.render()}")
        print(f"replayed {len(args.replay)} corpus file(s), "
              f"{failures} with violations")
        return 0 if failures == 0 else 1

    report = fuzz(
        seed=args.seed,
        budget_seconds=args.budget,
        max_campaigns=args.campaigns,
        inject=args.inject,
        corpus_dir=args.corpus_dir,
        multi_tenant_every=args.multi_tenant_every,
        shrink=not args.no_shrink,
        progress=lambda r: print(
            f"  ... {r.campaigns} campaigns, "
            f"{r.violations} violation(s)"
        ),
    )
    print(report.summary())
    for campaign, violations in report.findings:
        print(f"counterexample (seed={campaign.seed}, "
              f"tenants={campaign.tenants}):")
        for violation in violations:
            print(f"  {violation.render()}")
    for path in report.corpus_files:
        print(f"corpus: {path}")
    if args.inject:
        # Fault-injection mode: success means the verifier caught every
        # campaign's mutated plans and none slipped through.
        return 0 if report.caught > 0 and report.missed == 0 else 1
    return 0 if report.violations == 0 else 1


def cmd_sensitivity(args) -> int:
    """Elasticities of loss probability / P(NORMAL) at a design point."""
    from repro.markov.sensitivity import (
        loss_sensitivities,
        normal_sensitivities,
    )

    loss = loss_sensitivities(
        lam=args.lam, mu1=args.mu1, xi1=args.xi1,
        buffer_size=args.buffer, alpha=args.alpha,
    )
    normal = normal_sensitivities(
        lam=args.lam, mu1=args.mu1, xi1=args.xi1,
        buffer_size=args.buffer, alpha=args.alpha,
    )
    table = Table(
        f"Sensitivities at lambda={args.lam}, mu1={args.mu1}, "
        f"xi1={args.xi1}, buffer={args.buffer}",
        ["parameter", "elasticity of loss", "elasticity of P(NORMAL)"],
    )
    normals = {s.parameter: s for s in normal}
    for s in loss:
        table.add_row(s.parameter, s.elasticity,
                      normals[s.parameter].elasticity)
    print(table.render())
    print(f"\nloss probability at design point: "
          f"{loss[0].metric_at_base:.3e}")
    print("(buffer row: relative change per extra slot, not an "
          "elasticity)")
    return 0


def cmd_profile(args) -> int:
    """Wall-clock profiling and end-to-end latency attribution.

    Runs one scenario with a :class:`~repro.obs.perf.PhaseProfiler`
    wired through the whole pipeline and prints the attributed phase
    breakdown: where every alert's life went (detect → buffer wait →
    analyze closure/plan/verify → schedule → heal → audit), in both
    wall and simulated time, plus the cost-driver counters (CTMC solver
    calls, closure recomputations, pickle bytes, queue evictions).

    ``--scenario fullstack`` profiles one instrumented replication;
    ``--scenario fleet`` profiles the multi-tenant control plane with
    per-tenant and per-tick breakdowns.  ``--flame`` writes flamegraph
    collapsed-stack text, ``--chrome`` a Perfetto-loadable trace with
    counter tracks, ``--json`` the full report document.

    The breakdown *structure* (phases, ordering, call counts, sim
    totals, counters) is deterministic for a given scenario and seed —
    only the wall durations vary run to run.
    """
    import json as json_mod

    from repro.obs.export import (
        profile_to_chrome_trace,
        profile_to_collapsed,
    )
    from repro.obs.perf import PhaseProfiler

    if args.scenario == "fleet":
        from repro.fleet import FleetConfig, FleetControlPlane

        config = FleetConfig(
            tenants=args.tenants, duration=args.duration,
            workers=args.workers, seed=args.seed,
        )
        profiler = PhaseProfiler()
        plane = FleetControlPlane(config, profiler=profiler)
        # Start *after* construction: building the plane solves each
        # archetype's CTMC steady state, which belongs to setup, not to
        # the profiled run — folding it in sinks the attribution
        # fraction without telling the operator anything per-alert.
        profiler.start()
        plane.run()
        profiler.stop()
        report = plane.profile_report()
        scenario_line = (
            f"fleet: {config.tenants} tenant(s), duration "
            f"{config.duration:g}, {config.workers} worker(s), "
            f"seed {config.seed}"
        )
    else:
        from repro.sim.fullstack import FullStackConfig, run_replication

        config = FullStackConfig(
            arrival_rate=args.lam,
            alert_buffer=args.alert_buffer,
            recovery_buffer=args.recovery_buffer,
        )
        profiler = PhaseProfiler().start()
        run_replication(config, horizon=args.horizon, seed=args.seed,
                        profiler=profiler)
        profiler.stop()
        report = profiler.report(scenario="fullstack")
        scenario_line = (
            f"fullstack: λ={config.arrival_rate:g}, horizon "
            f"{args.horizon:g}, seed {args.seed}"
        )

    print(scenario_line)
    table = Table(
        f"Latency attribution ({report.scenario})",
        ["phase", "calls", "wall ms", "self ms", "sim"],
    )
    for row in report.rows:
        indent = "  " * row["depth"]
        table.add_row(
            indent + row["name"],
            row["calls"],
            f"{row['wall'] * 1e3:.3f}",
            f"{row['wall_self'] * 1e3:.3f}",
            f"{row['sim']:.3f}",
        )
    print(table.render())
    counters = Table("Cost drivers", ["counter", "count"])
    for name, value in sorted(report.counters.items()):
        counters.add_row(name, value)
    print()
    print(counters.render())
    print(f"\ntotal wall: {report.total_wall * 1e3:.1f} ms, attributed "
          f"{report.attributed_wall * 1e3:.1f} ms "
          f"({report.attribution:.1%})")
    print(f"structure digest: {report.structure_digest()}")
    if report.attribution < 0.95:
        print("warning: attribution below the 95% target — "
              "un-instrumented driver time dominates somewhere")

    if args.flame:
        with open(args.flame, "w", encoding="utf-8") as fh:
            fh.write(profile_to_collapsed(report))
        print(f"collapsed stacks written to {args.flame}")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            fh.write(profile_to_chrome_trace(report))
        print(f"chrome trace written to {args.chrome}")
    if args.json:
        doc = report.as_dict()
        if args.scenario == "fleet":
            doc = plane.profile_snapshot()
        text = json_mod.dumps(doc, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"profile JSON written to {args.json}")
    return 0


def cmd_stg_dot(args) -> int:
    """Print the STG (Figure 3) as Graphviz DOT."""
    from repro.workflow.viz import stg_to_dot

    print(stg_to_dot(_stg_from_args(args)))
    return 0


def cmd_workflow_dot(args) -> int:
    """Render a JSON workflow document as Graphviz DOT."""
    from repro.workflow.serialize import WorkflowDocument
    from repro.workflow.viz import spec_to_dot

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    spec = WorkflowDocument.from_json(text).build()
    print(spec_to_dot(spec))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-workflow",
        description="Self-healing workflow systems under attacks "
                    "(ICDCS 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help=cmd_demo.__doc__)
    p.add_argument("scenario", choices=["figure1", "banking", "travel",
                                        "supply-chain", "web-app"])
    p.add_argument("--flight-log", metavar="FILE", default=None,
                   help="drive the heal through the instrumented "
                        "Figure 2 pipeline and write a replayable "
                        "flight log to FILE ('-' for stdout; web-app "
                        "scenario only)")
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("steady", help=cmd_steady.__doc__)
    _add_model_args(p)
    p.set_defaults(fn=cmd_steady)

    p = sub.add_parser("transient", help=cmd_transient.__doc__)
    _add_model_args(p)
    p.add_argument("--t", type=float, nargs="+",
                   default=[0.5, 1.0, 2.0, 4.0],
                   help="observation times (default: 0.5 1 2 4)")
    p.set_defaults(fn=cmd_transient)

    p = sub.add_parser("design", help=cmd_design.__doc__)
    _add_model_args(p)
    p.add_argument("--epsilon", type=float, default=0.01,
                   help="target steady-state loss probability")
    p.add_argument("--max-buffer", type=int, default=30)
    p.add_argument("--peak", type=float, default=0.0,
                   help="also stress the design at this peak rate")
    p.set_defaults(fn=cmd_design)

    p = sub.add_parser("simulate", help=cmd_simulate.__doc__)
    _add_model_args(p)
    p.add_argument("--horizon", type=float, default=10_000.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replications", type=_positive_int, default=1,
                   help="independent replications to run and merge "
                        "(default 1: a single trajectory)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for the replication batch "
                        "(default 1: run inline, no pool)")
    p.add_argument("--serve", type=int, metavar="PORT", default=None,
                   help="after the run, serve health telemetry over "
                        "HTTP on PORT (0: ephemeral) — /metrics, "
                        "/healthz, /slo")
    p.add_argument("--serve-for", type=float, metavar="SECONDS",
                   default=60.0,
                   help="how long to serve before exiting (default "
                        "60; 0: until interrupted)")
    p.add_argument("--slo-loss", type=float, default=None,
                   help="explicit loss-SLO objective (default: 3x the "
                        "model's predicted loss)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("obs", help=cmd_obs.__doc__)
    p.add_argument("action", nargs="?", default="report",
                   choices=["report", "record", "replay", "explain",
                            "trace", "watch"],
                   help="report (default): run and print metrics; "
                        "record: capture a flight log; replay: "
                        "reconstruct a run from one; explain <task>: "
                        "print a task's causal chain; trace: export "
                        "Chrome-trace JSON; watch: live SLO health "
                        "monitoring against the calibrated CTMC")
    p.add_argument("target", nargs="?", default=None,
                   help="task instance uid (explain action only)")
    _add_model_args(p)
    p.add_argument("--log", metavar="FILE", default=None,
                   help="flight-log file: output of 'record' ('-' for "
                        "stdout), input of replay/explain/trace "
                        "(omitted: record a fresh run in memory)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="output file for 'trace' ('-' or omitted: "
                        "stdout)")
    p.add_argument("--scenario",
                   choices=["figure1", "gillespie", "fullstack"],
                   default="figure1",
                   help="what to run under observation (default figure1)")
    p.add_argument("--false-alarms", type=int, default=2,
                   help="spurious IDS alerts injected after the genuine "
                        "one (figure1 scenario; default 2)")
    p.add_argument("--horizon", type=float, default=500.0,
                   help="simulated duration (gillespie/fullstack)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prom", action="store_true",
                   help="also print the Prometheus text exposition")
    p.add_argument("--events", metavar="FILE", default=None,
                   help="dump the JSONL event log to FILE ('-' for "
                        "stdout)")
    p.add_argument("--health", action="store_true",
                   help="ride a health monitor on the run and record "
                        "its SLO/drift verdicts into the flight log "
                        "(record/report, fullstack scenario)")
    p.add_argument("--conformance", action="store_true",
                   help="re-derive the LTLf strict-correctness "
                        "verdicts from the replayed event stream "
                        "(replay action); exit 1 on any violation")
    p.add_argument("--slo-loss", type=float, default=None,
                   help="explicit loss-SLO objective (watch; default: "
                        "3x the model's predicted loss)")
    p.add_argument("--attack-rate", type=float, default=None,
                   help="step the arrival rate to this value at "
                        "--horizon (watch): drift/BREACH demo")
    p.add_argument("--attack-horizon", type=float, default=200.0,
                   help="duration of the attacked segment (watch; "
                        "default 200)")
    p.set_defaults(fn=cmd_obs)

    p = sub.add_parser("fleet", help=cmd_fleet.__doc__)
    p.add_argument("--tenants", type=_positive_int, default=8,
                   help="number of tenant shards (default 8)")
    p.add_argument("--mix", nargs="+",
                   default=["figure1", "banking", "travel", "supply"],
                   help="workload archetypes assigned round-robin "
                        "(default: all four; unknown names exit 3)")
    p.add_argument("--duration", type=float, default=50.0,
                   help="simulated run length (default 50)")
    p.add_argument("--tick", type=float, default=1.0,
                   help="scheduling round length (default 1)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="threads for the parallel shard-processing "
                        "phase (default 1; results are identical at "
                        "any worker count)")
    p.add_argument("--central-capacity", type=int, default=0,
                   help="central priority-queue capacity (default 0: "
                        "4x tenants)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--serve", type=int, metavar="PORT", default=None,
                   help="after the run, serve fleet telemetry over "
                        "HTTP on PORT (0: ephemeral) — /metrics, "
                        "/healthz, /slo, /slo?tenant=ID")
    p.add_argument("--serve-for", type=float, metavar="SECONDS",
                   default=60.0,
                   help="how long to serve before exiting (default "
                        "60; 0: until interrupted)")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the dynamic race sanitizer "
                        "(Eraser-style lockset checks on registry/bus/"
                        "queue/shards); exit 2 on any violation")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser("lint", help=cmd_lint.__doc__)
    p.add_argument("pass_", metavar="pass",
                   choices=["spec", "plan", "code", "races"],
                   help="spec: workflow documents / scenarios; plan: "
                        "flight-log recovery provenance; code: Python "
                        "sources (determinism); races: static "
                        "lockset/lock-order analysis")
    p.add_argument("--all", action="store_true",
                   help="code pass: also run the race analysis and "
                        "merge both reports (SARIF keeps one run per "
                        "analyzer)")
    p.add_argument("files", nargs="*",
                   help="inputs for the pass — workflow JSON documents "
                        "('-' for stdin), flight logs, or source "
                        "files/directories (code default: src/repro; "
                        "spec default: all built-in scenarios)")
    p.add_argument("--scenario", action="append",
                   choices=list(_LINT_SCENARIOS),
                   help="lint this built-in scenario's workflows "
                        "(spec pass; repeatable)")
    p.add_argument("--all-scenarios", action="store_true",
                   help="lint every built-in scenario (spec pass)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="output rendering (default text)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout "
                        "('-' for stdout)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("fuzz", help=cmd_fuzz.__doc__)
    p.add_argument("--budget", type=_budget_seconds, default=None,
                   help="wall-clock budget, e.g. 60s or 2m "
                        "(default: 200 campaigns)")
    p.add_argument("--campaigns", type=_positive_int, default=None,
                   help="stop after this many campaigns")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; campaign i uses a derived seed "
                        "(default: 0)")
    p.add_argument("--inject", default=None,
                   choices=["drop-undo", "extra-redo", "reverse-edge"],
                   help="fault-injection mode: mutate every analyzer "
                        "plan and check the verifier catches it")
    p.add_argument("--corpus-dir", default="fuzz-corpus",
                   help="directory for shrunk counterexamples "
                        "(default: fuzz-corpus)")
    p.add_argument("--no-shrink", action="store_true",
                   help="persist counterexamples without shrinking")
    p.add_argument("--multi-tenant-every", type=int, default=8,
                   help="every Nth campaign runs multi-tenant through "
                        "the fleet control plane; 0 disables "
                        "(default: 8)")
    p.add_argument("--replay", nargs="+", metavar="FILE",
                   help="replay corpus files instead of fuzzing")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("sensitivity", help=cmd_sensitivity.__doc__)
    _add_model_args(p)
    p.set_defaults(fn=cmd_sensitivity)

    p = sub.add_parser("profile", help=cmd_profile.__doc__)
    p.add_argument("--scenario", choices=["fullstack", "fleet"],
                   default="fullstack")
    p.add_argument("--lam", type=float, default=6.0,
                   help="fullstack attack arrival rate (default 6.0)")
    p.add_argument("--horizon", type=float, default=60.0,
                   help="fullstack sim horizon (default 60)")
    p.add_argument("--alert-buffer", type=_positive_int, default=4)
    p.add_argument("--recovery-buffer", type=_positive_int, default=4)
    p.add_argument("--tenants", type=_positive_int, default=6,
                   help="fleet tenant count (default 6)")
    p.add_argument("--duration", type=float, default=40.0,
                   help="fleet sim duration (default 40)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="fleet worker threads (default 1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--flame", metavar="FILE", default=None,
                   help="write flamegraph collapsed-stack text")
    p.add_argument("--chrome", metavar="FILE", default=None,
                   help="write Chrome-trace JSON with counter tracks")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the full profile document "
                        "('-' for stdout)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("stg-dot", help=cmd_stg_dot.__doc__)
    _add_model_args(p)
    p.set_defaults(fn=cmd_stg_dot)

    p = sub.add_parser("workflow-dot", help=cmd_workflow_dot.__doc__)
    p.add_argument("file", help="workflow JSON document ('-' for stdin)")
    p.set_defaults(fn=cmd_workflow_dot)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Domain failures (recovery impossible, scheduler stuck, a simulation
    asked to do the impossible) are reported as a single ``error:``
    line on stderr with exit code :data:`EXIT_DOMAIN_ERROR` — scripts
    get a distinct status and users never see a traceback for a
    well-diagnosed condition.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (FleetError, GenerationError, ObsError, RecoveryError,
            SchedulingError, SimulationError, WorkflowSpecError,
            OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_DOMAIN_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
