"""Setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so that editable
installs work on environments whose setuptools predates PEP 660 wheel
support.
"""

from setuptools import setup

setup()
