"""Unit tests for workflow specifications."""

import pytest

from repro.errors import UnknownTaskError, WorkflowSpecError
from repro.workflow.spec import workflow


def linear(*ids):
    b = workflow("lin")
    for t in ids:
        b.task(t, writes=[f"o_{t}"], compute=lambda d, _t=t: {f"o_{_t}": 0})
    b.chain(*ids)
    return b.build()


class TestConstruction:
    def test_start_and_ends(self, diamond_spec):
        assert diamond_spec.start == "a"
        assert diamond_spec.ends == frozenset({"e"})

    def test_successors_predecessors(self, diamond_spec):
        assert set(diamond_spec.successors("b")) == {"c", "d"}
        assert set(diamond_spec.predecessors("e")) == {"c", "d"}

    def test_branch_nodes(self, diamond_spec):
        assert diamond_spec.branch_nodes == frozenset({"b"})

    def test_contains_len_iter(self, diamond_spec):
        assert "a" in diamond_spec and "zz" not in diamond_spec
        assert len(diamond_spec) == 5
        assert set(diamond_spec) == {"a", "b", "c", "d", "e"}

    def test_task_lookup_unknown(self, diamond_spec):
        with pytest.raises(UnknownTaskError):
            diamond_spec.task("nope")

    def test_chain_builder(self):
        spec = linear("x", "y", "z")
        assert spec.start == "x"
        assert spec.ends == frozenset({"z"})


class TestValidation:
    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowSpecError, match="no tasks"):
            workflow("w").build()

    def test_duplicate_task_rejected(self):
        b = workflow("w").task("t")
        with pytest.raises(WorkflowSpecError, match="duplicate"):
            b.task("t")

    def test_edge_to_unknown_task_rejected(self):
        with pytest.raises(UnknownTaskError):
            workflow("w").task("a").edge("a", "ghost").build()

    def test_edge_from_unknown_task_rejected(self):
        with pytest.raises(UnknownTaskError):
            workflow("w").task("a").edge("ghost", "a").build()

    def test_two_start_nodes_rejected(self):
        with pytest.raises(WorkflowSpecError, match="exactly one"):
            (workflow("w").task("a").task("b").task("c")
             .edge("a", "c").edge("b", "c").build())

    def test_no_end_node_rejected(self):
        # a → b → a is a pure cycle plus start... construct b ↔ c cycle.
        with pytest.raises(WorkflowSpecError):
            (workflow("w").task("a").task("b").task("c")
             .edge("a", "b").edge("b", "c").edge("c", "b").build())

    def test_unreachable_task_rejected(self):
        # d is disconnected but has an edge into the main chain so there
        # is a unique 0-indegree start... d→b makes b 2-indegree, d is a
        # second start; use a different shape: self-contained cycle c↔d.
        with pytest.raises(WorkflowSpecError):
            (workflow("w").task("a").task("b").task("c").task("d")
             .edge("a", "b").edge("c", "d").edge("d", "c").build())

    def test_branch_without_choose_rejected(self):
        with pytest.raises(WorkflowSpecError, match="choose"):
            (workflow("w").task("a").task("b").task("c")
             .edge("a", "b").edge("a", "c").build())


class TestPaths:
    def test_execution_paths_diamond(self, diamond_spec):
        paths = diamond_spec.execution_paths()
        assert ("a", "b", "c", "e") in paths
        assert ("a", "b", "d", "e") in paths
        assert len(paths) == 2

    def test_execution_paths_linear(self):
        spec = linear("x", "y", "z")
        assert spec.execution_paths() == [("x", "y", "z")]

    def test_cyclic_paths_bounded(self):
        spec = (
            workflow("loop")
            .task("s")
            .task("body", reads=["n"], writes=["n"],
                  compute=lambda d: {"n": d["n"] - 1},
                  choose=lambda d: "body" if d["n"] > 0 else "end")
            .task("end")
            .edge("s", "body").edge("body", "body").edge("body", "end")
            .build()
        )
        paths = spec.execution_paths(max_paths=5)
        assert len(paths) == 5
        assert all(p[0] == "s" and p[-1] == "end" for p in paths)
        # Repeated visits appear as repeated node ids.
        assert any(p.count("body") > 1 for p in paths)

    def test_reachable_from(self, diamond_spec):
        assert diamond_spec.reachable_from("b") == frozenset({"c", "d", "e"})
        assert diamond_spec.reachable_from("e") == frozenset()

    def test_is_acyclic(self, diamond_spec):
        assert diamond_spec.is_acyclic()
        loop = (
            workflow("loop")
            .task("s")
            .task("b", choose=lambda d: "b")
            .task("e")
            .edge("s", "b").edge("b", "b").edge("b", "e")
            .build()
        )
        assert not loop.is_acyclic()
