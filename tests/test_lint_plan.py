"""Tests for the independent plan verifier.

The verifier must (a) accept every plan the real analyzer produces,
(b) reject seeded mutations of those plans with the right rule ids, and
(c) genuinely share no code with the analyzer stack it is checking.
"""

import ast
import json
from dataclasses import replace
from pathlib import Path

import pytest

import repro.lint.plan_verifier as plan_verifier_module
from repro.core.actions import Action
from repro.core.analyzer import RecoveryAnalyzer
from repro.errors import RecoveryError
from repro.lint import verify_flight_log, verify_plan
from repro.lint.diagnostics import Severity
from repro.obs.recorder import FlightRecorder, read_flight_log
from repro.scenarios.figure1 import build_figure1
from repro.system import SelfHealingSystem
from repro.workflow.precedence import PartialOrder


def figure1_case():
    """Unhealed figure1 scenario with its (verified-clean) plan."""
    sc = build_figure1(attacked=True)
    plan = RecoveryAnalyzer(sc.log, sc.specs_by_instance).analyze(
        [sc.malicious_uid]
    )
    return sc, plan


def rules_of(diags):
    return sorted({d.rule for d in diags})


def rebuilt_order(plan, drop=(), add=(), flip=()):
    """A copy of the plan's order with edges dropped/added/reversed."""
    order = PartialOrder()
    for element in plan.order.elements():
        order.add_element(element)
    for before, after in plan.order.edges():
        if (before, after) in drop:
            continue
        if (before, after) in flip:
            order.add_edge(after, before)
        else:
            order.add_edge(before, after)
    for before, after in add:
        order.add_edge(before, after)
    return order


class TestAcceptsAnalyzerPlans:
    def test_figure1(self):
        sc, plan = figure1_case()
        assert verify_plan(sc.log, sc.specs_by_instance, plan) == []

    def test_travel(self):
        from repro.scenarios.travel import build_travel

        sc = build_travel()
        plan = RecoveryAnalyzer(sc.log, sc.specs_by_instance).analyze(
            [sc.malicious_uid]
        )
        assert verify_plan(sc.log, sc.specs_by_instance, plan) == []

    def test_supply_chain(self):
        from repro.scenarios.supply_chain import build_supply_chain

        sc = build_supply_chain()
        plan = RecoveryAnalyzer(sc.log, sc.specs_by_instance).analyze(
            [sc.malicious_uid]
        )
        assert verify_plan(sc.log, sc.specs_by_instance, plan) == []

    def test_banking_forged_run(self):
        from repro.scenarios.banking import build_banking

        sc = build_banking()
        forged = [
            r.uid for r in sc.log.normal_records()
            if r.instance.workflow_instance == sc.forged_run
        ]
        plan = RecoveryAnalyzer(sc.log, sc.specs_by_instance).analyze(
            forged
        )
        assert verify_plan(sc.log, sc.specs_by_instance, plan) == []


class TestSeededMutations:
    """≥5 distinct planner-bug classes, each caught by the right rule."""

    def test_mutation_dropped_undo(self):
        sc, plan = figure1_case()
        ua = plan.undo_analysis
        victim = sorted(ua.infected)[-1]
        mutated = replace(plan, undo_analysis=replace(
            ua, infected=ua.infected - {victim}
        ))
        diags = verify_plan(sc.log, sc.specs_by_instance, mutated)
        assert "PLAN001" in rules_of(diags)
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_mutation_spurious_undo(self):
        sc, plan = figure1_case()
        ua = plan.undo_analysis
        outsider = sorted(
            {r.uid for r in sc.log.normal_records()} - ua.definite
            - ua.candidates
        )[0]
        mutated = replace(plan, undo_analysis=replace(
            ua, infected=ua.infected | {outsider}
        ))
        assert "PLAN002" in rules_of(
            verify_plan(sc.log, sc.specs_by_instance, mutated)
        )

    def test_mutation_dropped_redo(self):
        sc, plan = figure1_case()
        ra = plan.redo_analysis
        victim = sorted(ra.definite)[0]
        mutated = replace(plan, redo_analysis=replace(
            ra, definite=ra.definite - {victim}
        ))
        assert "PLAN003" in rules_of(
            verify_plan(sc.log, sc.specs_by_instance, mutated)
        )

    def test_mutation_extra_redo(self):
        sc, plan = figure1_case()
        ra = plan.redo_analysis
        outsider = sorted(
            {r.uid for r in sc.log.normal_records()}
            - plan.undo_analysis.definite
        )[0]
        mutated = replace(plan, redo_analysis=replace(
            ra, definite=ra.definite | {outsider}
        ))
        diags = verify_plan(sc.log, sc.specs_by_instance, mutated)
        assert "PLAN004" in rules_of(diags)

    def test_mutation_dropped_t33_edge(self):
        sc, plan = figure1_case()
        uid = sorted(plan.redo_analysis.definite)[0]
        dropped = (Action.undo(uid), Action.redo(uid))
        mutated = replace(plan, order=rebuilt_order(plan, drop=[dropped]))
        diags = verify_plan(sc.log, sc.specs_by_instance, mutated)
        assert "PLAN005" in rules_of(diags)
        assert any("T3.3" in d.message for d in diags)

    def test_mutation_reversed_edge(self):
        sc, plan = figure1_case()
        uid = sorted(plan.redo_analysis.definite)[0]
        flipped = (Action.undo(uid), Action.redo(uid))
        mutated = replace(plan, order=rebuilt_order(plan, flip=[flipped]))
        rules = rules_of(verify_plan(sc.log, sc.specs_by_instance, mutated))
        assert "PLAN005" in rules  # required direction now missing
        assert "PLAN006" in rules  # reversed direction is unjustified

    def test_mutation_spurious_edge(self):
        sc, plan = figure1_case()
        # No Theorem 3 rule ever orders a redo before another
        # instance's undo, so this edge is unjustified by construction.
        redo_uid = sorted(plan.redo_analysis.definite)[0]
        undo_uid = sorted(plan.undo_analysis.definite - {redo_uid})[0]
        extra = (Action.redo(redo_uid), Action.undo(undo_uid))
        assert extra not in set(plan.order.edges())
        mutated = replace(plan, order=rebuilt_order(plan, add=[extra]))
        rules = rules_of(verify_plan(sc.log, sc.specs_by_instance, mutated))
        assert "PLAN006" in rules

    def test_mutation_cycle(self):
        sc, plan = figure1_case()
        before, after = sorted(
            plan.order.edges(), key=lambda e: (str(e[0]), str(e[1]))
        )[0]
        mutated = replace(plan, order=rebuilt_order(
            plan, add=[(after, before)]
        ))
        rules = rules_of(verify_plan(sc.log, sc.specs_by_instance, mutated))
        assert "PLAN007" in rules

    def test_mutation_candidate_tampering(self):
        sc, plan = figure1_case()
        ua = plan.undo_analysis
        assert ua.control_candidates  # figure1 has abandoned branches
        mutated = replace(plan, undo_analysis=replace(
            ua, control_candidates=frozenset()
        ))
        rules = rules_of(verify_plan(sc.log, sc.specs_by_instance, mutated))
        assert "PLAN009" in rules


class TestIndependence:
    """The N-version discipline, enforced: the verifier must not import
    the code it verifies, nor the shared dependence substrate."""

    FORBIDDEN = {
        "repro.core.analyzer",
        "repro.core.partial_orders",
        "repro.core.undo_redo",
        "repro.workflow.dependency",
        "repro.workflow.dominators",
    }

    def test_no_forbidden_imports(self):
        source = Path(plan_verifier_module.__file__).read_text(
            encoding="utf-8"
        )
        imported = set()
        for node in ast.walk(ast.parse(source)):
            if isinstance(node, ast.Import):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imported.add(node.module)
                imported.update(
                    f"{node.module}.{alias.name}" for alias in node.names
                )
        hits = imported & self.FORBIDDEN
        assert not hits, f"verifier imports generator code: {hits}"


class TestSystemVerifyHook:
    def test_verified_scan_step_accepts_sound_plan(self):
        sc = build_figure1(attacked=True)
        system = SelfHealingSystem(
            sc.store, sc.log, sc.specs_by_instance, verify=True
        )
        assert system.submit_alert(sc.malicious_uid)
        assert system.scan_step() is not None
        assert len(system.heal_reports) == 0

    def test_corrupt_plan_raises_before_queuing(self, monkeypatch):
        sc = build_figure1(attacked=True)
        system = SelfHealingSystem(
            sc.store, sc.log, sc.specs_by_instance, verify=True
        )
        real_analyze = system._analyzer.analyze

        def corrupt_analyze(alerts, outstanding=()):
            plan = real_analyze(alerts, outstanding=outstanding)
            ua = plan.undo_analysis
            return replace(plan, undo_analysis=replace(
                ua, infected=ua.infected - {sorted(ua.infected)[-1]}
            ))

        monkeypatch.setattr(system._analyzer, "analyze", corrupt_analyze)
        system.submit_alert(sc.malicious_uid)
        with pytest.raises(RecoveryError, match="PLAN001"):
            system.scan_step()
        assert system.recovery_units_queued == 0

    def test_default_is_unverified(self):
        sc = build_figure1(attacked=True)
        system = SelfHealingSystem(sc.store, sc.log, sc.specs_by_instance)
        assert system._verify is False


def recorded_figure1_lines():
    """A figure1 flight log as a list of JSONL lines."""
    from repro.obs.runner import run_figure1_observed

    flight = FlightRecorder(label="figure1")
    run_figure1_observed(flight=flight)
    flight.close()
    return [line for line in flight.text().splitlines() if line.strip()]


def log_from(lines):
    return read_flight_log("\n".join(lines))


class TestFlightLogVerification:
    @pytest.fixture(scope="class")
    def lines(self):
        return recorded_figure1_lines()

    def test_sound_log_verifies_clean(self, lines):
        assert verify_flight_log(log_from(lines)) == []

    def test_dropped_t33_edges_flagged(self, lines):
        tampered = [
            line for line in lines
            if not ('"OrderConstraint"' in line and '"T3.3"' in line)
        ]
        assert len(tampered) < len(lines)
        diags = verify_flight_log(log_from(tampered))
        assert "PLAN021" in rules_of(diags)

    def test_cyclic_recorded_edges_flagged(self, lines):
        edge = next(json.loads(line) for line in lines
                    if '"OrderConstraint"' in line)
        reversed_edge = dict(edge, before=edge["after"],
                             after=edge["before"])
        diags = verify_flight_log(
            log_from(lines + [json.dumps(reversed_edge)])
        )
        assert "PLAN020" in rules_of(diags)

    def test_schedule_violating_edge_flagged(self, lines):
        # Swap the dispatched actions of an undo/redo pair for one
        # instance: positions stay, actions trade places, so the
        # realized schedule now contradicts the T3.3 edge.
        uid = next(
            json.loads(line)["uid"] for line in lines
            if '"RedoDecision"' in line
        )
        undo, redo = f"undo({uid})", f"redo({uid})"
        tampered = []
        for line in lines:
            if '"ActionDispatched"' in line:
                record = json.loads(line)
                if record["action"] == undo:
                    record["action"] = redo
                    line = json.dumps(record)
                elif record["action"] == redo:
                    record["action"] = undo
                    line = json.dumps(record)
            tampered.append(line)
        diags = verify_flight_log(log_from(tampered))
        assert "PLAN022" in rules_of(diags)

    def test_unplanned_execution_flagged(self, lines):
        ghost = json.dumps({
            "record": "event", "event": "TaskUndone", "time": 99.0,
            "uid": "wf9/ghost#1", "reason": "closure",
        })
        diags = verify_flight_log(log_from(lines + [ghost]))
        assert "PLAN023" in rules_of(diags)

    def test_redo_outside_undo_flagged(self, lines):
        # A definite redo decision for an instance never undone.
        ghost = json.dumps({
            "record": "event", "event": "RedoDecision", "time": 99.0,
            "uid": "wf9/ghost#1", "condition": "T2.1", "via": [],
        })
        diags = verify_flight_log(log_from(lines + [ghost]))
        assert "PLAN024" in rules_of(diags)
