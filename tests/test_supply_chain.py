"""Integration tests for the supply-chain compound-attack scenario."""

import pytest

from repro.scenarios.supply_chain import (
    REORDER_QTY,
    UNIT_COST,
    UNIT_PRICE,
    build_supply_chain,
)


@pytest.fixture(scope="module")
def healed():
    sc = build_supply_chain(n_sales=4)
    sc.heal_now()
    return sc


class TestAttackedState:
    def test_reorder_wrongly_skipped(self):
        sc = build_supply_chain()
        assert sc.store.read("po_note") == 1      # skip path taken
        assert sc.store.read("payables") == 0

    def test_forged_sale_booked(self):
        sc = build_supply_chain()
        assert sc.store.read("invoice_evil") == 30 * UNIT_PRICE
        assert sc.store.read("stock") == 10

    def test_legit_sales_wrongly_backordered(self):
        sc = build_supply_chain(n_sales=4)
        for name in sc.sale_names:
            assert sc.store.read(f"status_{name}") == 1  # backorder


class TestHealedState:
    def test_reorder_executed_after_heal(self, healed):
        assert healed.store.read("payables") == REORDER_QTY * UNIT_COST
        assert any(
            u.startswith("procurement/reorder#")
            for u in healed.heal.new_executions
        )

    def test_forged_sale_fully_removed(self, healed):
        assert healed.store.read("invoice_evil") == 0
        assert not any(
            u.startswith("sale_evil/") for u in healed.heal.redone
        )
        evil_abandoned = [
            u for u in healed.heal.abandoned
            if u.startswith("sale_evil/")
        ]
        assert len(evil_abandoned) == 3  # reserve, fulfil, settle

    def test_legit_sales_fulfilled_after_heal(self, healed):
        for name in healed.sale_names:
            assert healed.store.read(f"status_{name}") == 0
            assert healed.store.read(f"invoice_{name}") == 20 * UNIT_PRICE

    def test_business_figures(self, healed):
        n = len(healed.sale_names)
        expected_revenue = n * 20 * UNIT_PRICE
        expected_stock = 40 + REORDER_QTY - n * 20
        assert healed.store.read("revenue") == expected_revenue
        assert healed.store.read("stock") == expected_stock
        assert healed.store.read("margin") == (
            expected_revenue - REORDER_QTY * UNIT_COST
        )
        assert healed.store.read("stock_on_hand") == expected_stock

    def test_strictly_correct(self, healed):
        assert healed.audit.ok, healed.audit.problems

    def test_summary_keys(self, healed):
        assert set(healed.summary()) == {
            "stock", "revenue", "payables", "margin"
        }


class TestScaling:
    @pytest.mark.parametrize("n_sales", [1, 3, 7])
    def test_any_number_of_sales_heals(self, n_sales):
        sc = build_supply_chain(n_sales=n_sales)
        sc.heal_now()
        assert sc.audit.ok, sc.audit.problems
        fulfilled = sum(
            1 for name in sc.sale_names
            if sc.store.read(f"invoice_{name}") > 0
        )
        # Post-reorder stock (140) covers up to 7 orders of 20.
        assert fulfilled == n_sales
