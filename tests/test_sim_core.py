"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.simulator import Simulator


class TestEvent:
    def test_orders_by_time_then_sequence(self):
        a = Event(time=1.0)
        b = Event(time=1.0)
        c = Event(time=0.5)
        assert c < a < b  # same time → earlier scheduling wins

    def test_cancel(self):
        e = Event(time=1.0)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled


class TestSimulator:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        while sim.step():
            pass
        assert fired == ["early", "late"]
        assert sim.now == 2.0
        assert sim.events_fired == 2

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for name in ("first", "second", "third"):
            sim.schedule(1.0, lambda n=name: fired.append(n))
        while sim.step():
            pass
        assert fired == ["first", "second", "third"]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        drop = sim.schedule(0.5, lambda: fired.append("drop"))
        drop.cancel()
        while sim.step():
            pass
        assert fired == ["keep"]

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_event_storm_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run_until(1.0, max_events=1000)
