"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.simulator import Simulator


class TestEvent:
    def test_orders_by_time_then_sequence(self):
        a = Event(time=1.0)
        b = Event(time=1.0)
        c = Event(time=0.5)
        assert c < a < b  # same time → earlier scheduling wins

    def test_cancel(self):
        e = Event(time=1.0)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled


class TestSimulator:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        while sim.step():
            pass
        assert fired == ["early", "late"]
        assert sim.now == 2.0
        assert sim.events_fired == 2

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for name in ("first", "second", "third"):
            sim.schedule(1.0, lambda n=name: fired.append(n))
        while sim.step():
            pass
        assert fired == ["first", "second", "third"]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        drop = sim.schedule(0.5, lambda: fired.append("drop"))
        drop.cancel()
        while sim.step():
            pass
        assert fired == ["keep"]

    def test_lazy_deletion_skips_cancelled_head_in_one_step(self):
        """A cancelled event stays in the heap until popped; one step()
        must discard it silently and fire the next live event."""
        sim = Simulator()
        fired = []
        dead = sim.schedule(0.5, lambda: fired.append("dead"))
        sim.schedule(1.0, lambda: fired.append("live"))
        dead.cancel()
        assert sim.pending == 1  # the cancelled head is not pending
        assert sim.step()  # single step: pops dead, fires live
        assert fired == ["live"]
        assert sim.events_fired == 1  # the skipped event is not counted
        assert sim.now == 1.0  # the clock never visits the dead time

    def test_step_false_when_only_cancelled_events_remain(self):
        sim = Simulator()
        fired = []
        for delay in (0.5, 1.0, 1.5):
            sim.schedule(delay, lambda: fired.append(delay)).cancel()
        assert not sim.step()
        assert fired == [] and sim.events_fired == 0
        assert sim.now == 0.0

    def test_cancel_after_pop_order_is_established(self):
        """Cancelling mid-run: an event cancelled by an earlier event's
        action must not fire even though it is already in the heap."""
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, lambda: fired.append("victim"))
        sim.schedule(1.0, lambda: victim.cancel())
        sim.run_until(10.0)
        assert fired == []
        assert sim.events_fired == 1

    def test_run_until_discards_cancelled_without_counting(self):
        """Lazily-deleted events must not count against max_events."""
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.5, lambda: None).cancel()
        live = []
        sim.schedule(1.0, lambda: live.append(sim.now))
        sim.run_until(2.0, max_events=1)  # budget covers the live one only
        assert live == [1.0]
        assert sim.pending == 0

    def test_observer_sees_fired_events_not_cancelled_ones(self):
        sim = Simulator()
        seen = []
        sim.set_observer(lambda event: seen.append(event.label))
        sim.schedule(0.5, lambda: None, label="dead").cancel()
        sim.schedule(1.0, lambda: None, label="live")
        sim.run_until(2.0)
        assert seen == ["live"]
        sim.set_observer(None)
        sim.schedule(3.0, lambda: None, label="unobserved")
        sim.run_until(4.0)
        assert seen == ["live"]

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_event_storm_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run_until(1.0, max_events=1000)
