"""Tests for steady-state analysis (Equation 1) against closed forms."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.steady_state import steady_state


class TestClosedForms:
    def test_two_state_chain(self):
        """on ↔ off with rates a, b: π = (b, a) / (a + b)."""
        a, b = 2.0, 3.0
        chain = CTMC.from_rates(
            ["on", "off"], {("on", "off"): a, ("off", "on"): b}
        )
        pi = steady_state(chain)
        assert pi == pytest.approx([b / (a + b), a / (a + b)])

    @pytest.mark.parametrize("lam,mu,k", [(1.0, 2.0, 5), (3.0, 2.0, 4),
                                          (1.0, 1.0, 6)])
    def test_mm1k_queue(self, lam, mu, k):
        """Birth-death chain = M/M/1/K; π_n ∝ ρⁿ."""
        states = list(range(k + 1))
        rates = {}
        for n in range(k):
            rates[(n, n + 1)] = lam
            rates[(n + 1, n)] = mu
        chain = CTMC.from_rates(states, rates)
        pi = steady_state(chain)
        rho = lam / mu
        weights = np.array([rho ** n for n in states])
        expected = weights / weights.sum()
        assert pi == pytest.approx(expected, abs=1e-9)

    def test_uniform_ring(self):
        """A symmetric ring has the uniform stationary distribution."""
        n = 7
        rates = {}
        for i in range(n):
            rates[(i, (i + 1) % n)] = 1.0
            rates[(i, (i - 1) % n)] = 1.0
        pi = steady_state(CTMC.from_rates(list(range(n)), rates))
        assert pi == pytest.approx(np.full(n, 1 / n))


class TestProperties:
    def test_sums_to_one_and_nonnegative(self, paper_stg):
        pi = steady_state(paper_stg.ctmc())
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_residual_is_zero(self, paper_stg):
        chain = paper_stg.ctmc()
        pi = steady_state(chain)
        assert np.abs(pi @ chain.generator).max() < 1e-8

    def test_accepts_raw_generator(self):
        q = np.array([[-1.0, 1.0], [2.0, -2.0]])
        pi = steady_state(q)
        assert pi == pytest.approx([2 / 3, 1 / 3])

    def test_rejects_non_square(self):
        with pytest.raises(ModelError):
            steady_state(np.zeros((2, 3)))
