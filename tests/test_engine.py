"""Unit tests for the workflow execution engine."""

import random

import pytest

from repro.errors import BranchDecisionError, ExecutionError
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine, WorkflowRun
from repro.workflow.log import SystemLog
from repro.workflow.spec import workflow


def simple_spec():
    return (
        workflow("simple")
        .task("a", reads=["x"], writes=["y"],
              compute=lambda d: {"y": d["x"] + 1})
        .task("b", reads=["y"], writes=["z"],
              compute=lambda d: {"z": d["y"] * 2})
        .chain("a", "b")
        .build()
    )


class TestWorkflowRun:
    def test_step_by_step(self):
        store, log = DataStore({"x": 1}), SystemLog()
        run = WorkflowRun(simple_spec(), "r")
        assert run.current_task == "a" and not run.done
        rec = run.step(store, log)
        assert rec.uid == "r/a#1"
        assert rec.reads == {"x": 0}
        assert store.read("y") == 2
        run.step(store, log)
        assert run.done and run.current_task is None
        assert store.read("z") == 4

    def test_step_after_done_raises(self):
        store, log = DataStore({"x": 1}), SystemLog()
        run = WorkflowRun(simple_spec(), "r")
        run.step(store, log)
        run.step(store, log)
        with pytest.raises(ExecutionError, match="complete"):
            run.step(store, log)

    def test_result_summarizes_path(self):
        store, log = DataStore({"x": 1}), SystemLog()
        run = WorkflowRun(simple_spec(), "r")
        run.step(store, log)
        partial = run.result()
        assert partial.path == ("a",) and not partial.completed
        run.step(store, log)
        done = run.result()
        assert done.path == ("a", "b") and done.completed

    def test_branch_follows_choose(self, diamond_spec):
        # x=1 → ya=2 → yb=6 (even) → c
        store, log = DataStore({"x": 1, "yd": 0, "yc": 0}), SystemLog()
        run = WorkflowRun(diamond_spec, "r")
        while not run.done:
            run.step(store, log)
        assert run.result().path == ("a", "b", "c", "e")
        # x=2 → ya=3 → yb=9 (odd) → d
        store2, log2 = DataStore({"x": 2, "yd": 0, "yc": 0}), SystemLog()
        run2 = WorkflowRun(diamond_spec, "r2")
        while not run2.done:
            run2.step(store2, log2)
        assert run2.result().path == ("a", "b", "d", "e")

    def test_branch_record_carries_chosen(self, diamond_spec):
        store, log = DataStore({"x": 1, "yd": 0, "yc": 0}), SystemLog()
        run = WorkflowRun(diamond_spec, "r")
        run.step(store, log)
        rec = run.step(store, log)  # b
        assert rec.chosen == "c"

    def test_bad_branch_decision_raises(self):
        spec = (
            workflow("bad")
            .task("a", choose=lambda d: "ghost")
            .task("b").task("c")
            .edge("a", "b").edge("a", "c")
            .build()
        )
        run = WorkflowRun(spec, "r")
        with pytest.raises(BranchDecisionError):
            run.step(DataStore(), SystemLog())

    def test_max_steps_guards_nontermination(self):
        spec = (
            workflow("loop")
            .task("s")
            .task("b", choose=lambda d: "b")  # never exits
            .task("e")
            .edge("s", "b").edge("b", "b").edge("b", "e")
            .build()
        )
        run = WorkflowRun(spec, "r", max_steps=25)
        store, log = DataStore(), SystemLog()
        with pytest.raises(ExecutionError, match="max_steps"):
            while not run.done:
                run.step(store, log)

    def test_loop_instances_numbered(self):
        spec = (
            workflow("loop")
            .task("s", reads=[], writes=["n"], compute=lambda d: {"n": 2})
            .task("b", reads=["n"], writes=["n"],
                  compute=lambda d: {"n": d["n"] - 1},
                  choose=lambda d: "b" if d["n"] > 0 else "e")
            .task("e")
            .edge("s", "b").edge("b", "b").edge("b", "e")
            .build()
        )
        store, log = DataStore({"n": 0}), SystemLog()
        run = WorkflowRun(spec, "r")
        while not run.done:
            run.step(store, log)
        assert [str(i) for i in run.instances] == ["s", "b", "b^2", "e"]

    def test_failing_compute_wrapped(self):
        spec = (
            workflow("boom")
            .task("a", reads=[], writes=["x"], compute=lambda d: {})
            .build()
        )
        run = WorkflowRun(spec, "r")
        with pytest.raises(ExecutionError, match="did not produce"):
            run.step(DataStore(), SystemLog())


class TestEngine:
    def test_new_run_autonames(self, fresh_system):
        store, log, engine = fresh_system
        r0 = engine.new_run(simple_spec())
        r1 = engine.new_run(simple_spec())
        assert r0.workflow_instance == "wf0"
        assert r1.workflow_instance == "wf1"
        assert set(engine.specs_by_instance) == {"wf0", "wf1"}

    def test_round_robin_interleaves(self):
        store, log = DataStore({"x": 1}), SystemLog()
        engine = Engine(store, log)
        runs = [engine.new_run(simple_spec(), n) for n in ("p", "q")]
        engine.interleave(runs, policy="round_robin")
        assert [r.uid for r in log.normal_records()] == [
            "p/a#1", "q/a#1", "p/b#1", "q/b#1"
        ]

    def test_sequential_completes_in_order(self):
        store, log = DataStore({"x": 1}), SystemLog()
        engine = Engine(store, log)
        runs = [engine.new_run(simple_spec(), n) for n in ("p", "q")]
        engine.interleave(runs, policy="sequential")
        assert [r.uid for r in log.normal_records()] == [
            "p/a#1", "p/b#1", "q/a#1", "q/b#1"
        ]

    def test_random_policy_deterministic_per_seed(self):
        def run_with(seed):
            store, log = DataStore({"x": 1}), SystemLog()
            engine = Engine(store, log, rng=random.Random(seed))
            runs = [engine.new_run(simple_spec(), n) for n in ("p", "q")]
            engine.interleave(runs, policy="random")
            return [r.uid for r in log.normal_records()]

        assert run_with(7) == run_with(7)

    def test_unknown_policy_rejected(self, fresh_system):
        store, log, engine = fresh_system
        with pytest.raises(ExecutionError, match="unknown interleave"):
            engine.interleave([], policy="zigzag")

    def test_tamper_hook_applied(self):
        store, log = DataStore({"x": 1}), SystemLog()
        engine = Engine(store, log)
        run = engine.new_run(simple_spec(), "r")
        campaign = AttackCampaign().corrupt_task("a", y=666)
        engine.run_to_completion(run, tamper=campaign)
        assert store.version("y", 0).value == 666  # y created by the task
        assert store.read("z") == 1332
        assert campaign.malicious_uids == ("r/a#1",)
