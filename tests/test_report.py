"""Tests for the table/series reporting helpers."""

import math

import pytest

from repro.report.series import Series, format_series
from repro.report.tables import Table, format_table


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 23456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert set(lines[1]) == {"="}
        header, sep, *rows = lines[2:]
        assert "name" in header and "value" in header
        assert all(len(r) <= len(header) + 10 for r in rows)
        assert "alpha" in rows[0] and "23456" in rows[1]

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            table.add_row(1)

    def test_float_formatting(self):
        text = format_table("T", ["x"], [[0.123456], [1.5e-7], [0.0],
                                         [123456.0]])
        assert "0.1235" in text
        assert "1.500e-07" in text
        assert "1.235e+05" in text or "123456" in text

    def test_empty_table_renders(self):
        assert "T" in format_table("T", ["only"], [])

    def test_str_is_render(self):
        table = Table("T", ["a"])
        table.add_row(7)
        assert str(table) == table.render()


class TestSeries:
    def test_add_and_access(self):
        s = Series("loss")
        s.add(1, 0.5)
        s.add(2, 0.25)
        assert s.xs == [1.0, 2.0]
        assert s.ys == [0.5, 0.25]
        assert s.y_at(2) == 0.25

    def test_y_at_missing_raises(self):
        s = Series("loss")
        s.add(1, 0.5)
        with pytest.raises(KeyError):
            s.y_at(3)

    def test_format_series_joins_on_x(self):
        a = Series("a")
        a.add(1, 10)
        a.add(2, 20)
        b = Series("b")
        b.add(2, 200)
        text = format_series("Joined", [a, b], x_label="t")
        assert "Joined" in text and "t" in text
        # Missing points render as NaN.
        assert "nan" in text.lower()
        assert "200" in text
