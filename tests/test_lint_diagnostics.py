"""Tests for the lint diagnostics engine (records, report, renderings)."""

import json

import pytest

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    RULES,
    SARIF_SCHEMA_URI,
    Severity,
)


def _d(rule="SPEC101", sev=Severity.WARN, message="msg", where="workflow 'w'",
       **kw):
    return Diagnostic(rule=rule, severity=sev, message=message, where=where,
                      **kw)


class TestCatalogue:
    def test_every_rule_has_summary_and_rationale(self):
        assert RULES
        for rule, info in RULES.items():
            assert info.rule == rule
            assert info.summary
            assert info.rationale
            assert isinstance(info.severity, Severity)

    def test_rule_families_present(self):
        families = {rule[:4] for rule in RULES}
        assert families == {"SPEC", "PLAN", "DET0", "RACE"}


class TestDiagnostic:
    def test_render_logical_location(self):
        text = _d().render()
        assert "WARN" in text and "SPEC101" in text
        assert "workflow 'w'" in text and "msg" in text

    def test_render_prefers_physical_location(self):
        d = _d(file="src/x.py", line=7, fix="do the thing")
        text = d.render()
        assert "src/x.py:7" in text
        assert "[fix: do the thing]" in text

    def test_to_dict_omits_empty_fields(self):
        plain = _d().to_dict()
        assert set(plain) == {"rule", "severity", "message", "where"}
        rich = _d(file="f.py", line=3, fix="hint").to_dict()
        assert rich["file"] == "f.py" and rich["line"] == 3
        assert rich["fix"] == "hint"


class TestReport:
    def test_sorted_most_severe_first(self):
        report = LintReport([
            _d(rule="SPEC102", sev=Severity.INFO),
            _d(rule="PLAN001", sev=Severity.ERROR),
            _d(rule="SPEC104", sev=Severity.WARN),
        ])
        assert [d.severity for d in report] == [
            Severity.ERROR, Severity.WARN, Severity.INFO,
        ]

    def test_exit_codes(self):
        assert LintReport([]).exit_code == 0
        assert LintReport([_d()]).exit_code == 0  # WARN alone passes
        assert LintReport(
            [_d(rule="PLAN001", sev=Severity.ERROR)]
        ).exit_code == 2

    def test_counts_and_text_tally(self):
        report = LintReport([
            _d(rule="PLAN001", sev=Severity.ERROR),
            _d(rule="SPEC104", sev=Severity.WARN),
            _d(rule="SPEC104", sev=Severity.WARN, message="other"),
        ])
        assert report.count(Severity.ERROR) == 1
        assert report.count(Severity.WARN) == 2
        assert "1 error, 2 warning, 0 info" in report.render_text()

    def test_json_envelope(self):
        report = LintReport([_d(rule="PLAN001", sev=Severity.ERROR)])
        data = json.loads(report.to_json())
        assert data["summary"] == {"total": 1, "error": 1, "warn": 0,
                                   "info": 0}
        assert data["findings"][0]["rule"] == "PLAN001"


#: Hand-written subset of the SARIF 2.1.0 schema covering everything the
#: report emits — required envelope keys, run/tool/rules shape, result
#: shape with legal levels.  The full OASIS schema needs a network fetch
#: unavailable in tests; this subset pins the same structural contract.
_SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id",
                                                "shortDescription",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "ruleIndex", "level",
                                         "message", "locations"],
                            "properties": {
                                "level": {
                                    "enum": ["error", "warning", "note"],
                                },
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def _report(self):
        return LintReport([
            _d(rule="PLAN001", sev=Severity.ERROR, fix="regenerate"),
            _d(rule="SPEC104", sev=Severity.WARN,
               file="flows/order.json", line=12),
            _d(rule="SPEC102", sev=Severity.INFO),
        ])

    def test_schema_valid(self):
        jsonschema = pytest.importorskip("jsonschema")
        sarif = self._report().to_sarif()
        jsonschema.validate(sarif, _SARIF_SUBSET_SCHEMA)

    def test_envelope_and_rule_index(self):
        sarif = self._report().to_sarif()
        assert sarif["$schema"] == SARIF_SCHEMA_URI
        run = sarif["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_levels_and_locations(self):
        sarif = self._report().to_sarif()
        results = sarif["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning", "note"]
        with_phys = [r for r in results
                     if "physicalLocation" in r["locations"][0]]
        assert len(with_phys) == 1
        phys = with_phys[0]["locations"][0]["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "flows/order.json"
        assert phys["region"]["startLine"] == 12
        for result in results:
            logical = result["locations"][0]["logicalLocations"]
            assert logical[0]["fullyQualifiedName"]

    def test_round_trips_through_json(self):
        report = self._report()
        assert json.loads(report.to_sarif_json()) == report.to_sarif()

    def test_unknown_rule_does_not_crash(self):
        report = LintReport([_d(rule="XXX999", sev=Severity.WARN)])
        sarif = report.to_sarif()
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert rules[0]["id"] == "XXX999"
        assert rules[0]["defaultConfiguration"]["level"] == "warning"
