"""Unit tests for the sim-time sliding-window estimators and drift
detectors behind the health monitor (`repro.obs.windows`).

The detector tests run on *synthetic* traces with seeded RNGs so the
false-positive and detection-delay bounds they pin are deterministic.
"""

import math
import random

import pytest

from repro.errors import ObsError
from repro.obs.windows import (
    Cusum,
    Ewma,
    OccupancyWindow,
    PageHinkley,
    RateWindow,
    SlidingWindow,
    chi2_sf,
    g_test,
)


class TestSlidingWindow:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ObsError):
            SlidingWindow(0.0)

    def test_evicts_aged_samples(self):
        w = SlidingWindow(horizon=10.0)
        w.add(0.0, 1.0)
        w.add(5.0, 2.0)
        w.add(14.0, 3.0)
        assert w.count == 2  # the t=0 sample aged out at t=14
        assert w.values() == [2.0, 3.0]

    def test_mean_and_quantile(self):
        w = SlidingWindow(horizon=100.0)
        for i in range(10):
            w.add(float(i), float(i))
        assert w.mean() == pytest.approx(4.5)
        assert w.quantile(0.0) == 0.0
        assert w.quantile(1.0) == 9.0
        assert w.quantile(0.5) == 4.0

    def test_empty_window_degrades_gracefully(self):
        w = SlidingWindow(horizon=1.0)
        assert w.count == 0 and w.mean() == 0.0 and w.quantile(0.5) == 0.0

    def test_max_samples_caps_memory(self):
        w = SlidingWindow(horizon=1e9, max_samples=8)
        for i in range(100):
            w.add(float(i), float(i))
        assert w.count == 8


class TestRateWindow:
    def test_regular_stream_rate(self):
        w = RateWindow(horizon=50.0)
        for i in range(1, 501):
            w.observe(i * 0.1)  # 10 events per time unit
        assert w.rate(50.0) == pytest.approx(10.0, rel=0.05)

    def test_rate_decays_when_stream_stops(self):
        w = RateWindow(horizon=10.0)
        for i in range(1, 101):
            w.observe(i * 0.1)
        busy = w.rate(10.0)
        assert w.rate(25.0) < busy / 2


class TestEwma:
    def test_halflife_semantics(self):
        e = Ewma(halflife=1.0)
        e.update(0.0, 0.0)
        e.update(1.0, 10.0)  # one halflife later: move halfway
        assert e.value == pytest.approx(5.0)

    def test_first_sample_sets_value(self):
        e = Ewma(halflife=5.0)
        e.update(3.0, 7.5)
        assert e.value == 7.5


class TestOccupancyWindow:
    def test_histogram_is_time_weighted(self):
        w = OccupancyWindow(horizon=100.0)
        w.set_level(0.0, 0)
        w.set_level(4.0, 2)   # 4 units at level 0
        w.set_level(10.0, 1)  # 6 units at level 2
        hist = w.histogram(12.0)  # open segment: 2 units at level 1
        assert hist[0] == pytest.approx(4.0)
        assert hist[2] == pytest.approx(6.0)
        assert hist[1] == pytest.approx(2.0)

    def test_jump_counts_count_closed_segments(self):
        w = OccupancyWindow(horizon=100.0)
        w.set_level(0.0, 0)
        w.set_level(1.0, 1)
        w.set_level(2.0, 0)
        w.set_level(3.0, 1)
        counts = w.jump_counts()
        assert counts[0] == 2 and counts[1] == 1

    def test_window_evicts_old_segments(self):
        w = OccupancyWindow(horizon=5.0)
        w.set_level(0.0, 3)
        w.set_level(2.0, 0)
        w.set_level(20.0, 1)
        hist = w.histogram(21.0)
        assert 3 not in hist  # the early level-3 dwell aged out


class TestCusum:
    def test_no_drift_bounded_false_positives(self):
        # Standardized conformant stream: Exp(1) gaps as the monitor
        # feeds it.  Winsorized at 8 like the monitor's default.
        rng = random.Random(7)
        alarms = 0
        for _ in range(20):
            c = Cusum(target=1.0, k=0.5, h=24.0)
            for _ in range(2000):
                if c.update(min(rng.expovariate(1.0), 8.0)):
                    alarms += 1
                    break
        assert alarms == 0

    def test_detects_rate_increase_quickly(self):
        # Rate steps 1 -> 8: normalized gaps drop to mean 1/8.
        rng = random.Random(1)
        delays = []
        for _ in range(10):
            c = Cusum(target=1.0, k=0.5, h=24.0)
            for _ in range(500):
                c.update(min(rng.expovariate(1.0), 8.0))
            assert not c.tripped
            n = 0
            while not c.update(min(rng.expovariate(8.0), 8.0)):
                n += 1
                assert n < 500
            delays.append(n)
        assert max(delays) < 120  # tens of events, not hundreds
        assert c.direction == "down"

    def test_latches_until_reset(self):
        c = Cusum(target=0.0, k=0.0, h=1.0)
        c.update(5.0)
        assert c.tripped
        c.update(0.0)
        assert c.tripped  # s_pos only drains by k=0 here, stays up
        c.reset()
        assert not c.tripped and c.samples == 0


class TestPageHinkley:
    def test_warmup_suppresses_early_alarms(self):
        ph = PageHinkley(delta=0.0, threshold=0.5, min_samples=10)
        for x in (0.0, 100.0):
            ph.update(x)
        assert not ph.tripped  # statistic is huge but warm-up holds

    def test_no_drift_bounded_false_positives(self):
        rng = random.Random(11)
        alarms = 0
        for _ in range(20):
            ph = PageHinkley(delta=0.5, threshold=25.0, min_samples=30)
            for _ in range(2000):
                if ph.update(rng.gauss(0.0, 1.0)):
                    alarms += 1
                    break
        assert alarms == 0

    @pytest.mark.parametrize("shift,direction", [(3.0, "up"),
                                                 (-3.0, "down")])
    def test_detects_mean_shift_both_sides(self, shift, direction):
        rng = random.Random(3)
        ph = PageHinkley(delta=0.5, threshold=25.0, min_samples=30)
        for _ in range(500):
            ph.update(rng.gauss(0.0, 1.0))
        assert not ph.tripped
        n = 0
        while not ph.update(rng.gauss(shift, 1.0)):
            n += 1
            assert n < 200
        assert ph.direction == direction

    def test_reset_rearms(self):
        ph = PageHinkley(delta=0.0, threshold=1.0, min_samples=1)
        ph.update(0.0)
        ph.update(10.0)
        assert ph.tripped
        ph.reset()
        assert not ph.tripped and ph.samples == 0


class TestChi2Sf:
    def test_boundaries(self):
        assert chi2_sf(0.0, 5) == pytest.approx(1.0)
        assert chi2_sf(1e9, 5) == pytest.approx(0.0, abs=1e-12)

    def test_known_quantile(self):
        # chi2 with 1 df: P(X > 3.841) ~ 0.05
        assert chi2_sf(3.841, 1) == pytest.approx(0.05, abs=0.005)

    def test_monotone_decreasing(self):
        values = [chi2_sf(x, 4) for x in (0.0, 2.0, 6.0, 12.0)]
        assert values == sorted(values, reverse=True)


class TestGTest:
    EXPECTED = [0.5, 0.3, 0.15, 0.05]

    def test_conformant_sample_not_rejected(self):
        rng = random.Random(5)
        counts = {}
        for _ in range(1000):
            u, cum = rng.random(), 0.0
            for level, p in enumerate(self.EXPECTED):
                cum += p
                if u <= cum:
                    counts[level] = counts.get(level, 0) + 1
                    break
        result = g_test(counts, self.EXPECTED)
        assert result is not None
        assert result.p_value > 1e-4

    def test_shifted_sample_rejected(self):
        # Mass piled onto the tail the model calls rare.
        result = g_test({3: 500, 0: 500}, self.EXPECTED)
        assert result is not None
        assert result.p_value < 1e-10

    def test_levels_beyond_support_fold_into_last_cell(self):
        inside = g_test({3: 100, 0: 900}, self.EXPECTED)
        beyond = g_test({9: 100, 0: 900}, self.EXPECTED)
        assert inside is not None and beyond is not None
        assert beyond.statistic == pytest.approx(inside.statistic)

    def test_pools_sparse_cells(self):
        # Tiny n: the rare cells pool with neighbours instead of
        # blowing up the chi-square approximation.
        result = g_test({0: 3, 1: 2}, self.EXPECTED)
        assert result is None or result.df <= 3

    def test_degenerate_inputs_return_none(self):
        assert g_test({}, self.EXPECTED) is None
        assert g_test({0: 10}, [1.0]) is None
        assert g_test({0: 0, 1: 0}, self.EXPECTED) is None
