"""Tests for segmented (distributed) logs.

The paper's footnote 1 claims distribution "does not affect our
discussion"; these tests make that executable: healing over a merged
segmented log produces exactly the same recovery as over the
centralized log.
"""

import pytest

from repro.core.healer import Healer
from repro.errors import LogError
from repro.scenarios.figure1 import Figure1Scenario, build_figure1
from repro.workflow.data import DataStore
from repro.workflow.segments import LogSegment, SegmentedLog
from repro.workflow.task import TaskInstance


def inst(task, wf="w", n=1):
    return TaskInstance(wf, task, n)


class TestLogSegment:
    def test_lamport_clock_monotone(self):
        seg = LogSegment("n1")
        e1 = seg.commit(inst("a"), {}, {})
        e2 = seg.commit(inst("b"), {}, {})
        assert e2.lamport > e1.lamport
        assert (e1.local_seq, e2.local_seq) == (0, 1)

    def test_witness_advances_clock(self):
        seg = LogSegment("n1")
        seg.witness(10)
        entry = seg.commit(inst("a"), {}, {})
        assert entry.lamport == 11

    def test_witness_never_rewinds(self):
        seg = LogSegment("n1")
        seg.commit(inst("a"), {}, {})
        seg.witness(0)
        assert seg.clock == 1


class TestSegmentedLog:
    def test_node_validation(self):
        with pytest.raises(LogError):
            SegmentedLog([])
        with pytest.raises(LogError):
            SegmentedLog(["n1", "n1"])
        with pytest.raises(LogError):
            SegmentedLog(["n1"]).segment("ghost")

    def test_notify_creates_cross_node_order(self):
        slog = SegmentedLog(["n1", "n2"])
        first = slog.commit_on("n1", inst("a"), {}, {"x": 1},
                               notify=["n2"])
        second = slog.commit_on("n2", inst("b", wf="v"), {"x": 1}, {})
        assert second.lamport > first.lamport
        merged = slog.merge()
        assert [r.uid for r in merged.normal_records()] == [
            "w/a#1", "v/b#1"
        ]

    def test_concurrent_commits_merge_deterministically(self):
        slog = SegmentedLog(["n1", "n2"])
        slog.commit_on("n2", inst("b", wf="v"), {}, {})
        slog.commit_on("n1", inst("a"), {}, {})
        merged = slog.merge()
        # Equal Lamport stamps break ties by node id.
        assert [r.uid for r in merged.normal_records()] == [
            "w/a#1", "v/b#1"
        ]

    def test_total_entries(self):
        slog = SegmentedLog(["n1", "n2"])
        slog.commit_on("n1", inst("a"), {}, {})
        slog.commit_on("n2", inst("b"), {}, {})
        assert slog.total_entries() == 2


class TestDistributedFigure1:
    """Figure 1's workflows distributed over three processors."""

    @staticmethod
    def distribute(scenario, notify_all: bool):
        """Replay the centralized log into per-processor segments.

        ``notify_all`` broadcasts every commit (a total order); the
        causal variant notifies only nodes that later touch the same
        data objects, as a real distributed WFMS would (the object's
        owner serializes conflicting accesses).
        """
        assignment = {"wf1": "P1", "wf2": "P2"}
        slog = SegmentedLog(["P1", "P2", "P3"])
        records = scenario.log.normal_records()
        # Which nodes touch each object after a given commit?
        touchers = {}
        for r in records:
            for name in list(r.reads) + list(r.writes):
                touchers.setdefault(name, set()).add(
                    assignment[r.instance.workflow_instance]
                )
        for r in records:
            node = assignment[r.instance.workflow_instance]
            if notify_all:
                notify = [n for n in slog.nodes if n != node]
            else:
                notify = sorted(
                    {
                        n
                        for name in list(r.reads) + list(r.writes)
                        for n in touchers.get(name, ())
                    }
                    - {node}
                )
            slog.commit_on(
                node, r.instance, r.reads, r.writes, r.chosen,
                notify=notify,
            )
        return slog

    def test_broadcast_merge_reproduces_central_order(self, figure1):
        slog = self.distribute(figure1, notify_all=True)
        merged = slog.merge()
        assert [r.uid for r in merged.normal_records()] == [
            r.uid for r in figure1.log.normal_records()
        ]

    def test_healing_over_merged_log_identical(self, figure1):
        """The headline property: distribution does not change the
        recovery (footnote 1)."""
        central_report = build_figure1(attacked=True).heal_now()

        slog = self.distribute(figure1, notify_all=True)
        merged = slog.merge()
        healer = Healer(figure1.store, merged,
                        figure1.specs_by_instance)
        report = healer.heal([figure1.malicious_uid])

        T = Figure1Scenario.task_ids
        assert T(report.undone) == T(central_report.undone)
        assert T(report.redone) == T(central_report.redone)
        assert T(report.abandoned) == T(central_report.abandoned)
        assert T(report.new_executions) == T(
            central_report.new_executions
        )

    def test_causal_notification_still_heals_correctly(self, figure1):
        """With only conflict-based notification the merged order may
        differ from the central one, but causality (and therefore the
        recovery outcome) is preserved."""
        from repro.core.axioms import audit_strict_correctness

        slog = self.distribute(figure1, notify_all=False)
        merged = slog.merge()
        # Every reader still follows the writer of the version it read.
        pos = {r.uid: i for i, r in enumerate(merged.normal_records())}
        for r in merged.normal_records():
            for name, ver in r.reads.items():
                writer = merged.writer_of_version(name, ver)
                if writer is not None:
                    assert pos[writer.uid] < pos[r.uid]

        healer = Healer(figure1.store, merged,
                        figure1.specs_by_instance)
        report = healer.heal([figure1.malicious_uid])
        audit = audit_strict_correctness(
            figure1.specs_by_instance,
            figure1.initial_data,
            report.final_history,
            figure1.store.snapshot(),
        )
        assert audit.ok, audit.problems
        T = Figure1Scenario.task_ids
        assert T(report.undone) == figure1.EXPECTED_UNDONE
