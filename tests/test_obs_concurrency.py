"""Concurrent-hammer tests for the obs layer's thread-safety contract.

The fleet control plane (:mod:`repro.fleet`) shares one
``MetricsRegistry`` and one ``EventBus`` across a worker pool; these
tests pin the exact-totals guarantees that sharing requires.  The
hammers target the genuinely racy paths of the pre-lock code —
compound read-modify-write operations that span a Python call
(``Gauge.inc`` → ``set``) and the registry's check-then-insert
get-or-create — and fail on that code reliably (``Gauge.inc`` loses
more than half its updates under a 1 µs switch interval).
"""

import sys
import threading

import pytest

from repro.obs.events import AlertEnqueued, EventBus, ScanStep
from repro.obs.metrics import MetricsRegistry

THREADS = 8


@pytest.fixture(autouse=True)
def tight_switch_interval():
    """Shrink the GIL switch interval so races surface quickly."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(old)


def hammer(worker, threads=THREADS):
    """Run ``worker(tid)`` on ``threads`` threads, barrier-started so
    every thread enters the contended section together; re-raise the
    first worker exception."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(tid):
        barrier.wait()
        try:
            worker(tid)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    ts = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    if errors:
        raise errors[0]


class TestMetricsHammer:
    def test_counter_inc_exact_under_contention(self):
        reg = MetricsRegistry()
        c = reg.counter("hammer_total")
        n = 20_000
        hammer(lambda tid: [c.inc() for _ in range(n)])
        assert c.value == THREADS * n

    def test_gauge_inc_dec_exact_under_contention(self):
        # Gauge.inc/dec read the level, then call set(): a preemption
        # between read and write loses updates on unlocked code.
        reg = MetricsRegistry()
        g = reg.gauge("hammer_level")
        n = 20_000

        def work(tid):
            for _ in range(n):
                g.inc()
            for _ in range(n // 2):
                g.dec()

        hammer(work)
        assert g.value == THREADS * (n - n // 2)
        assert g.high_water <= THREADS * n

    def test_histogram_observe_exact_under_contention(self):
        reg = MetricsRegistry()
        h = reg.histogram("hammer_hist", buckets=(0.5, 1.5, 2.5))
        n = 20_000
        hammer(lambda tid: [h.observe(tid % 3) for _ in range(n)])
        assert h.count == THREADS * n
        assert sum(h.bucket_counts) == THREADS * n
        assert h.sum == sum(tid % 3 for tid in range(THREADS)) * n

    def test_registry_get_or_create_returns_one_instrument(self):
        # Unlocked check-then-insert lets two threads build distinct
        # instruments for the same fresh key; one is silently replaced
        # and its increments vanish.  Every thread must see the same
        # object for the same (name, labels) pair.
        reg = MetricsRegistry()
        rounds = 400
        gate = threading.Barrier(THREADS)
        seen = [[] for _ in range(THREADS)]

        def work(tid):
            for k in range(rounds):
                gate.wait()
                c = reg.counter("fresh", labels={"k": str(k)})
                c.inc()
                seen[tid].append(id(c))

        hammer(work)
        for k in range(rounds):
            assert len({seen[tid][k] for tid in range(THREADS)}) == 1, (
                f"round {k}: threads received distinct instruments"
            )
        total = sum(m.value for m in reg.metrics())
        assert total == THREADS * rounds


class TestEventBusHammer:
    def test_subscribe_unsubscribe_balanced_count(self):
        bus = EventBus()
        n = 2_000

        def work(tid):
            for _ in range(n):
                h = bus.subscribe(lambda event: None)
                bus.unsubscribe(h)

        hammer(work)
        assert not bus.active

    def test_publish_during_resubscription(self):
        # Publishing must never crash or mis-dispatch while other
        # threads churn the handler lists.
        bus = EventBus()
        reg = MetricsRegistry()
        delivered = reg.counter("delivered")
        bus.subscribe(lambda event: delivered.inc(),
                      types=[AlertEnqueued])
        n = 2_000

        def work(tid):
            if tid % 2 == 0:
                for i in range(n):
                    bus.publish(AlertEnqueued(float(i), uid="u",
                                              queue_depth=1))
            else:
                for _ in range(n):
                    h = bus.subscribe(lambda event: None,
                                      types=[ScanStep])
                    bus.unsubscribe(h)

        hammer(work)
        assert delivered.value == (THREADS // 2) * n

    def test_reentrant_publish_from_handler(self):
        # The health monitor republishes onto the bus mid-dispatch; the
        # bus must not hold its lock while handlers run.
        bus = EventBus()
        seen = []

        def republisher(event):
            if isinstance(event, AlertEnqueued):
                bus.publish(ScanStep(event.time, uid=event.uid,
                                     outstanding_units=0, cost=1))

        bus.subscribe(republisher)
        bus.subscribe(lambda event: seen.append(event.kind))
        bus.publish(AlertEnqueued(0.0, uid="u1", queue_depth=1))
        assert seen == ["ScanStep", "AlertEnqueued"]


class TestSanitizedHammers:
    """The same hammers under the dynamic race sanitizer: the locked
    code must come out violation-free even while genuinely contended,
    proving the instrumentation attributes the real locks correctly
    (no false positives at full thread pressure)."""

    def test_metrics_hammer_sanitized_clean(self):
        from repro.lint.sanitizer import RaceSanitizer

        san = RaceSanitizer()
        reg = MetricsRegistry()
        san.instrument_metrics(reg)
        c = reg.counter("san_total")
        g = reg.gauge("san_level")
        n = 2_000

        def work(tid):
            for _ in range(n):
                c.inc()
            for _ in range(n // 2):
                g.inc()

        hammer(work)
        assert c.value == THREADS * n
        assert g.value == THREADS * (n // 2)
        assert san.violations == (), san.report().render_text()

    def test_get_or_create_hammer_sanitized_clean(self):
        from repro.lint.sanitizer import RaceSanitizer

        san = RaceSanitizer()
        reg = MetricsRegistry()
        san.instrument_metrics(reg)
        rounds = 100

        def work(tid):
            for k in range(rounds):
                reg.counter("fresh", labels={"k": str(k)}).inc()

        hammer(work)
        total = sum(m.value for m in reg.metrics())
        assert total == THREADS * rounds
        assert san.violations == (), san.report().render_text()

    def test_bus_hammer_sanitized_clean(self):
        from repro.lint.sanitizer import RaceSanitizer

        san = RaceSanitizer()
        bus = EventBus()
        san.instrument_bus(bus)
        n = 500

        def work(tid):
            if tid % 2 == 0:
                for i in range(n):
                    bus.publish(AlertEnqueued(float(i), uid="u",
                                              queue_depth=1))
            else:
                for _ in range(n):
                    h = bus.subscribe(lambda event: None,
                                      types=[ScanStep])
                    bus.unsubscribe(h)

        hammer(work)
        assert san.violations == (), san.report().render_text()
