"""Tests for system snapshots: dump an attacked system, heal the copy."""

import json

import pytest

from repro.core.axioms import audit_strict_correctness
from repro.core.healer import Healer
from repro.ids.attacks import AttackCampaign
from repro.persistence import (
    PersistenceError,
    dump_system,
    load_system,
)
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.serialize import TaskDocument, WorkflowDocument


def order_doc():
    return WorkflowDocument(
        workflow_id="order",
        tasks=(
            TaskDocument("price", writes={"total": "qty * unit"}),
            TaskDocument(
                "check",
                writes={"eligible": "total >= 100"},
                choose=(("apply", "eligible"), ("skip", "true")),
            ),
            TaskDocument("apply",
                         writes={"payable": "total - total // 10"}),
            TaskDocument("skip", writes={"payable": "total"}),
        ),
        edges=(("price", "check"), ("check", "apply"),
               ("check", "skip")),
    )


@pytest.fixture
def attacked_system():
    doc = order_doc()
    spec = doc.build()
    initial = {"qty": 2, "unit": 20, "total": 0, "eligible": 0,
               "payable": 0}
    store, log = DataStore(initial), SystemLog()
    engine = Engine(store, log)
    campaign = AttackCampaign().corrupt_task("price", total=900)
    engine.run_to_completion(engine.new_run(spec, "order.1"),
                             tamper=campaign)
    return dict(
        doc=doc, store=store, log=log, initial=initial,
        malicious=campaign.malicious_uids,
        specs=engine.specs_by_instance,
    )


def dump(attacked):
    return dump_system(
        attacked["store"], attacked["log"],
        documents={"order": attacked["doc"]},
        instance_documents={"order.1": "order"},
        initial_data=attacked["initial"],
        indent=2,
    )


class TestRoundTrip:
    def test_snapshot_is_json(self, attacked_system):
        payload = json.loads(dump(attacked_system))
        assert payload["format"] == "repro-system-snapshot"
        assert payload["instances"] == {"order.1": "order"}

    def test_store_history_preserved(self, attacked_system):
        snap = load_system(dump(attacked_system))
        original = attacked_system["store"]
        for name in original.names():
            assert [
                (v.number, v.value, v.writer)
                for v in snap.store.history(name)
            ] == [
                (v.number, v.value, v.writer)
                for v in original.history(name)
            ]

    def test_log_preserved(self, attacked_system):
        snap = load_system(dump(attacked_system))
        original = attacked_system["log"]
        assert [r.uid for r in snap.log.records()] == [
            r.uid for r in original.records()
        ]
        assert [r.chosen for r in snap.log.records()] == [
            r.chosen for r in original.records()
        ]

    def test_healing_the_copy_matches_healing_the_original(
        self, attacked_system
    ):
        """The forensics workflow: heal the reloaded snapshot on
        another 'host'; outcome identical to healing in place."""
        snapshot_text = dump(attacked_system)

        # Heal the original.
        healer = Healer(attacked_system["store"], attacked_system["log"],
                        attacked_system["specs"])
        original_report = healer.heal(attacked_system["malicious"])

        # Heal the reconstruction.
        snap = load_system(snapshot_text)
        copy_healer = Healer(snap.store, snap.log,
                             snap.specs_by_instance)
        copy_report = copy_healer.heal(attacked_system["malicious"])

        assert set(copy_report.undone) == set(original_report.undone)
        assert set(copy_report.redone) == set(original_report.redone)
        assert copy_report.new_executions == (
            original_report.new_executions
        )
        assert snap.store.snapshot() == attacked_system[
            "store"
        ].snapshot()
        audit = audit_strict_correctness(
            snap.specs_by_instance, snap.initial_data,
            copy_report.final_history, snap.store.snapshot(),
        )
        assert audit.ok, audit.problems


class TestValidation:
    def test_unknown_document_reference_rejected_on_dump(
        self, attacked_system
    ):
        with pytest.raises(PersistenceError, match="unknown document"):
            dump_system(
                attacked_system["store"], attacked_system["log"],
                documents={},
                instance_documents={"order.1": "ghost"},
                initial_data=attacked_system["initial"],
            )

    def test_non_json_value_rejected(self, attacked_system):
        attacked_system["store"].write("total", object(), writer="x")
        with pytest.raises(PersistenceError, match="non-JSON-safe"):
            dump(attacked_system)

    def test_bad_json_rejected(self):
        with pytest.raises(PersistenceError, match="invalid snapshot"):
            load_system("{nope")

    def test_wrong_format_rejected(self):
        with pytest.raises(PersistenceError, match="not a system"):
            load_system(json.dumps({"format": "other"}))

    def test_wrong_version_rejected(self):
        with pytest.raises(PersistenceError, match="version"):
            load_system(json.dumps(
                {"format": "repro-system-snapshot", "version": 99}
            ))

    def test_version_gap_rejected(self, attacked_system):
        payload = json.loads(dump(attacked_system))
        payload["store"]["total"] = [
            {"number": 0, "value": 0, "writer": None},
            {"number": 2, "value": 5, "writer": "x"},
        ]
        with pytest.raises(PersistenceError, match="gap"):
            load_system(json.dumps(payload))

    def test_unknown_instance_document_on_load(self, attacked_system):
        payload = json.loads(dump(attacked_system))
        payload["instances"]["order.1"] = "ghost"
        with pytest.raises(PersistenceError, match="unknown document"):
            load_system(json.dumps(payload))
