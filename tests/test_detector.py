"""Unit tests for the IDS simulator."""

import random

import pytest

from repro.ids.attacks import AttackCampaign
from repro.ids.detector import DetectorConfig, IntrusionDetector
from repro.workflow.log import SystemLog
from repro.workflow.task import TaskInstance


def attacked_log(n_tasks=5, malicious=("w/t1#1",)):
    """A log plus a campaign whose ground truth is ``malicious``."""
    log = SystemLog()
    campaign = AttackCampaign()
    for i in range(1, n_tasks + 1):
        inst = TaskInstance("w", f"t{i}", 1)
        log.commit(inst, reads={}, writes={})
        if inst.uid in malicious:
            campaign._malicious[inst.uid] = "test"  # ground truth
    return log, campaign


class TestDetectorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(detection_probability=1.5)
        with pytest.raises(ValueError):
            DetectorConfig(mean_detection_delay=-1)
        with pytest.raises(ValueError):
            DetectorConfig(false_alarm_rate=2)
        with pytest.raises(ValueError):
            DetectorConfig(report_period=-0.1)


class TestDetection:
    def test_perfect_detector_reports_exactly_the_malicious(self):
        log, campaign = attacked_log(malicious=("w/t2#1", "w/t4#1"))
        ids = IntrusionDetector(campaign)
        assert ids.inspect(log) == 2
        alerts = ids.poll(now=0.0)
        assert sorted(a.uid for a in alerts) == ["w/t2#1", "w/t4#1"]
        assert all(a.genuine for a in alerts)
        assert ids.missed == ()

    def test_inspect_idempotent(self):
        log, campaign = attacked_log()
        ids = IntrusionDetector(campaign)
        assert ids.inspect(log) == 1
        assert ids.inspect(log) == 0

    def test_detection_probability_zero_misses_everything(self):
        log, campaign = attacked_log()
        ids = IntrusionDetector(
            campaign, DetectorConfig(detection_probability=0.0)
        )
        ids.inspect(log)
        assert ids.poll(1e9) == []
        assert ids.missed == ("w/t1#1",)

    def test_administrator_report_recovers_missed(self):
        log, campaign = attacked_log()
        ids = IntrusionDetector(
            campaign, DetectorConfig(detection_probability=0.0)
        )
        ids.inspect(log)
        alert = ids.administrator_report("w/t1#1", now=3.0)
        assert alert.uid == "w/t1#1"
        assert ids.missed == ()
        assert [a.uid for a in ids.poll(3.0)] == ["w/t1#1"]

    def test_delay_defers_release(self):
        log, campaign = attacked_log()
        ids = IntrusionDetector(
            campaign,
            DetectorConfig(mean_detection_delay=10.0),
            rng=random.Random(1),
        )
        ids.inspect(log, now=0.0)
        held = ids.poll(now=0.0)
        eventually = ids.poll(now=1e6)
        assert len(held) + len(eventually) == 1
        assert eventually or held

    def test_report_period_batches(self):
        log, campaign = attacked_log()
        ids = IntrusionDetector(
            campaign, DetectorConfig(report_period=5.0)
        )
        ids.inspect(log, now=1.0)  # detected at t=1, released at t=5
        assert ids.poll(now=4.9) == []
        assert [a.uid for a in ids.poll(now=5.0)] == ["w/t1#1"]

    def test_false_alarms_marked_not_genuine(self):
        log, campaign = attacked_log(n_tasks=50, malicious=())
        ids = IntrusionDetector(
            campaign,
            DetectorConfig(false_alarm_rate=0.5),
            rng=random.Random(3),
        )
        ids.inspect(log)
        alerts = ids.drain()
        assert alerts  # with rate 0.5 over 50 records this is certain
        assert all(not a.genuine for a in alerts)

    def test_drain_flushes_everything(self):
        log, campaign = attacked_log()
        ids = IntrusionDetector(
            campaign, DetectorConfig(mean_detection_delay=100.0)
        )
        ids.inspect(log)
        assert len(ids.drain()) == 1
        assert ids.drain() == []
