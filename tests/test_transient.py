"""Tests for transient analysis (Equations 2 and 3)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.steady_state import steady_state
from repro.markov.transient import (
    cumulative_times,
    transient_probabilities,
    transient_probabilities_expm,
)


def two_state(a=2.0, b=3.0):
    return CTMC.from_rates(["on", "off"], {("on", "off"): a,
                                           ("off", "on"): b})


class TestEquation2:
    def test_closed_form_two_state(self):
        """π_on(t) = b/(a+b) + a/(a+b)·e^{-(a+b)t} starting at on."""
        a, b = 2.0, 3.0
        chain = two_state(a, b)
        pi0 = chain.point_distribution("on")
        for t in (0.1, 0.5, 1.0, 3.0):
            pi_t = transient_probabilities(chain, pi0, t)
            expected = b / (a + b) + (a / (a + b)) * np.exp(-(a + b) * t)
            assert pi_t[0] == pytest.approx(expected, abs=1e-9)

    def test_uniformization_matches_expm(self, paper_stg):
        chain = paper_stg.ctmc()
        pi0 = paper_stg.initial_distribution()
        for t in (0.25, 1.0, 4.0):
            uni = transient_probabilities(chain, pi0, t)
            exp = transient_probabilities_expm(chain, pi0, t)
            assert np.abs(uni - exp).max() < 1e-8

    def test_t_zero_returns_initial(self, paper_stg):
        chain = paper_stg.ctmc()
        pi0 = paper_stg.initial_distribution()
        assert transient_probabilities(chain, pi0, 0.0) == pytest.approx(pi0)

    def test_long_horizon_converges_to_steady_state(self, small_stg):
        # The full 15-buffer system mixes extremely slowly (its congested
        # region is metastable); the small instance converges quickly.
        chain = small_stg.ctmc()
        pi0 = small_stg.initial_distribution()
        pi_inf = steady_state(chain)
        pi_t = transient_probabilities(chain, pi0, 100.0)
        assert np.abs(pi_t - pi_inf).max() < 1e-8

    def test_uniformization_stable_at_huge_horizons(self, small_stg):
        """λt ≈ 2·10⁴ exercises the log-space weight recurrence."""
        chain = small_stg.ctmc()
        pi0 = small_stg.initial_distribution()
        pi_inf = steady_state(chain)
        pi_t = transient_probabilities(chain, pi0, 1000.0)
        assert np.abs(pi_t - pi_inf).max() < 1e-8

    def test_distribution_preserved(self, paper_stg):
        chain = paper_stg.ctmc()
        pi0 = paper_stg.initial_distribution()
        pi_t = transient_probabilities(chain, pi0, 2.5)
        assert pi_t.sum() == pytest.approx(1.0)
        assert (pi_t >= -1e-12).all()

    def test_negative_time_rejected(self, paper_stg):
        chain = paper_stg.ctmc()
        with pytest.raises(ModelError):
            transient_probabilities(chain, paper_stg.initial_distribution(),
                                    -1.0)

    def test_shape_mismatch_rejected(self, paper_stg):
        with pytest.raises(ModelError):
            transient_probabilities(paper_stg.ctmc(), np.array([1.0]), 1.0)

    def test_absorbing_chain(self):
        """A chain with an absorbing state accumulates mass there."""
        chain = CTMC.from_rates(["a", "b"], {("a", "b"): 1.0})
        pi0 = chain.point_distribution("a")
        pi_t = transient_probabilities(chain, pi0, 10.0)
        assert pi_t[1] == pytest.approx(1.0, abs=1e-4)

    def test_zero_generator_is_identity(self):
        chain = CTMC(["a", "b"], np.zeros((2, 2)))
        pi0 = np.array([0.3, 0.7])
        assert transient_probabilities(chain, pi0, 5.0) == pytest.approx(pi0)


class TestEquation3:
    def test_cumulative_times_sum_to_t(self, paper_stg):
        chain = paper_stg.ctmc()
        pi0 = paper_stg.initial_distribution()
        for t in (0.5, 2.0, 10.0):
            lt = cumulative_times(chain, pi0, t)
            assert lt.sum() == pytest.approx(t)
            assert (lt >= -1e-12).all()

    def test_two_state_closed_form(self):
        """l_on(t) = ∫ π_on(s) ds with the known exponential solution."""
        a, b = 2.0, 3.0
        chain = two_state(a, b)
        pi0 = chain.point_distribution("on")
        t = 1.7
        lt = cumulative_times(chain, pi0, t)
        s = a + b
        expected = (b / s) * t + (a / s ** 2) * (1 - np.exp(-s * t))
        assert lt[0] == pytest.approx(expected, abs=1e-9)

    def test_zero_horizon(self, paper_stg):
        chain = paper_stg.ctmc()
        lt = cumulative_times(chain, paper_stg.initial_distribution(), 0.0)
        assert np.all(lt == 0.0)

    def test_matches_numeric_integral_of_pi(self):
        chain = two_state()
        pi0 = chain.point_distribution("off")
        t, n = 2.0, 2000
        ts = np.linspace(0, t, n + 1)
        vals = np.array(
            [transient_probabilities_expm(chain, pi0, s) for s in ts]
        )
        numeric = np.trapezoid(vals, ts, axis=0)
        lt = cumulative_times(chain, pi0, t)
        assert lt == pytest.approx(numeric, abs=1e-5)

    def test_negative_time_rejected(self):
        chain = two_state()
        with pytest.raises(ModelError):
            cumulative_times(chain, chain.point_distribution("on"), -0.5)
