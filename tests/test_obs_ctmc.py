"""Empirical validation of the CTMC through the observability layer.

The acceptance check for the obs subsystem: one calibrated overloaded
configuration is simulated exactly (Gillespie), *measured through the
event bus and pipeline metrics* — not through the simulator's own
counters — and the measured quantities must agree with the analytic
steady state.  Because arrivals are Poisson, PASTA makes the fraction of
arrivals lost equal (in the limit) to the steady-state probability of
the loss states, i.e. Definition 3's loss probability.
"""

import pytest

from repro.markov.degradation import power_law
from repro.markov.metrics import category_probabilities, loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.obs.runner import run_gillespie_observed

# Calibrated overloaded configuration: lambda = 4 against mu1 = 6,
# xi1 = 8 with a small buffer gives a large, well-separated loss
# probability (~0.69), so agreement is meaningful rather than a
# comparison of two numbers near zero.
STG = RecoverySTG(
    arrival_rate=4.0,
    scan=power_law(6.0, 1.0),
    recovery=power_law(8.0, 1.0),
    recovery_buffer=3,
)
HORIZON = 2000.0
SEED = 1
TOLERANCE = 0.02


@pytest.fixture(scope="module")
def observed():
    return run_gillespie_observed(STG, horizon=HORIZON, seed=SEED)


@pytest.fixture(scope="module")
def analytic():
    pi = steady_state(STG.ctmc())
    return {
        "loss": loss_probability(STG, pi),
        "categories": category_probabilities(STG, pi),
    }


class TestCtmcValidation:
    def test_measured_loss_fraction_matches_prediction(self, observed,
                                                       analytic):
        measured = observed.metrics.loss_fraction
        predicted = analytic["loss"]
        assert predicted > 0.5  # the configuration really is overloaded
        assert measured == pytest.approx(predicted, abs=TOLERANCE)

    def test_measured_occupancy_matches_steady_state(self, observed,
                                                     analytic):
        occ = observed.metrics.occupancy()
        for category in StateCategory:
            predicted = analytic["categories"][category]
            measured = occ.get(category.name, 0.0)
            assert measured == pytest.approx(predicted, abs=TOLERANCE)

    def test_metrics_agree_with_simulator_counters(self, observed):
        """The bus-derived numbers must equal the simulator's own
        bookkeeping — same trajectory, two independent observers."""
        m = observed.metrics
        result = observed.result
        assert m.alerts_lost.value == result.arrivals_lost
        assert (m.alerts_enqueued.value + m.alerts_lost.value
                == result.arrivals)
        assert m.loss_fraction == pytest.approx(
            result.alert_loss_fraction)

    def test_queue_high_water_bounded_by_buffers(self, observed):
        m = observed.metrics
        assert 0 < m.alert_depth.high_water <= STG.alert_buffer
        assert 0 < m.recovery_depth.high_water <= STG.recovery_buffer
