"""Regression corpus replay.

Every file in ``tests/corpus/`` is a full campaign document (the same
format ``repro-workflow fuzz`` writes for shrunk counterexamples).
Each one replays through the complete oracle with zero violations —
any healing or verification regression that breaks one of these
exercised behaviours (multi-stage healing, false-alarm floods,
SCAN/RECOVERY-timed injection, correlated fleet campaigns) fails here
with the offending file named.
"""

import glob
import os

import pytest

from repro.scenarios.fuzz import load_campaign, run_campaign

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_present():
    """The committed corpus must cover the DSL's attack vocabulary."""
    names = {os.path.basename(p) for p in CORPUS}
    assert {
        "corrupt-basic.json",
        "multi-stage.json",
        "false-alarm-flood.json",
        "scan-timed.json",
        "recovery-timed.json",
        "fleet-correlated.json",
        "monitor-scan-timed.json",
    } <= names


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_corpus_file_replays_clean(path):
    campaign = load_campaign(path)
    outcome = run_campaign(campaign)
    assert outcome.ok, [v.render() for v in outcome.violations]
    assert outcome.plans_checked >= 1 or campaign.tenants > 1
    assert outcome.heals >= 1
    # The runtime LTLf conformance monitor must stay silent on every
    # honest corpus campaign (its violations would also fail `ok`
    # above; this pins the dedicated counter too).
    assert outcome.conformance_violations == 0


def test_corpus_covers_triggers_and_kinds():
    kinds = set()
    triggers = set()
    tenants = 1
    for path in CORPUS:
        campaign = load_campaign(path)
        tenants = max(tenants, campaign.tenants)
        for step in campaign.steps:
            kinds.add(step.kind)
            triggers.add(step.trigger)
    assert {"corrupt", "forge-run", "false-alarm"} <= kinds
    assert {"ingest", "scan", "recovery"} <= triggers
    assert tenants > 1  # at least one fleet campaign
