"""Tests for Axiom 1 and the strict-correctness audit (Definition 2)."""

import pytest

from repro.core.axioms import (
    CorrectnessReport,
    HistoryStep,
    audit_strict_correctness,
    generates_incorrect_data,
)
from repro.workflow.log import SystemLog
from repro.workflow.spec import workflow
from repro.workflow.task import TaskInstance


def spec_ab():
    return (
        workflow("w")
        .task("a", reads=["x"], writes=["y"],
              compute=lambda d: {"y": d["x"] + 1})
        .task("b", reads=["y"], writes=["z"],
              compute=lambda d: {"z": d["y"] * 2})
        .chain("a", "b")
        .build()
    )


def history(*steps):
    return [HistoryStep("run", t, n) for t, n in steps]


class TestAxiom1:
    def test_condition1_malicious_code(self):
        log = SystemLog()
        rec = log.commit(TaskInstance("w", "t1", 1), reads={}, writes={})
        assert generates_incorrect_data(rec, ["w/t1#1"], [])
        assert not generates_incorrect_data(rec, [], [])

    def test_condition2_dirty_read(self):
        log = SystemLog()
        rec = log.commit(
            TaskInstance("w", "t2", 1), reads={"x": 3}, writes={}
        )
        assert generates_incorrect_data(rec, [], [("x", 3)])
        assert not generates_incorrect_data(rec, [], [("x", 2)])


class TestAudit:
    def test_accepts_correct_history(self):
        report = audit_strict_correctness(
            {"run": spec_ab()},
            {"x": 1, "y": 0, "z": 0},
            history(("a", 1), ("b", 1)),
            {"x": 1, "y": 2, "z": 4},
        )
        assert report.ok and report.problems == []
        assert report.replayed_snapshot["z"] == 4

    def test_detects_wrong_final_value(self):
        report = audit_strict_correctness(
            {"run": spec_ab()},
            {"x": 1, "y": 0, "z": 0},
            history(("a", 1), ("b", 1)),
            {"x": 1, "y": 2, "z": 999},
        )
        assert not report.ok
        assert any("z" in p and "999" in p for p in report.problems)

    def test_detects_illegal_path(self):
        report = audit_strict_correctness(
            {"run": spec_ab()},
            {"x": 1, "y": 0, "z": 0},
            history(("b", 1), ("a", 1)),  # b cannot run first
            {"x": 1, "y": 2, "z": 4},
        )
        assert not report.ok
        assert any("illegal path" in p for p in report.problems)

    def test_detects_incomplete_workflow(self):
        report = audit_strict_correctness(
            {"run": spec_ab()},
            {"x": 1, "y": 0, "z": 0},
            history(("a", 1)),
            {"x": 1, "y": 2, "z": 0},
        )
        assert not report.ok
        assert any("did not reach an end node" in p for p in report.problems)

    def test_completion_check_optional(self):
        report = audit_strict_correctness(
            {"run": spec_ab()},
            {"x": 1, "y": 0, "z": 0},
            history(("a", 1)),
            {"x": 1, "y": 2, "z": 0},
            require_completion=False,
        )
        assert report.ok, report.problems

    def test_detects_bad_instance_numbers(self):
        report = audit_strict_correctness(
            {"run": spec_ab()},
            {"x": 1, "y": 0, "z": 0},
            history(("a", 2), ("b", 1)),  # a's first visit must be #1
            {"x": 1, "y": 2, "z": 4},
        )
        assert not report.ok
        assert any("instance number" in p for p in report.problems)

    def test_detects_missing_spec(self):
        report = audit_strict_correctness(
            {},
            {"x": 1},
            history(("a", 1)),
            {"x": 1},
        )
        assert not report.ok
        assert any("no spec" in p for p in report.problems)

    def test_detects_branch_divergence(self, diamond_spec):
        # With x=1 the replayed b chooses c; a history going through d
        # is inconsistent with the data.
        report = audit_strict_correctness(
            {"run": diamond_spec},
            {"x": 1, "yc": 0, "yd": 0},
            [
                HistoryStep("run", "a", 1),
                HistoryStep("run", "b", 1),
                HistoryStep("run", "d", 1),  # wrong arm
                HistoryStep("run", "e", 1),
            ],
            {"x": 1},
        )
        assert not report.ok
        assert any("illegal path" in p for p in report.problems)

    def test_report_truthiness(self):
        assert CorrectnessReport(ok=True)
        assert not CorrectnessReport(ok=False, problems=["x"])
