"""Tests for first-passage (hitting time) analysis."""

import random

import pytest

from repro.errors import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.passage import (
    expected_hitting_times,
    hitting_time_cdf,
    mean_recovery_excursion,
    mean_time_to_loss,
    survival_probability,
)
from repro.markov.stg import RecoverySTG, State


class TestHittingTimes:
    def test_pure_birth_chain_closed_form(self):
        """0 → 1 → 2 at rates r: hitting 2 from 0 takes 2/r."""
        r = 4.0
        chain = CTMC.from_rates([0, 1, 2], {(0, 1): r, (1, 2): r})
        h = expected_hitting_times(chain, [2])
        assert h[chain.index_of(0)] == pytest.approx(2 / r)
        assert h[chain.index_of(1)] == pytest.approx(1 / r)
        assert h[chain.index_of(2)] == 0.0

    def test_two_state_round_trip(self):
        """on→off at a, off→on at b: hitting off from on takes 1/a."""
        chain = CTMC.from_rates(["on", "off"], {("on", "off"): 2.0,
                                                ("off", "on"): 3.0})
        h = expected_hitting_times(chain, ["off"])
        assert h[chain.index_of("on")] == pytest.approx(0.5)

    def test_unreachable_target_is_infinite(self):
        chain = CTMC.from_rates(["a", "b", "c"], {("a", "b"): 1.0,
                                                  ("c", "b"): 1.0})
        h = expected_hitting_times(chain, ["c"])
        assert h[chain.index_of("a")] == float("inf")
        assert h[chain.index_of("c")] == 0.0

    def test_empty_target_rejected(self):
        chain = CTMC.from_rates(["a", "b"], {("a", "b"): 1.0})
        with pytest.raises(ModelError):
            expected_hitting_times(chain, [])

    def test_matches_simulation(self):
        """Hitting time of the loss edge vs simulated first passages."""
        stg = RecoverySTG.paper_default(arrival_rate=1.0, mu1=2.0,
                                        xi1=3.0, buffer_size=3)
        analytic = mean_time_to_loss(stg)
        rng = random.Random(0)
        rates = stg.transition_rates()
        out = {}
        for (src, dst), rate in rates.items():
            out.setdefault(src, []).append((dst, rate))
        loss = set(stg.loss_states())
        samples = []
        for __ in range(400):
            state, t = stg.normal_state, 0.0
            while state not in loss:
                options = out[state]
                total = sum(r for _, r in options)
                t += rng.expovariate(total)
                x = rng.random() * total
                acc = 0.0
                for dst, r in options:
                    acc += r
                    if x <= acc:
                        state = dst
                        break
            samples.append(t)
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(analytic, rel=0.15)


class TestHittingTimeCdf:
    def test_exponential_closed_form(self):
        """Hitting 'off' from 'on' at rate a is Exp(a)."""
        import numpy as np

        a = 2.0
        chain = CTMC.from_rates(["on", "off"], {("on", "off"): a,
                                                ("off", "on"): 3.0})
        ts = [0.1, 0.5, 1.0, 2.0]
        cdf = hitting_time_cdf(chain, ["off"], "on", ts)
        expected = 1 - np.exp(-a * np.array(ts))
        assert cdf == pytest.approx(expected, abs=1e-10)

    def test_monotone_and_bounded(self):
        stg = RecoverySTG.paper_default(mu1=2.0, xi1=3.0, buffer_size=4)
        ts = [0.0, 1.0, 5.0, 20.0, 100.0]
        cdf = hitting_time_cdf(
            stg.ctmc(), stg.loss_states(), stg.normal_state, ts
        )
        assert all(0.0 <= v <= 1.0 for v in cdf)
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert cdf[0] == 0.0

    def test_start_in_target_is_immediate(self):
        stg = RecoverySTG.paper_default(buffer_size=3)
        target = stg.loss_states()[0]
        cdf = hitting_time_cdf(
            stg.ctmc(), stg.loss_states(), target, [0.0, 1.0]
        )
        assert list(cdf) == [1.0, 1.0]

    def test_survival_probability(self):
        """Case 6 refined: the poor system almost surely survives 1
        time unit but probably not 100."""
        stg = RecoverySTG.paper_default(mu1=2.0, xi1=3.0)
        assert survival_probability(stg, 1.0) > 0.99
        assert survival_probability(stg, 100.0) < 0.2

    def test_survival_consistent_with_mean(self):
        """Median (from the CDF) and mean agree on ordering across
        systems."""
        poor = RecoverySTG.paper_default(mu1=2.0, xi1=3.0, buffer_size=5)
        worse = RecoverySTG.paper_default(
            arrival_rate=3.0, mu1=2.0, xi1=3.0, buffer_size=5
        )
        t = 10.0
        assert survival_probability(poor, t) > survival_probability(
            worse, t
        )
        assert mean_time_to_loss(poor) > mean_time_to_loss(worse)


class TestRecoveryMetrics:
    def test_good_system_time_to_loss_enormous(self):
        stg = RecoverySTG.paper_default(buffer_size=8)
        assert mean_time_to_loss(stg) > 1_000.0

    def test_poor_system_loses_quickly(self):
        """Case 6: the under-provisioned system reaches the loss edge in
        tens of time units."""
        stg = RecoverySTG.paper_default(mu1=2.0, xi1=3.0)
        t = mean_time_to_loss(stg)
        assert 3.0 <= t <= 60.0

    def test_time_to_loss_decreases_with_attack_rate(self):
        slow = RecoverySTG.paper_default(arrival_rate=1.0, mu1=2.0,
                                         xi1=3.0, buffer_size=6)
        fast = RecoverySTG.paper_default(arrival_rate=3.0, mu1=2.0,
                                         xi1=3.0, buffer_size=6)
        assert mean_time_to_loss(fast) < mean_time_to_loss(slow)

    def test_excursion_grows_with_backlog(self):
        stg = RecoverySTG.paper_default(buffer_size=6)
        small = mean_recovery_excursion(stg, State(0, 1))
        large = mean_recovery_excursion(stg, State(0, 6))
        assert large > small > 0

    def test_excursion_from_normal_is_zero(self):
        stg = RecoverySTG.paper_default(buffer_size=4)
        assert mean_recovery_excursion(stg, State(0, 0)) == 0.0
