"""Tests for the Gillespie simulation of the recovery STG.

The simulated trajectory is the CTMC, so long-run occupancies must agree
with the analytic steady state — the cross-validation the paper lacks.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.markov.metrics import loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State, StateCategory
from repro.sim.ctmc_sim import GillespieSimulator


class TestTrajectory:
    def test_occupancy_sums_to_one(self, small_stg):
        sim = GillespieSimulator(small_stg, random.Random(1))
        result = sim.run(horizon=200.0)
        assert sum(result.occupancy.values()) == pytest.approx(1.0)
        assert sum(result.category_occupancy.values()) == pytest.approx(1.0)

    def test_matches_analytic_steady_state(self, small_stg):
        chain = small_stg.ctmc()
        pi = steady_state(chain)
        sim = GillespieSimulator(small_stg, random.Random(7))
        result = sim.run(horizon=20_000.0)
        for state in small_stg.states:
            analytic = pi[chain.index_of(state)]
            empirical = result.occupancy.get(state, 0.0)
            assert empirical == pytest.approx(analytic, abs=0.02)

    def test_empirical_loss_matches_analytic(self):
        stg = RecoverySTG.paper_default(arrival_rate=2.0, buffer_size=5)
        pi = steady_state(stg.ctmc())
        analytic = loss_probability(stg, pi)
        sim = GillespieSimulator(stg, random.Random(11))
        result = sim.run(horizon=20_000.0)
        empirical = sum(
            frac
            for s, frac in result.occupancy.items()
            if s.alerts == stg.alert_buffer
        )
        assert empirical == pytest.approx(analytic, abs=0.03)

    def test_deterministic_per_seed(self, small_stg):
        r1 = GillespieSimulator(small_stg, random.Random(3)).run(100.0)
        r2 = GillespieSimulator(small_stg, random.Random(3)).run(100.0)
        assert r1.occupancy == r2.occupancy
        assert r1.jumps == r2.jumps

    def test_loss_time_fraction_tracks_full_alert_queue(self, small_stg):
        sim = GillespieSimulator(small_stg, random.Random(5))
        result = sim.run(horizon=500.0)
        expected = sum(
            frac
            for s, frac in result.occupancy.items()
            if s.alerts == small_stg.alert_buffer
        )
        assert result.loss_time_fraction == pytest.approx(expected)

    def test_overloaded_system_actually_loses_alerts(self):
        stg = RecoverySTG.paper_default(arrival_rate=6.0, buffer_size=3)
        sim = GillespieSimulator(stg, random.Random(2))
        result = sim.run(horizon=2_000.0)
        assert result.arrivals_lost > 0
        assert 0.0 < result.alert_loss_fraction <= 1.0
        assert result.arrivals >= result.arrivals_lost

    def test_quiet_system_loses_nothing(self):
        stg = RecoverySTG.paper_default(arrival_rate=0.05)
        sim = GillespieSimulator(stg, random.Random(4))
        result = sim.run(horizon=1_000.0)
        assert result.arrivals_lost == 0
        assert result.alert_loss_fraction == 0.0

    def test_custom_start_state(self, small_stg):
        start = State(small_stg.alert_buffer, small_stg.recovery_buffer)
        sim = GillespieSimulator(small_stg, random.Random(9))
        result = sim.run(horizon=50.0, start=start)
        assert start in result.occupancy

    def test_zero_horizon_rejected(self, small_stg):
        with pytest.raises(SimulationError):
            GillespieSimulator(small_stg).run(horizon=0.0)

    def test_no_arrivals_absorbs_at_normal(self):
        stg = RecoverySTG.paper_default(arrival_rate=0.0, buffer_size=3)
        sim = GillespieSimulator(stg, random.Random(1))
        result = sim.run(horizon=100.0, start=State(0, 3))
        # Drains the recovery queue then parks at NORMAL forever.
        assert result.occupancy[State(0, 0)] > 0.9
        assert result.arrivals == 0
