"""Tests for the flight recorder: record shapes, write-through,
lifecycle, and the loud-failure contract of the loader."""

import json

import pytest

from repro.errors import ObsError
from repro.obs.events import (
    AlertEnqueued,
    EventBus,
    EVENT_TYPES,
    UndoDecision,
    event_from_dict,
)
from repro.obs.recorder import (
    SCHEMA_VERSION,
    FlightRecorder,
    canonical_text,
    load_flight_log,
    read_flight_log,
)


class TestFlightRecorder:
    def test_header_is_first_line_with_schema(self):
        rec = FlightRecorder(label="demo", meta={"seed": 3})
        rec.close()
        header = json.loads(rec.text().splitlines()[0])
        assert header == {"record": "header", "schema": SCHEMA_VERSION,
                          "label": "demo", "meta": {"seed": 3}}

    def test_lines_are_compact_sorted_json(self):
        rec = FlightRecorder(label="x")
        rec.mark("start", 0.0, state="NORMAL")
        rec(AlertEnqueued(1.5, uid="wf1/t1#1", queue_depth=1))
        rec.close()
        lines = rec.text().splitlines()
        for line in lines:
            obj = json.loads(line)
            assert line == json.dumps(obj, sort_keys=True,
                                      separators=(",", ":"))
        assert json.loads(lines[1])["mark"] == "start"
        assert json.loads(lines[2])["event"] == "AlertEnqueued"

    def test_write_through_flushes_per_record(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rec = FlightRecorder(label="live", path=str(path))
        rec.mark("start", 0.0)
        # Readable mid-run: a crashed process still leaves a prefix.
        assert len(path.read_text().splitlines()) == 2
        rec.close()
        assert path.read_text() == rec.text()

    def test_closed_recorder_raises(self):
        rec = FlightRecorder()
        rec.close()
        rec.close()  # idempotent
        with pytest.raises(ObsError, match="closed"):
            rec.mark("late", 1.0)
        with pytest.raises(ObsError, match="closed"):
            rec(AlertEnqueued(1.0, uid="u", queue_depth=1))

    def test_attach_records_bus_events(self):
        bus = EventBus()
        with FlightRecorder(label="bus") as rec:
            rec.attach(bus)
            bus.publish(AlertEnqueued(0.5, uid="a", queue_depth=1))
        log = read_flight_log(rec.text())
        assert [e.uid for e in log.events] == ["a"]


class TestReadFlightLog:
    def _text(self, *extra_lines):
        rec = FlightRecorder(label="t", meta={"k": 1})
        rec.mark("start", 0.0, state="NORMAL")
        rec(UndoDecision(1.0, uid="wf1/t1#1", condition="T1.1"))
        rec.mark("finalize", 2.0)
        rec.close()
        return rec.text() + "".join(ln + "\n" for ln in extra_lines)

    def test_round_trip(self):
        log = read_flight_log(self._text())
        assert log.label == "t" and log.meta == {"k": 1}
        assert [m["mark"] for m in log.marks] == ["start", "finalize"]
        assert log.mark("start")["state"] == "NORMAL"
        assert log.mark("nope") is None
        (event,) = log.events
        assert event == UndoDecision(1.0, uid="wf1/t1#1",
                                     condition="T1.1")

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(self._text())
        assert load_flight_log(str(path)).label == "t"

    def test_empty_log_rejected(self):
        with pytest.raises(ObsError, match="empty"):
            read_flight_log("")
        with pytest.raises(ObsError, match="empty"):
            read_flight_log("\n  \n")

    def test_bad_json_line_rejected_with_line_number(self):
        with pytest.raises(ObsError, match="line 5"):
            read_flight_log(self._text("{not json"))

    def test_missing_header_rejected(self):
        body = self._text().splitlines()[1]
        with pytest.raises(ObsError, match="header"):
            read_flight_log(body + "\n")

    def test_wrong_schema_rejected(self):
        lines = self._text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = SCHEMA_VERSION + 1
        lines[0] = json.dumps(header)
        with pytest.raises(ObsError, match="schema"):
            read_flight_log("\n".join(lines))

    def test_unknown_record_kind_rejected(self):
        with pytest.raises(ObsError, match="unknown record kind"):
            read_flight_log(self._text('{"record":"mystery"}'))

    def test_unknown_event_kind_rejected(self):
        bad = '{"record":"event","event":"NotAnEvent","time":0.0}'
        with pytest.raises(ObsError, match="bad event record"):
            read_flight_log(self._text(bad))


class TestEventRegistry:
    @pytest.mark.parametrize("name", sorted(EVENT_TYPES))
    def test_kind_matches_registry_key(self, name):
        assert EVENT_TYPES[name].__name__ == name

    def test_round_trip_every_type_through_json(self):
        samples = [
            EVENT_TYPES["AlertEnqueued"](0.1, uid="u", queue_depth=2),
            EVENT_TYPES["UndoDecision"](
                0.2, uid="wf1/t3#1", condition="T1.3",
                via=("wf1/t1#1", "wf1/t2#1"), objects=("x", "y"),
            ),
            EVENT_TYPES["OrderConstraint"](
                0.3, rule="T3.2", before="undo(b)", after="undo(a)"
            ),
            EVENT_TYPES["ActionDispatched"](
                0.4, action="redo(a)", position=3,
                satisfied=("undo(a)",),
            ),
        ]
        for event in samples:
            wire = json.loads(json.dumps(event.to_dict()))
            assert event_from_dict(wire) == event

    def test_unknown_kind_raises_key_error(self):
        with pytest.raises(KeyError, match="Bogus"):
            event_from_dict({"event": "Bogus", "time": 0.0})


class TestWallMetaAndCanonicalText:
    """Satellite: wall-clock header meta is replay-inert.

    Raw logs from two hosts legitimately differ (hostname, start
    times, durations); the ``canonical_text`` surface must not.
    """

    def test_wall_meta_header_and_close_record(self):
        rec = FlightRecorder(label="w", wall_meta=True)
        rec.mark("start", 0.0, state="NORMAL")
        rec.close()
        lines = [json.loads(ln) for ln in rec.text().splitlines()]
        assert set(lines[0]["wall"]) == {"host", "python", "started"}
        assert lines[-1]["record"] == "wall"
        assert lines[-1]["duration"] >= 0.0
        log = read_flight_log(rec.text())
        assert set(log.wall) == {"host", "python", "started", "duration"}

    def test_wall_meta_defaults_off(self):
        rec = FlightRecorder(label="w")
        rec.close()
        log = read_flight_log(rec.text())
        assert "wall" not in log.header
        assert log.wall == {}
        assert log.wall_close is None

    def test_phase_samples_parse_but_stay_out_of_replay(self):
        rec = FlightRecorder(label="w")
        rec.mark("start", 0.0, state="NORMAL")
        rec.phase_sample("analyze;analyze.closure", 0.25, sim=1.0,
                         calls=3)
        rec.close()
        log = read_flight_log(rec.text())
        assert log.phases == [{
            "record": "phase", "phase": "analyze;analyze.closure",
            "wall": 0.25, "sim": 1.0, "calls": 3,
        }]
        assert log.events == []
        assert '"phase"' not in canonical_text(rec.text())

    def test_canonical_text_rejects_bad_json(self):
        with pytest.raises(ObsError, match="line 1"):
            canonical_text("{nope\n")

    def test_cross_host_replay_byte_identity(self, monkeypatch):
        """The same seeded run recorded on two 'hosts' (different
        node names, different wall clocks, profiler samples on one
        side only) canonicalizes to identical bytes — and to the same
        bytes as a wall-meta-off recording."""
        import platform

        from repro.sim.fullstack import FullStackConfig, run_replication

        config = FullStackConfig(arrival_rate=6.0, alert_buffer=4,
                                 recovery_buffer=4)

        def record(host, wall_meta, sample):
            monkeypatch.setattr(platform, "node", lambda: host)
            bus = EventBus()
            rec = FlightRecorder(label="fullstack",
                                 wall_meta=wall_meta).attach(bus)
            run_replication(config, horizon=15.0, seed=9, bus=bus)
            if sample:
                rec.phase_sample("detect", 0.001)
            rec.close()
            return rec.text()

        a = record("host-a", wall_meta=True, sample=True)
        b = record("host-b", wall_meta=True, sample=False)
        plain = record("host-c", wall_meta=False, sample=False)
        assert a != b  # hostnames, clocks, samples all differ
        assert canonical_text(a) == canonical_text(b)
        assert canonical_text(a) == canonical_text(plain)
        assert canonical_text(plain) == plain  # already canonical
