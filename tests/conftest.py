"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.markov.stg import RecoverySTG
from repro.scenarios.figure1 import Figure1Scenario, build_figure1
from repro.sim.workload import WorkloadConfig, WorkloadGenerator
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec, workflow


@pytest.fixture
def figure1() -> Figure1Scenario:
    """The attacked Figure 1 system, not yet healed."""
    return build_figure1(attacked=True)


@pytest.fixture
def figure1_clean() -> Figure1Scenario:
    """The clean Figure 1 system (recovery oracle)."""
    return build_figure1(attacked=False)


@pytest.fixture
def paper_stg() -> RecoverySTG:
    """The paper's default CTMC: λ=1, μ1=15, ξ1=20, buffer 15."""
    return RecoverySTG.paper_default()


@pytest.fixture
def small_stg() -> RecoverySTG:
    """A small STG (buffer 4) for structural assertions."""
    return RecoverySTG.paper_default(buffer_size=4)


@pytest.fixture
def fresh_system():
    """An empty store/log/engine triple."""
    store = DataStore({"a": 1, "b": 2, "c": 3})
    log = SystemLog()
    return store, log, Engine(store, log)


def make_workload(seed: int = 0, **overrides):
    """Build a deterministic random workload (helper, not a fixture)."""
    defaults = dict(
        n_workflows=3, tasks_per_workflow=8, branch_probability=0.4
    )
    defaults.update(overrides)
    gen = WorkloadGenerator(WorkloadConfig(**defaults), random.Random(seed))
    return gen, gen.generate()


@pytest.fixture
def diamond_spec() -> WorkflowSpec:
    """A single diamond workflow used across dependency tests:

    ``a → b → {c | d} → e`` where ``b`` branches on the parity of its
    output.
    """
    return (
        workflow("diamond")
        .task("a", reads=["x"], writes=["ya"],
              compute=lambda d: {"ya": d["x"] + 1})
        .task("b", reads=["ya"], writes=["yb"],
              compute=lambda d: {"yb": d["ya"] * 3},
              choose=lambda d: "c" if d["yb"] % 2 == 0 else "d")
        .task("c", reads=["yb"], writes=["yc"],
              compute=lambda d: {"yc": d["yb"] + 10})
        .task("d", reads=["yb"], writes=["yd"],
              compute=lambda d: {"yd": d["yb"] + 20})
        .task("e", reads=["yc", "yd"], writes=["ye"],
              compute=lambda d: {"ye": d["yc"] + d["yd"]})
        .edge("a", "b").edge("b", "c").edge("b", "d")
        .edge("c", "e").edge("d", "e")
        .build()
    )
