"""Tests for the checkpoint and redo-everything baselines."""

import random

import pytest

from repro.sim.baselines import (
    checkpoint_rollback_cost,
    dependency_recovery_cost,
    full_redo_cost,
)
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture
def healed_run():
    g = WorkloadGenerator(
        WorkloadConfig(n_workflows=4, tasks_per_workflow=10,
                       branch_probability=0.4),
        random.Random(13),
    )
    wl = g.generate()
    campaign = g.pick_attacks(wl, n_attacks=1)
    result = run_pipeline(wl, campaign, seed=13)
    assert result.healthy
    return result


class TestCheckpointBaseline:
    def test_best_checkpoint_before_first_malicious(self, healed_run):
        cost = checkpoint_rollback_cost(
            healed_run.log, healed_run.malicious_ground_truth
        )
        n = len(healed_run.log.normal_records())
        first_bad_seq = min(
            healed_run.log.get(u).seq
            for u in healed_run.malicious_ground_truth
        )
        assert cost.preserved == first_bad_seq
        assert cost.re_executed == n - first_bad_seq
        assert cost.undone == cost.re_executed

    def test_explicit_checkpoint(self, healed_run):
        cost = checkpoint_rollback_cost(
            healed_run.log, healed_run.malicious_ground_truth,
            checkpoint_seq=0,
        )
        assert cost.preserved == 0
        assert cost.undone == len(healed_run.log.normal_records())

    def test_no_malicious_preserves_everything(self, healed_run):
        cost = checkpoint_rollback_cost(healed_run.log, [])
        assert cost.re_executed == 0
        assert cost.preserved == len(healed_run.log.normal_records())


class TestFullRedoBaseline:
    def test_discards_all_work(self, healed_run):
        cost = full_redo_cost(healed_run.log)
        n = len(healed_run.log.normal_records())
        assert cost.preserved == 0
        assert cost.undone == cost.re_executed == n
        assert cost.total_recovery_work == 2 * n


class TestDependencyRecoveryCost:
    def test_matches_heal_report(self, healed_run):
        cost = dependency_recovery_cost(healed_run.heal)
        assert cost.preserved == len(healed_run.heal.kept)
        assert cost.undone == len(healed_run.heal.undone)
        assert cost.re_executed == len(healed_run.heal.redone) + len(
            healed_run.heal.new_executions
        )

    def test_dependency_recovery_preserves_more_work(self, healed_run):
        """The paper's headline qualitative claim: dependency-based
        recovery preserves work that checkpoints discard."""
        dep = dependency_recovery_cost(healed_run.heal)
        ckpt = checkpoint_rollback_cost(
            healed_run.log, healed_run.malicious_ground_truth
        )
        full = full_redo_cost(healed_run.log)
        assert dep.preserved >= ckpt.preserved
        assert dep.preserved > full.preserved
        assert dep.undone <= ckpt.undone

    def test_wasted_good_work(self, healed_run):
        damaged = len(healed_run.heal.undone)
        dep = dependency_recovery_cost(healed_run.heal)
        ckpt = checkpoint_rollback_cost(
            healed_run.log, healed_run.malicious_ground_truth
        )
        assert dep.wasted_good_work(damaged) == 0
        assert ckpt.wasted_good_work(damaged) >= 0
