"""Unit tests for alerts and the bounded queues of the architecture."""

import pytest

from repro.errors import QueueFullError
from repro.ids.alerts import Alert, BoundedQueue, PriorityBoundedQueue
from repro.obs.events import EventBus, QueueItemDropped
from repro.obs.tracing import ManualClock


class TestAlert:
    def test_orders_by_detection_time(self):
        early = Alert(1.0, "w/t2#1")
        late = Alert(5.0, "w/t1#1")
        assert early < late
        assert sorted([late, early])[0] is early

    def test_genuine_default(self):
        assert Alert(0.0, "u").genuine
        assert not Alert(0.0, "u", genuine=False).genuine


class TestBoundedQueue:
    def test_fifo(self):
        q = BoundedQueue(3)
        for x in "abc":
            assert q.offer(x)
        assert q.pop() == "a"
        assert q.peek() == "b"
        assert len(q) == 2

    def test_offer_counts_losses_when_full(self):
        q = BoundedQueue(2)
        q.offer("a")
        q.offer("b")
        assert not q.offer("c")
        assert q.lost == 1
        assert q.accepted == 2
        assert q.full

    def test_push_raises_without_counting_loss(self):
        q = BoundedQueue(1)
        q.push("a")
        with pytest.raises(QueueFullError):
            q.push("b")
        assert q.lost == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_truthiness_and_iteration(self):
        q = BoundedQueue(2)
        assert not q
        q.offer(1)
        q.offer(2)
        assert q and list(q) == [1, 2]

    def test_drain_reopens_capacity(self):
        q = BoundedQueue(1)
        q.offer("a")
        assert not q.offer("b")
        q.pop()
        assert q.offer("c")

    def test_high_water_tracks_peak_depth(self):
        q = BoundedQueue(3)
        assert q.high_water == 0
        q.offer("a")
        q.offer("b")
        q.pop()
        q.offer("c")
        assert len(q) == 2
        assert q.high_water == 2  # never exceeded two at once
        q.offer("d")
        assert q.high_water == 3

    def test_rejected_offer_does_not_raise_high_water(self):
        q = BoundedQueue(1)
        q.offer("a")
        q.offer("b")  # lost
        assert q.high_water == 1

    def test_reset_stats_rebases_at_current_depth(self):
        q = BoundedQueue(2)
        q.offer("a")
        q.offer("b")
        q.offer("c")  # lost
        q.pop()
        q.reset_stats()
        assert q.lost == 0 and q.accepted == 0
        assert q.high_water == len(q) == 1  # re-based, not zeroed
        q.offer("d")
        assert q.accepted == 1 and q.high_water == 2

    def test_hook_sees_offer_lost_and_pop(self):
        calls = []
        q = BoundedQueue(1, hook=lambda op, queue: calls.append(
            (op, len(queue))))
        q.offer("a")
        q.offer("b")  # rejected: full
        q.pop()
        assert calls == [("offer", 1), ("lost", 1), ("pop", 0)]

    def test_set_hook_installs_and_removes(self):
        q = BoundedQueue(2)
        calls = []
        q.offer("before")  # no hook yet: unobserved
        q.set_hook(lambda op, queue: calls.append(op))
        q.offer("a")
        q.set_hook(None)
        q.offer("b")
        assert calls == ["offer"]


def by_digit(item):
    """Priority class of a test item like ``"2:x"`` → 2."""
    return int(item.split(":")[0])


class TestPriorityBoundedQueue:
    def make(self, capacity=4, classes=3, **kwargs):
        return PriorityBoundedQueue(capacity, classes=classes,
                                    priority_of=by_digit, **kwargs)

    def test_pop_serves_most_urgent_class_first(self):
        q = self.make()
        for item in ["2:a", "0:b", "1:c", "0:d"]:
            assert q.offer(item)
        assert [q.pop() for _ in range(4)] == ["0:b", "0:d", "1:c", "2:a"]

    def test_fifo_within_class(self):
        q = self.make(capacity=6)
        for item in ["1:a", "1:b", "1:c"]:
            q.offer(item)
        assert q.pop() == "1:a"
        q.offer("1:d")
        assert [q.pop(), q.pop(), q.pop()] == ["1:b", "1:c", "1:d"]

    def test_single_class_degenerates_to_fifo(self):
        q = PriorityBoundedQueue(3, classes=1)
        for x in "abc":
            q.offer(x)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_iteration_is_drain_order(self):
        q = self.make()
        for item in ["2:a", "0:b", "1:c"]:
            q.offer(item)
        assert list(q) == ["0:b", "1:c", "2:a"]
        assert q.peek() == "0:b"

    def test_offer_without_eviction_rejects_when_full(self):
        q = self.make(capacity=2)
        q.offer("2:a")
        q.offer("2:b")
        assert not q.offer("0:urgent")  # evict_lower off: plain reject
        assert q.lost == 1
        assert q.lost_by_class == (1, 0, 0)
        assert len(q) == 2

    def test_eviction_preempts_newest_least_urgent(self):
        q = self.make(capacity=3, evict_lower=True)
        for item in ["2:a", "2:b", "1:c"]:
            q.offer(item)
        assert q.offer("0:urgent")           # evicts 2:b (newest of 2)
        assert len(q) == 3
        assert list(q) == ["0:urgent", "1:c", "2:a"]
        assert q.lost == 1                   # the eviction is a loss...
        assert q.lost_by_class == (0, 0, 1)  # ...of the victim's class

    def test_eviction_refused_when_nothing_less_urgent(self):
        q = self.make(capacity=2, evict_lower=True)
        q.offer("0:a")
        q.offer("1:b")
        assert not q.offer("1:c")  # class 1 cannot evict class 1
        assert q.lost_by_class == (0, 1, 0)
        assert list(q) == ["0:a", "1:b"]

    def test_push_never_evicts(self):
        q = self.make(capacity=1, evict_lower=True)
        q.push("2:a")
        with pytest.raises(QueueFullError):
            q.push("0:b")
        assert q.lost == 0 and list(q) == ["2:a"]

    def test_high_water_and_accepted_preserved(self):
        q = self.make(capacity=3)
        for item in ["0:a", "1:b", "2:c"]:
            q.offer(item)
        q.pop()
        assert q.high_water == 3
        assert q.accepted == 3
        assert q.accepted_by_class == (1, 1, 1)
        assert q.depth_of_class(1) == 1

    def test_reset_stats_clears_per_class_breakdown(self):
        q = self.make(capacity=2)
        q.offer("0:a")
        q.offer("1:b")
        q.offer("2:c")  # lost
        q.reset_stats()
        assert q.lost == 0 and q.accepted == 0
        assert q.lost_by_class == (0, 0, 0)
        assert q.accepted_by_class == (0, 0, 0)
        assert q.high_water == len(q) == 2  # re-based like the base queue

    def test_drop_accounting_under_mixed_priorities(self):
        q = self.make(capacity=2, evict_lower=True)
        q.offer("2:a")
        q.offer("2:b")
        q.offer("1:c")       # evicts 2:b
        q.offer("1:d")       # evicts 2:a
        assert not q.offer("1:e")  # no class-2 victims left: rejected
        assert q.lost == 3
        assert q.lost_by_class == (0, 1, 2)
        assert q.accepted == 4
        assert sum(q.lost_by_class) == q.lost

    def test_drop_events_carry_priority_class(self):
        bus = EventBus()
        drops = []
        bus.subscribe(drops.append, types=[QueueItemDropped])
        clock = ManualClock(5.0)
        q = self.make(capacity=2, evict_lower=True)
        q.instrument("central", bus, clock)
        q.offer("2:a")
        q.offer("2:b")
        q.offer("0:urgent")  # evicts 2:b -> drop event with class 2
        q.offer("2:late")    # rejected  -> drop event with class 2
        q.offer("1:mid")     # evicts 2:a -> drop event with class 2
        assert [d.priority for d in drops] == [2, 2, 2]
        assert [d.queue for d in drops] == ["central"] * 3
        assert drops[-1].lost_total == 3 == q.lost

    def test_hook_sees_eviction_as_lost(self):
        calls = []
        q = self.make(capacity=1, evict_lower=True,
                      hook=lambda op, queue: calls.append(op))
        q.offer("2:a")
        q.offer("0:b")  # evicts 2:a: lost + offer
        assert calls == ["offer", "lost", "offer"]

    def test_priority_class_out_of_range_raises(self):
        q = PriorityBoundedQueue(2, classes=2, priority_of=by_digit)
        with pytest.raises(ValueError):
            q.offer("5:x")

    def test_classes_validation(self):
        with pytest.raises(ValueError):
            PriorityBoundedQueue(2, classes=0)


class TestConcurrentHammer:
    """The queues are lock-free by design (serial-phase discipline);
    these hammers pin the two halves of that contract: externally
    serialized access is exact, and the dynamic sanitizer catches any
    unlocked cross-thread use deterministically."""

    THREADS = 8

    def _hammer(self, worker):
        import threading

        barrier = threading.Barrier(self.THREADS)
        errors = []

        def run(tid):
            barrier.wait()
            try:
                worker(tid)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        ts = [threading.Thread(target=run, args=(i,))
              for i in range(self.THREADS)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        if errors:
            raise errors[0]

    def test_externally_locked_offers_exact(self):
        from repro.obs.locks import make_lock

        lock = make_lock("queue")
        q = PriorityBoundedQueue(10_000_000, classes=1)
        n = 2_000

        def work(tid):
            for _ in range(n):
                with lock:
                    assert q.offer(object())

        self._hammer(work)
        assert len(q) == self.THREADS * n
        assert q.accepted == self.THREADS * n
        assert q.lost == 0

    def test_sanitizer_passes_locked_hammer(self):
        from repro.lint.sanitizer import RaceSanitizer

        san = RaceSanitizer()
        lock = san.wrap_lock("queue-external")
        q = PriorityBoundedQueue(10_000_000, classes=1)
        san.instrument_queue(q, name="hammer")
        n = 500

        def work(tid):
            for _ in range(n):
                with lock:
                    q.offer(object())

        self._hammer(work)
        assert san.violations == (), san.report().render_text()
        assert q.accepted == self.THREADS * n

    def test_sanitizer_catches_unlocked_cross_thread_use(self):
        # Sequential threads, no interleaving at all — the lockset
        # verdict still fires, which is the whole point of Eraser.
        import threading

        from repro.lint.sanitizer import RaceSanitizer

        san = RaceSanitizer()
        q = PriorityBoundedQueue(100, classes=1)
        san.instrument_queue(q, name="central")

        for name in ("t1", "t2"):
            t = threading.Thread(target=lambda: q.offer(object()),
                                 name=name)
            t.start()
            t.join()
        rules = [d.rule for d in san.violations]
        assert rules == ["RACE101"]
        assert san.violations[0].where == "queue[central]"

    def test_barrier_fenced_phases_pass(self):
        import threading

        from repro.lint.sanitizer import RaceSanitizer

        san = RaceSanitizer()
        q = PriorityBoundedQueue(100, classes=1)
        san.instrument_queue(q, name="central")

        for name in ("worker", "main"):
            t = threading.Thread(target=lambda: q.offer(object()),
                                 name=name)
            t.start()
            t.join()
            san.barrier("phase-join")
        assert san.violations == ()
