"""Unit tests for alerts and the bounded queues of the architecture."""

import pytest

from repro.errors import QueueFullError
from repro.ids.alerts import Alert, BoundedQueue


class TestAlert:
    def test_orders_by_detection_time(self):
        early = Alert(1.0, "w/t2#1")
        late = Alert(5.0, "w/t1#1")
        assert early < late
        assert sorted([late, early])[0] is early

    def test_genuine_default(self):
        assert Alert(0.0, "u").genuine
        assert not Alert(0.0, "u", genuine=False).genuine


class TestBoundedQueue:
    def test_fifo(self):
        q = BoundedQueue(3)
        for x in "abc":
            assert q.offer(x)
        assert q.pop() == "a"
        assert q.peek() == "b"
        assert len(q) == 2

    def test_offer_counts_losses_when_full(self):
        q = BoundedQueue(2)
        q.offer("a")
        q.offer("b")
        assert not q.offer("c")
        assert q.lost == 1
        assert q.accepted == 2
        assert q.full

    def test_push_raises_without_counting_loss(self):
        q = BoundedQueue(1)
        q.push("a")
        with pytest.raises(QueueFullError):
            q.push("b")
        assert q.lost == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_truthiness_and_iteration(self):
        q = BoundedQueue(2)
        assert not q
        q.offer(1)
        q.offer(2)
        assert q and list(q) == [1, 2]

    def test_drain_reopens_capacity(self):
        q = BoundedQueue(1)
        q.offer("a")
        assert not q.offer("b")
        q.pop()
        assert q.offer("c")

    def test_high_water_tracks_peak_depth(self):
        q = BoundedQueue(3)
        assert q.high_water == 0
        q.offer("a")
        q.offer("b")
        q.pop()
        q.offer("c")
        assert len(q) == 2
        assert q.high_water == 2  # never exceeded two at once
        q.offer("d")
        assert q.high_water == 3

    def test_rejected_offer_does_not_raise_high_water(self):
        q = BoundedQueue(1)
        q.offer("a")
        q.offer("b")  # lost
        assert q.high_water == 1

    def test_reset_stats_rebases_at_current_depth(self):
        q = BoundedQueue(2)
        q.offer("a")
        q.offer("b")
        q.offer("c")  # lost
        q.pop()
        q.reset_stats()
        assert q.lost == 0 and q.accepted == 0
        assert q.high_water == len(q) == 1  # re-based, not zeroed
        q.offer("d")
        assert q.accepted == 1 and q.high_water == 2

    def test_hook_sees_offer_lost_and_pop(self):
        calls = []
        q = BoundedQueue(1, hook=lambda op, queue: calls.append(
            (op, len(queue))))
        q.offer("a")
        q.offer("b")  # rejected: full
        q.pop()
        assert calls == [("offer", 1), ("lost", 1), ("pop", 0)]

    def test_set_hook_installs_and_removes(self):
        q = BoundedQueue(2)
        calls = []
        q.offer("before")  # no hook yet: unobserved
        q.set_hook(lambda op, queue: calls.append(op))
        q.offer("a")
        q.set_hook(None)
        q.offer("b")
        assert calls == ["offer"]
