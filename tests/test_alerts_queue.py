"""Unit tests for alerts and the bounded queues of the architecture."""

import pytest

from repro.errors import QueueFullError
from repro.ids.alerts import Alert, BoundedQueue


class TestAlert:
    def test_orders_by_detection_time(self):
        early = Alert(1.0, "w/t2#1")
        late = Alert(5.0, "w/t1#1")
        assert early < late
        assert sorted([late, early])[0] is early

    def test_genuine_default(self):
        assert Alert(0.0, "u").genuine
        assert not Alert(0.0, "u", genuine=False).genuine


class TestBoundedQueue:
    def test_fifo(self):
        q = BoundedQueue(3)
        for x in "abc":
            assert q.offer(x)
        assert q.pop() == "a"
        assert q.peek() == "b"
        assert len(q) == 2

    def test_offer_counts_losses_when_full(self):
        q = BoundedQueue(2)
        q.offer("a")
        q.offer("b")
        assert not q.offer("c")
        assert q.lost == 1
        assert q.accepted == 2
        assert q.full

    def test_push_raises_without_counting_loss(self):
        q = BoundedQueue(1)
        q.push("a")
        with pytest.raises(QueueFullError):
            q.push("b")
        assert q.lost == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_truthiness_and_iteration(self):
        q = BoundedQueue(2)
        assert not q
        q.offer(1)
        q.offer(2)
        assert q and list(q) == [1, 2]

    def test_drain_reopens_capacity(self):
        q = BoundedQueue(1)
        q.offer("a")
        assert not q.offer("b")
        q.pop()
        assert q.offer("c")
