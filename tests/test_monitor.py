"""Tests for the online LTLf conformance monitor (`repro.obs.monitor`).

Four layers, mirroring the module:

1. **LTLf core** — formula progression is exact against a reference
   recursive-semantics evaluator on random formulas and traces
   (hypothesis), and the strong/weak next distinction survives to the
   end of the trace.
2. **Property pack** — each Definition 2 property fires on a
   hand-built violating stream and stays silent on the honest variant,
   including monitor-level analogues of the three ``--inject`` plan
   mutations.
3. **Replay identity** — the online violation stream equals the
   offline :func:`replay_conformance` stream on random event
   sequences and on full generated campaigns (honest and mutated).
4. **Pipeline invariance** — `sim.batch` conformance verdicts are
   identical at any worker count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import (
    ActionDispatched,
    ConformanceViolation,
    EventBus,
    EventRecorder,
    HealFinished,
    HealStarted,
    NormalTaskRefused,
    OrderConstraint,
    RedoDecision,
    TaskRedone,
    TaskUndone,
    UndoDecision,
    UnitEmitted,
)
from repro.obs.monitor import (
    FALSE,
    TRUE,
    And,
    ConformanceMonitor,
    Const,
    MonitorAutomaton,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Tail,
    Until,
    Verdict,
    WeakNext,
    always,
    atoms,
    eval_empty,
    eventually,
    implies,
    land,
    lnot,
    lor,
    nxt,
    progress,
    prop,
    release,
    replay_conformance,
    strict_property_pack,
    until,
    weak_until,
    wnext,
)


# --------------------------------------------------------------------------
# Reference LTLf semantics (independent of progression)
# --------------------------------------------------------------------------


def sat(f, trace):
    """Finite-trace LTLf satisfaction, written the textbook way.

    The empty trace resolves by the same strong/weak emptiness rules
    the monitor's :func:`eval_empty` implements — that shared base case
    is the semantics under test, not an artifact: progression must
    agree with *this* recursion on every nonempty trace.
    """
    if not trace:
        return eval_empty(f)
    if isinstance(f, Const):
        return f.value
    if isinstance(f, Prop):
        return bool(trace[0].get(f.name, False))
    if isinstance(f, Not):
        return not sat(f.operand, trace)
    if isinstance(f, And):
        return all(sat(p, trace) for p in f.parts)
    if isinstance(f, Or):
        return any(sat(p, trace) for p in f.parts)
    if isinstance(f, Next):
        return len(trace) >= 2 and sat(f.operand, trace[1:])
    if isinstance(f, WeakNext):
        return len(trace) < 2 or sat(f.operand, trace[1:])
    if isinstance(f, Until):
        return any(
            sat(f.right, trace[j:])
            and all(sat(f.left, trace[k:]) for k in range(j))
            for j in range(len(trace))
        )
    if isinstance(f, Release):
        return all(
            sat(f.right, trace[j:])
            or any(sat(f.left, trace[k:]) for k in range(j))
            for j in range(len(trace))
        )
    if isinstance(f, Tail):
        return sat(f.operand, trace)
    raise TypeError(f)


formula_st = st.recursive(
    st.sampled_from([prop("a"), prop("b"), TRUE, FALSE]),
    lambda inner: st.one_of(
        inner.map(lnot),
        st.tuples(inner, inner).map(lambda t: land(*t)),
        st.tuples(inner, inner).map(lambda t: lor(*t)),
        inner.map(nxt),
        inner.map(wnext),
        st.tuples(inner, inner).map(lambda t: until(*t)),
        st.tuples(inner, inner).map(lambda t: release(*t)),
        inner.map(always),
        inner.map(eventually),
        st.tuples(inner, inner).map(lambda t: weak_until(*t)),
    ),
    max_leaves=8,
)

letter_st = st.fixed_dictionaries({"a": st.booleans(), "b": st.booleans()})
trace_st = st.lists(letter_st, max_size=6)


class TestLtlfCore:
    @settings(max_examples=300, deadline=None)
    @given(f=formula_st, trace=trace_st)
    def test_progression_matches_reference_semantics(self, f, trace):
        automaton = MonitorAutomaton(f)
        for letter in trace:
            automaton.step(letter)
        expected = sat(f, trace)
        assert automaton.finalize() is (
            Verdict.SATISFIED if expected else Verdict.VIOLATED
        )

    @settings(max_examples=150, deadline=None)
    @given(f=formula_st, trace=trace_st)
    def test_decided_verdicts_are_irrevocable(self, f, trace):
        # Once the automaton reaches a sink, no extension of the trace
        # can change the outcome — check against the reference on the
        # full trace.
        automaton = MonitorAutomaton(f)
        for i, letter in enumerate(trace):
            verdict = automaton.step(letter)
            if verdict is Verdict.SATISFIED:
                assert sat(f, trace)
                return
            if verdict is Verdict.VIOLATED:
                assert not sat(f, trace)
                return

    def test_strong_next_fails_at_last_position(self):
        # G(a -> X b): an `a` at the last position violates.
        f = always(implies(prop("a"), nxt(prop("b"))))
        automaton = MonitorAutomaton(f)
        automaton.step({"a": True, "b": False})
        assert automaton.finalize() is Verdict.VIOLATED

    def test_weak_next_holds_at_last_position(self):
        f = always(implies(prop("a"), wnext(prop("b"))))
        automaton = MonitorAutomaton(f)
        automaton.step({"a": True, "b": False})
        assert automaton.finalize() is Verdict.SATISFIED

    def test_four_valued_verdicts(self):
        f = eventually(prop("a"))
        automaton = MonitorAutomaton(f)
        assert automaton.step({"a": False}) is Verdict.PRESUMABLY_FALSE
        assert automaton.step({"a": True}) is Verdict.SATISFIED
        g = always(lnot(prop("a")))
        other = MonitorAutomaton(g)
        assert other.step({"a": False}) is Verdict.PRESUMABLY_TRUE
        assert other.step({"a": True}) is Verdict.VIOLATED

    def test_smart_constructors_fold_constants(self):
        assert land() is TRUE
        assert lor() is FALSE
        assert land(prop("a"), FALSE) is FALSE
        assert lor(prop("a"), TRUE) is TRUE
        assert lnot(lnot(prop("a"))) == prop("a")
        assert until(prop("a"), TRUE) is TRUE
        assert release(prop("a"), FALSE) is FALSE

    def test_atoms_collects_the_alphabet(self):
        f = land(weak_until(lnot(prop("x")), prop("y")),
                 always(nxt(prop("z"))))
        assert atoms(f) == frozenset({"x", "y", "z"})

    def test_progress_restricted_to_letter(self):
        # Unknown atoms default to False — extractors may pass partial
        # valuations.
        assert progress(prop("missing"), {}) is FALSE


# --------------------------------------------------------------------------
# Property pack scenarios
# --------------------------------------------------------------------------


def run_monitor(events, finalize=True):
    monitor = ConformanceMonitor()
    out = []
    for event in events:
        out.extend(monitor.consume(event))
    if finalize:
        out.extend(monitor.finalize())
    return monitor, out


def heal_bracket(t, uids=("wf/t1#1",)):
    return [
        HealStarted(t, malicious=tuple(uids)),
        HealFinished(t + 1.0, undone=1, redone=1, kept=0, abandoned=0,
                     new_executions=0, duration=1.0),
    ]


class TestPropertyPack:
    def test_honest_heal_cycle_is_clean(self):
        uid = "wf/t1#1"
        events = [
            UndoDecision(1.0, uid=uid, condition="T1.1"),
            RedoDecision(1.0, uid=uid, condition="T2.1"),
            UnitEmitted(1.0, units=1, queue_depth=1, claimed=True,
                        claimed_undo=(uid,), claimed_redo=(uid,)),
            HealStarted(2.0, malicious=(uid,)),
            TaskUndone(2.0, uid=uid, reason="closure"),
            TaskRedone(2.5, uid=uid),
            HealFinished(3.0, undone=1, redone=1, kept=0, abandoned=0,
                         new_executions=0, duration=1.0),
        ]
        monitor, violations = run_monitor(events)
        assert violations == []
        assert monitor.clean

    def test_undo_outside_heal_bracket(self):
        _, violations = run_monitor([TaskUndone(1.0, uid="wf/t1#1")],
                                    finalize=False)
        assert [v.property for v in violations] == ["task-within-heal"]

    def test_unmatched_heal_finished(self):
        _, violations = run_monitor(
            [HealFinished(1.0, undone=0, redone=0, kept=0, abandoned=0,
                          new_executions=0, duration=0.0)],
            finalize=False,
        )
        assert "heal-alternation" in [v.property for v in violations]

    def test_unfinished_heal_flagged_at_finalize(self):
        # HealStarted's X(¬hs U hf) obligation is strong: a trace that
        # ends mid-heal is finally-violated.
        _, violations = run_monitor(
            [HealStarted(1.0, malicious=("wf/t1#1",))]
        )
        assert ("heal-alternation", "finally-violated") in [
            (v.property, v.verdict) for v in violations
        ]

    def test_undo_completeness_obligation(self):
        events = [UndoDecision(1.0, uid="wf/t1#1", condition="T1.3")]
        _, violations = run_monitor(events)
        assert [(v.property, v.instance) for v in violations] == [
            ("undo-completeness", "wf/t1#1")
        ]
        # ...and discharged by the undo inside a bracket.
        honest = events + [
            HealStarted(2.0, malicious=("wf/t1#1",)),
            TaskUndone(2.0, uid="wf/t1#1", reason="closure"),
            HealFinished(3.0, undone=1, redone=0, kept=0, abandoned=0,
                         new_executions=0, duration=1.0),
        ]
        _, violations = run_monitor(honest)
        assert violations == []

    def test_redo_follow_through_discharged_by_abandonment(self):
        base = [
            RedoDecision(1.0, uid="wf/t3#1", condition="T2.1"),
            HealStarted(2.0, malicious=("wf/t3#1",)),
            TaskUndone(2.0, uid="wf/t3#1", reason="closure"),
        ]
        close = [HealFinished(3.0, undone=1, redone=0, kept=0,
                              abandoned=1, new_executions=0,
                              duration=1.0)]
        # Undone but never redone nor abandoned: finally-violated.
        _, violations = run_monitor(base + close)
        assert [(v.property, v.verdict) for v in violations] == [
            ("redo-follow-through", "finally-violated")
        ]
        # The healed path dropped the record (second undo note with
        # reason "abandoned"): obligation discharged.
        _, violations = run_monitor(
            base + [TaskUndone(2.5, uid="wf/t3#1", reason="abandoned")]
            + close
        )
        assert violations == []

    def test_candidate_decisions_spawn_no_obligation(self):
        _, violations = run_monitor([
            UndoDecision(1.0, uid="wf/t2#1", condition="T1.2"),
            UndoDecision(1.0, uid="wf/t2#1", condition="T1.4"),
            RedoDecision(1.0, uid="wf/t2#1", condition="T2.2"),
        ])
        assert violations == []

    def test_undo_before_redo(self):
        _, violations = run_monitor(
            heal_bracket(1.0)[:1] + [TaskRedone(1.5, uid="wf/t9#1")],
            finalize=False,
        )
        assert [v.property for v in violations] == ["undo-before-redo"]
        # mode="new" executions have no prior history to undo.
        _, violations = run_monitor(
            heal_bracket(1.0)[:1]
            + [TaskRedone(1.5, uid="wf/t9#2", mode="new")],
            finalize=False,
        )
        assert violations == []

    def test_normal_refusal(self):
        _, violations = run_monitor(
            [NormalTaskRefused(1.0, state="NORMAL")], finalize=False,
        )
        assert [v.property for v in violations] == ["normal-refusal"]
        _, violations = run_monitor(
            [NormalTaskRefused(1.0, state="SCAN")], finalize=False,
        )
        assert violations == []

    def test_violation_stamped_with_event_time(self):
        _, violations = run_monitor(
            [TaskUndone(7.25, uid="wf/t1#1")], finalize=False,
        )
        assert violations[0].time == 7.25


class TestInjectionAnalogues:
    """Monitor-level analogues of the three ``--inject`` mutations."""

    def test_drop_undo_is_a_missing_claim(self):
        uid = "wf/t1#1"
        _, violations = run_monitor([
            UndoDecision(1.0, uid=uid, condition="T1.1"),
            UnitEmitted(1.0, units=1, queue_depth=1, claimed=True,
                        claimed_undo=(), claimed_redo=()),
        ], finalize=False)
        assert [v.property for v in violations] == [
            "undo-claim-consistency"
        ]
        assert uid in violations[0].detail

    def test_extra_redo_is_an_unjustified_claim(self):
        _, violations = run_monitor([
            UnitEmitted(1.0, units=1, queue_depth=1, claimed=True,
                        claimed_undo=(), claimed_redo=("wf/t9#1",)),
        ], finalize=False)
        assert [v.property for v in violations] == [
            "redo-claim-consistency"
        ]

    def test_unclaimed_unit_makes_no_claim(self):
        # Abstract simulators emit count-only UnitEmitted events; the
        # claim window must ignore them.
        _, violations = run_monitor([
            UndoDecision(1.0, uid="wf/t1#1", condition="T1.1"),
            UnitEmitted(1.0, units=1, queue_depth=1),
        ], finalize=False)
        assert violations == []

    def test_reverse_edge_breaks_order_consistency(self):
        edge = OrderConstraint(1.0, rule="T3.3",
                               before="undo(wf/t1#1)",
                               after="redo(wf/t1#1)")
        honest = [
            edge,
            ActionDispatched(2.0, action="undo(wf/t1#1)", position=0),
            ActionDispatched(2.0, action="redo(wf/t1#1)", position=1),
        ]
        _, violations = run_monitor(honest)
        assert violations == []
        reversed_ = [
            edge,
            ActionDispatched(2.0, action="redo(wf/t1#1)", position=0),
            ActionDispatched(2.0, action="undo(wf/t1#1)", position=1),
        ]
        _, violations = run_monitor(reversed_)
        assert [(v.property, v.verdict) for v in violations] == [
            ("order-consistency", "finally-violated")
        ]

    def test_aliased_dispatches_do_not_false_positive(self):
        # A batch may dispatch the same action string for an earlier
        # plan before this edge's own before/after pair runs.
        edge = OrderConstraint(1.0, rule="XU",
                               before="undo(wf/t4#1)",
                               after="redo(wf/t4#1)")
        _, violations = run_monitor([
            edge,
            ActionDispatched(2.0, action="redo(wf/t4#1)", position=0),
            ActionDispatched(2.0, action="undo(wf/t4#1)", position=1),
            ActionDispatched(2.0, action="redo(wf/t4#1)", position=2),
        ])
        assert violations == []


# --------------------------------------------------------------------------
# Replay identity: online == offline
# --------------------------------------------------------------------------


event_st = st.one_of(
    st.builds(HealStarted, st.just(0.0), malicious=st.just(("u1",))),
    st.builds(HealFinished, st.just(0.0), undone=st.integers(0, 3),
              redone=st.integers(0, 3), kept=st.just(0),
              abandoned=st.just(0), new_executions=st.just(0),
              duration=st.just(0.0)),
    st.builds(TaskUndone, st.just(0.0),
              uid=st.sampled_from(["u1", "u2"]),
              reason=st.sampled_from(["", "closure", "abandoned"])),
    st.builds(TaskRedone, st.just(0.0),
              uid=st.sampled_from(["u1", "u2"]),
              mode=st.sampled_from(["redo", "new"])),
    st.builds(UndoDecision, st.just(0.0),
              uid=st.sampled_from(["u1", "u2"]),
              condition=st.sampled_from(["T1.1", "T1.2", "T1.3", "T1.4"])),
    st.builds(RedoDecision, st.just(0.0),
              uid=st.sampled_from(["u1", "u2"]),
              condition=st.sampled_from(["T2.1", "T2.2"])),
    st.builds(OrderConstraint, st.just(0.0), rule=st.just("T3.1"),
              before=st.sampled_from(["undo(u1)", "redo(u1)"]),
              after=st.sampled_from(["undo(u1)", "redo(u1)"])),
    st.builds(ActionDispatched, st.just(0.0),
              action=st.sampled_from(["undo(u1)", "redo(u1)"]),
              position=st.integers(0, 3)),
    st.builds(NormalTaskRefused, st.just(0.0),
              state=st.sampled_from(["NORMAL", "SCAN", "RECOVERY"])),
    st.builds(UnitEmitted, st.just(0.0), units=st.just(1),
              queue_depth=st.just(1), claimed=st.booleans(),
              claimed_undo=st.sampled_from([(), ("u1",)]),
              claimed_redo=st.sampled_from([(), ("u1",)])),
)


class TestReplayIdentity:
    @settings(max_examples=120, deadline=None)
    @given(events=st.lists(event_st, max_size=12),
           finalize=st.booleans())
    def test_online_equals_offline_on_random_streams(self, events,
                                                     finalize):
        online, _ = run_monitor(events, finalize=finalize)
        offline = replay_conformance(events, finalize=finalize)
        assert offline.violations == online.violations
        assert offline.summary() == online.summary()

    @settings(max_examples=60, deadline=None)
    @given(events=st.lists(event_st, max_size=10))
    def test_recorded_violations_are_skipped_on_replay(self, events):
        # Replaying a stream that already contains the monitor's own
        # output must not double-report.
        online, recorded = run_monitor(events, finalize=False)
        stream = list(events) + list(recorded)
        offline = replay_conformance(stream, finalize=False)
        assert offline.violations == online.violations

    def test_finalize_is_idempotent(self):
        monitor, _ = run_monitor(
            [UndoDecision(1.0, uid="u1", condition="T1.1")]
        )
        count = monitor.violation_count
        assert monitor.finalize() == []
        assert monitor.violation_count == count

    def test_attached_monitor_publishes_typed_violations(self):
        bus = EventBus()
        recorder = EventRecorder().attach(bus)
        monitor = ConformanceMonitor().attach(bus)
        bus.publish(TaskUndone(1.0, uid="u1"))
        monitor.finalize()
        published = [e for e in recorder.events
                     if isinstance(e, ConformanceViolation)]
        assert [v.property for v in published] == ["task-within-heal"]
        assert monitor.violations == published


class TestCampaignReplayIdentity:
    """End-to-end: fuzz episodes record what offline replay re-derives."""

    @pytest.mark.parametrize("index", [0, 3, 5])
    def test_honest_campaigns_record_clean_and_identical(self, index):
        from repro.obs.recorder import read_flight_log
        from repro.scenarios.fuzz import _run_single_episode
        from repro.scenarios.generate import generate_campaign

        episode = _run_single_episode(
            generate_campaign(0, index=index, multi_tenant_every=0)
        )
        assert episode.conformance_violations == 0
        log = read_flight_log(episode.flight_text)
        assert log.meta["conformance_finalized"] is True
        recorded = [e for e in log.events
                    if isinstance(e, ConformanceViolation)]
        offline = replay_conformance(log.events, finalize=True)
        assert offline.violations == recorded == []

    def test_mutated_campaign_replays_its_violations(self):
        from repro.obs.recorder import read_flight_log
        from repro.scenarios.fuzz import (
            _run_single_episode,
            inject_mutation,
        )
        from repro.scenarios.generate import generate_campaign

        campaign = generate_campaign(1000, index=0, multi_tenant_every=0)
        with inject_mutation("drop-undo") as stats:
            episode = _run_single_episode(campaign)
        assert stats["applied"] >= 1
        assert episode.conformance_violations > 0
        log = read_flight_log(episode.flight_text)
        recorded = [e for e in log.events
                    if isinstance(e, ConformanceViolation)]
        offline = replay_conformance(log.events, finalize=True)
        assert offline.violations == recorded
        assert "undo-claim-consistency" in {
            v.property for v in offline.violations
        }


# --------------------------------------------------------------------------
# Pipeline integration
# --------------------------------------------------------------------------


class TestPipelineIntegration:
    def test_property_pack_is_fresh_per_monitor(self):
        a, b = ConformanceMonitor(), ConformanceMonitor()
        assert a.properties is not b.properties
        names = [p.name for p in strict_property_pack()]
        assert len(names) == len(set(names))

    def test_batch_conformance_is_worker_invariant(self):
        from repro.obs.health import ModelPrediction
        from repro.sim.batch import run_fullstack_batch
        from repro.sim.fullstack import FullStackConfig

        config = FullStackConfig(arrival_rate=1.0)
        health = ModelPrediction.from_stg(config.stg())
        serial = run_fullstack_batch(config, horizon=40.0,
                                     replications=2, workers=1,
                                     seed=3, health=health)
        pooled = run_fullstack_batch(config, horizon=40.0,
                                     replications=2, workers=2,
                                     seed=3, health=health)
        assert serial.conformance is not None
        assert serial.conformance == pooled.conformance
        assert serial.conformance.violations == 0

    def test_health_monitor_surfaces_conformance_slo(self):
        from repro.markov.stg import RecoverySTG
        from repro.obs.health import (
            HealthMonitor,
            ModelPrediction,
            SloState,
        )

        bus = EventBus()
        monitor = HealthMonitor(
            ModelPrediction.from_stg(RecoverySTG.paper_default())
        ).attach(bus)
        assert monitor.slos["conformance"].state is SloState.OK
        bus.publish(TaskUndone(1.0, uid="u1"))  # outside any bracket
        assert monitor.slos["conformance"].state is SloState.BREACH
        report = monitor.report()
        assert report.violations == 1
        assert ("conformance", "BREACH") in report.slo_states
