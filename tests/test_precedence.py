"""Unit tests for the partial order and ``minimal(S, ≺)``."""

import random

import pytest

from repro.errors import CyclicOrderError
from repro.workflow.precedence import PartialOrder, minimal


def chain_order(*elems):
    po = PartialOrder()
    for a, b in zip(elems, elems[1:]):
        po.add_edge(a, b)
    return po


class TestPartialOrder:
    def test_add_and_query_edges(self):
        po = chain_order("a", "b", "c")
        assert po.precedes("a", "b")
        assert po.precedes("a", "c")  # transitive
        assert not po.precedes("c", "a")
        assert po.direct_successors("a") == frozenset({"b"})
        assert po.direct_predecessors("c") == frozenset({"b"})

    def test_reflexive_edge_rejected(self):
        with pytest.raises(CyclicOrderError):
            PartialOrder().add_edge("a", "a")

    def test_unknown_elements_not_comparable(self):
        po = chain_order("a", "b")
        assert not po.precedes("a", "zz")
        assert not po.comparable("zz", "qq")

    def test_comparable(self):
        po = chain_order("a", "b")
        po.add_element("isolated")
        assert po.comparable("a", "b")
        assert not po.comparable("a", "isolated")

    def test_minimal_elements(self):
        po = PartialOrder()
        po.add_edge("a", "c")
        po.add_edge("b", "c")
        assert po.minimal_elements() == frozenset({"a", "b"})
        assert po.minimal_elements({"b", "c"}) == frozenset({"b"})

    def test_minimal_elements_ignore_outside_predecessors(self):
        po = chain_order("a", "b", "c")
        # Within {b, c}, b is minimal even though a ≺ b globally.
        assert po.minimal_elements({"b", "c"}) == frozenset({"b"})

    def test_topological_order_is_linear_extension(self):
        po = PartialOrder()
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        for s, t in edges:
            po.add_edge(s, t)
        order = po.topological_order()
        for s, t in edges:
            assert order.index(s) < order.index(t)

    def test_topological_order_deterministic_without_rng(self):
        po = PartialOrder()
        po.add_edge("a", "z")
        po.add_edge("b", "z")
        assert po.topological_order() == po.topological_order()

    def test_topological_order_random_tiebreak(self):
        po = PartialOrder(elements=[f"e{i}" for i in range(8)])
        seen = {
            tuple(po.topological_order(tiebreak=random.Random(seed)))
            for seed in range(20)
        }
        assert len(seen) > 1  # ties actually randomized

    def test_cycle_detected(self):
        po = PartialOrder()
        po.add_edge("a", "b")
        po.add_edge("b", "c")
        po.add_edge("c", "a")
        with pytest.raises(CyclicOrderError):
            po.check_acyclic()

    def test_len_iter_edges(self):
        po = chain_order("a", "b", "c")
        assert len(po) == 3
        assert set(po) == {"a", "b", "c"}
        assert po.edges() == frozenset({("a", "b"), ("b", "c")})


class TestMinimal:
    def test_unique_minimal(self):
        po = chain_order("a", "b", "c")
        assert minimal(["b", "c"], po) == "b"

    def test_ties_deterministic_without_rng(self):
        po = PartialOrder(elements=["x", "y"])
        assert minimal(["y", "x"], po) == minimal(["x", "y"], po)

    def test_ties_respect_rng(self):
        po = PartialOrder(elements=[f"e{i}" for i in range(10)])
        picks = {
            minimal(list(po.elements()), po, rng=random.Random(s))
            for s in range(30)
        }
        assert len(picks) > 1

    def test_empty_set_rejected(self):
        with pytest.raises(CyclicOrderError):
            minimal([], PartialOrder())

    def test_cycle_within_subset_rejected(self):
        po = PartialOrder()
        po.add_edge("a", "b")
        po.add_edge("b", "a")
        with pytest.raises(CyclicOrderError):
            minimal(["a", "b"], po)
