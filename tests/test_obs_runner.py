"""Integration tests for the instrumented scenario runners.

``run_figure1_observed`` drives the paper's Figure 1 attack through the
Figure 2 architecture with the full observability harness attached; the
assertions here pin the headline quantities the ``repro obs`` report
prints — per-state dwell times, queue high-water marks, loss counts,
and the incident span tree — against the scenario's known ground truth.
"""

import pytest

from repro.errors import RecoveryError
from repro.obs.events import (
    AlertEnqueued,
    HealFinished,
    ScanStep,
    StateTransition,
    TaskRedone,
    TaskUndone,
)
from repro.obs.runner import (
    run_figure1_observed,
    run_fullstack_observed,
    run_gillespie_observed,
)
from repro.obs.tracing import render_span_tree

SCAN_TIME = 1.0 / 15.0
TASK_TIME = 1.0 / 20.0


@pytest.fixture(scope="module")
def fig1():
    return run_figure1_observed()


class TestFigure1Observed:
    def test_heal_matches_paper_ground_truth(self, fig1):
        report = fig1.result
        short = lambda uids: {u.split("/")[1].split("#")[0] for u in uids}
        assert short(report.undone) == {"t1", "t2", "t3", "t4", "t6",
                                        "t8", "t10"}
        assert short(report.redone) == {"t1", "t2", "t6", "t8", "t10"}
        assert short(report.abandoned) == {"t3", "t4"}

    def test_counters(self, fig1):
        m = fig1.metrics
        assert m.alerts_enqueued.value == 3  # genuine + 2 false alarms
        assert m.alerts_lost.value == 0
        assert m.loss_fraction == 0.0
        assert m.scan_steps.value == 3
        assert m.units_emitted.value == 3
        assert m.heals.value == 1
        assert m.tasks_undone.value == 7
        assert m.tasks_redone.value == 6  # 5 redone + 1 new execution
        assert m.undo_size.mean == pytest.approx(7.0)
        assert m.redo_size.mean == pytest.approx(6.0)
        # strict gate probed once per scan step while damage was known
        assert m.normal_refused.value == 3

    def test_queue_high_water_marks(self, fig1):
        m = fig1.metrics
        assert m.alert_depth.high_water == 3
        assert m.recovery_depth.high_water == 3
        # both queues fully drained by the end of the incident
        assert m.alert_depth.value == 0
        assert m.recovery_depth.value == 0

    def test_dwell_times_in_sim_time(self, fig1):
        m = fig1.metrics
        assert m.dwell_states() == ["NORMAL", "RECOVERY", "SCAN"]
        # two 0.05 inter-arrival gaps while detecting, then three scans
        # at scan_time * (1 + outstanding) with outstanding = 0, 1, 2.
        assert m.time_in_state("SCAN") == pytest.approx(
            2 * 0.05 + 6 * SCAN_TIME)
        # 7 undos + 6 redos at TASK_TIME each
        assert m.time_in_state("RECOVERY") == pytest.approx(13 * TASK_TIME)
        occ = m.occupancy()
        assert sum(occ.values()) == pytest.approx(1.0)

    def test_span_tree_shape(self, fig1):
        (incident,) = fig1.spans
        assert incident.name == "incident" and incident.finished
        names = [c.name for c in incident.children]
        assert names == ["detect", "scan", "scan", "scan", "heal"]
        heal = incident.children[-1]
        assert [c.name for c in heal.children] == ["undo", "redo"]
        undo, redo = heal.children
        assert undo.attributes["tasks"] == 7
        assert redo.attributes["tasks"] == 6
        # undo and redo interleave in the healer's settle pass, so only
        # containment (not exact sub-durations) is stable.
        for child in incident.children + heal.children:
            assert child.finished and child.duration > 0
            assert child.start >= incident.start
            assert child.end <= incident.end + 1e-9
        text = render_span_tree(fig1.spans)
        assert "- incident" in text and "undo" in text

    def test_event_stream_is_time_ordered_and_complete(self, fig1):
        times = [e.time for e in fig1.events]
        assert times == sorted(times)
        kinds = {e.kind for e in fig1.events}
        assert {"AlertEnqueued", "StateTransition", "ScanStep",
                "UnitEmitted", "HealStarted", "HealFinished",
                "TaskUndone", "TaskRedone",
                "NormalTaskRefused"} <= kinds
        (finished,) = [e for e in fig1.events
                       if isinstance(e, HealFinished)]
        assert finished.undone == 7
        assert finished.redone + finished.new_executions == 6
        assert finished.duration == pytest.approx(13 * TASK_TIME)

    def test_scan_costs_reflect_outstanding_units(self, fig1):
        scans = [e for e in fig1.events if isinstance(e, ScanStep)]
        assert [s.outstanding_units for s in scans] == [0, 1, 2]

    def test_undersized_recovery_buffer_blocks_analyzer(self):
        with pytest.raises(RecoveryError, match="analyzer blocked"):
            run_figure1_observed(false_alarms=3, alert_buffer=8,
                                 recovery_buffer=1)

    def test_alert_overflow_counts_losses(self):
        run = run_figure1_observed(false_alarms=4, alert_buffer=2,
                                   recovery_buffer=8)
        m = run.metrics
        assert m.alerts_lost.value == 3  # 5 offered into capacity 2
        assert m.loss_fraction == pytest.approx(3 / 5)
        assert m.alert_depth.high_water == 2  # never exceeds capacity

    def test_instrumentation_does_not_change_the_heal(self, fig1):
        """No-op-by-default contract: an unobserved run heals exactly
        the same instances the instrumented one does."""
        from repro.ids.alerts import Alert
        from repro.scenarios.figure1 import build_figure1
        from repro.system import SelfHealingSystem, SystemState

        sc = build_figure1(attacked=True)
        system = SelfHealingSystem(sc.store, sc.log, sc.specs_by_instance,
                                   alert_buffer=8, recovery_buffer=8)
        system.submit_alert(Alert(0.0, sc.malicious_uid))
        for i in range(2):
            system.submit_alert(Alert(0.0, f"noise/t0#{i + 1}",
                                      genuine=False))
        while system.state is SystemState.SCAN:
            assert system.scan_step() is not None
        plain = system.recovery_step()
        observed = fig1.result
        assert set(plain.undone) == set(observed.undone)
        assert set(plain.redone) == set(observed.redone)
        assert set(plain.kept) == set(observed.kept)
        assert set(plain.abandoned) == set(observed.abandoned)


class TestFullstackObserved:
    def test_metrics_agree_with_simulator_result(self):
        run = run_fullstack_observed(horizon=30.0, seed=0)
        result = run.result
        m = run.metrics
        assert m.alerts_lost.value == result.alerts_lost
        assert (m.alerts_enqueued.value + m.alerts_lost.value
                == result.attacks)
        assert m.heals.value == result.heals
        assert m.tasks_undone.value == result.repaired_instances
        assert result.all_heals_audited_ok
        # dwell accounting mirrors the simulator's occupancies
        for cat, frac in result.category_occupancy.items():
            measured = m.time_in_state(cat.name) / result.horizon
            assert measured == pytest.approx(frac, abs=1e-6)


class TestGillespieObserved:
    def test_transition_events_drive_dwell_accounting(self):
        from repro.markov.degradation import power_law
        from repro.markov.stg import RecoverySTG

        stg = RecoverySTG(arrival_rate=1.0, scan=power_law(15.0, 1.0),
                          recovery=power_law(20.0, 1.0), recovery_buffer=4)
        run = run_gillespie_observed(stg, horizon=50.0, seed=3)
        m = run.metrics
        total = sum(m.time_in_state(s) for s in m.dwell_states())
        assert total == pytest.approx(50.0)
        assert m.time_in_state("NORMAL") > 0
        assert any(isinstance(e, StateTransition) for e in run.events)
        assert any(isinstance(e, AlertEnqueued) for e in run.events)
        assert m.alerts_enqueued.value > 0
        assert all(not isinstance(e, (TaskUndone, TaskRedone))
                   for e in run.events)  # the CTMC abstracts heal work
