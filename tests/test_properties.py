"""Property-based tests (hypothesis) on the core invariants.

Four families:

1. **Recovery soundness** — for arbitrary random workloads, attack
   placements and interleavings, the healed system is strictly correct
   (Definition 2) and its actions respect the Theorem 3 discipline.
2. **Partial orders** — topological orders of random DAG constraint sets
   are linear extensions; ``minimal`` picks unconstrained elements.
3. **CTMC numerics** — random birth-death generators: steady state
   solves πQ=0; uniformization agrees with the matrix exponential;
   cumulative times integrate to t.
4. **Data store** — version history behaves like an append-only list
   with faithful restores.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.markov.steady_state import steady_state
from repro.markov.transient import (
    cumulative_times,
    transient_probabilities,
    transient_probabilities_expm,
)
from repro.scenarios.generate import (
    birth_death,
    random_dag_edges,
    segmented_commits,
)
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator
from repro.workflow.data import DataStore
from repro.workflow.log import RecordKind
from repro.workflow.precedence import PartialOrder


# --------------------------------------------------------------------------
# 1. Recovery soundness
# --------------------------------------------------------------------------


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_attacks=st.integers(min_value=1, max_value=4),
    branchiness=st.sampled_from([0.0, 0.3, 0.7]),
    loopiness=st.sampled_from([0.0, 0.4]),
    policy=st.sampled_from(["round_robin", "sequential", "random"]),
)
def test_healing_is_strictly_correct(seed, n_attacks, branchiness,
                                     loopiness, policy):
    gen = WorkloadGenerator(
        WorkloadConfig(
            n_workflows=3,
            tasks_per_workflow=9,
            branch_probability=branchiness,
            loop_probability=loopiness,
        ),
        random.Random(seed),
    )
    workload = gen.generate()
    campaign = gen.pick_attacks(workload, n_attacks=n_attacks)
    result = run_pipeline(workload, campaign, policy=policy, seed=seed)
    assert result.healthy, (seed, result.audit.problems[:3])

    report = result.heal
    # Theorem 3 rule 3: undo(t) strictly before redo(t).
    seq = list(report.actions)
    for uid in set(report.undone) & set(report.redone):
        assert seq.index(Action.undo(uid)) < seq.index(Action.redo(uid))
    # Theorem 3 rule 1: redo order respects the log precedence.
    seqs = [result.log.get(u).seq for u in report.redone]
    assert seqs == sorted(seqs)
    # Rule T3.4 semantics: no recovery execution read a dirty version.
    dirty = set(report.dirty_versions)
    for rec in result.log.records(RecordKind.REDO):
        assert not any((n, v) in dirty for n, v in rec.reads.items())
    # Disjoint outcomes: an instance is kept XOR (undone/redone family).
    assert not (set(report.kept) & set(report.undone))
    assert set(report.abandoned) <= set(report.undone)
    assert set(report.redone) <= set(report.undone)
    # The report PARTITIONS the log: every committed instance is either
    # kept or undone; undone splits into redone and abandoned.
    all_uids = {r.uid for r in result.log.normal_records()}
    assert set(report.kept) | set(report.undone) == all_uids
    assert set(report.redone) | set(report.abandoned) == set(
        report.undone
    )
    assert not (set(report.redone) & set(report.abandoned))
    # New executions never collide with logged instances.
    assert not (set(report.new_executions) & all_uids)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_healing_idempotent_damage_free(seed):
    """Healing a *clean* system changes nothing (no undos, no redos)."""
    gen = WorkloadGenerator(
        WorkloadConfig(n_workflows=2, tasks_per_workflow=7,
                       branch_probability=0.5),
        random.Random(seed),
    )
    workload = gen.generate()
    result = run_pipeline(workload, None, seed=seed)
    assert result.heal.undone == ()
    assert result.heal.redone == ()
    assert result.healthy


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1000),
    interleavings=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=2,
        max_size=3,
    ),
)
def test_healed_state_invariant_under_interleaving(seed, interleavings):
    """With read-only shared objects, workflow results are independent
    of scheduling — so the *healed* final values must not depend on how
    the attacked execution was interleaved either.  (With writable
    shared objects even clean runs legitimately differ across
    interleavings, so no such invariance is expected there.)"""
    config = WorkloadConfig(
        n_workflows=3, tasks_per_workflow=6, branch_probability=0.3,
        shared_writes=False,
    )
    snapshots = []
    for policy_seed in interleavings:
        gen = WorkloadGenerator(config, random.Random(seed))
        wl = gen.generate()
        campaign = gen.pick_attacks(wl, n_attacks=2)
        result = run_pipeline(wl, campaign, policy="random",
                              seed=policy_seed)
        assert result.healthy, result.audit.problems[:3]
        snapshots.append(result.store.snapshot())
    first = snapshots[0]
    for other in snapshots[1:]:
        assert other == first


# --------------------------------------------------------------------------
# 2. Partial orders
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(random_dag_edges())
def test_topological_order_is_linear_extension(dag):
    nodes, edges = dag
    po = PartialOrder(elements=nodes)
    for a, b in edges:
        po.add_edge(a, b)
    order = po.topological_order()
    assert sorted(order) == sorted(nodes)
    pos = {v: i for i, v in enumerate(order)}
    for a, b in edges:
        assert pos[a] < pos[b]


@settings(max_examples=50, deadline=None)
@given(random_dag_edges())
def test_minimal_elements_have_no_internal_predecessors(dag):
    nodes, edges = dag
    po = PartialOrder(elements=nodes)
    for a, b in edges:
        po.add_edge(a, b)
    mins = po.minimal_elements()
    assert mins
    for m in mins:
        assert not any(b == m for _, b in edges)


# --------------------------------------------------------------------------
# 3. CTMC numerics
# --------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(birth_death())
def test_steady_state_solves_balance_equations(bd):
    chain, lams, mus = bd
    pi = steady_state(chain)
    assert pi.sum() == pytest.approx(1.0)
    assert (pi >= 0).all()
    assert np.abs(pi @ chain.generator).max() < 1e-8
    # Detailed balance for birth-death chains: π_i λ_i = π_{i+1} μ_i.
    for i in range(len(lams)):
        assert pi[i] * lams[i] == pytest.approx(pi[i + 1] * mus[i],
                                                rel=1e-6, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(birth_death(), st.floats(min_value=0.01, max_value=5.0))
def test_uniformization_matches_expm(bd, t):
    chain, __, __2 = bd
    pi0 = chain.point_distribution(0)
    uni = transient_probabilities(chain, pi0, t)
    exp = transient_probabilities_expm(chain, pi0, t)
    assert np.abs(uni - exp).max() < 1e-7


@settings(max_examples=25, deadline=None)
@given(birth_death(), st.floats(min_value=0.01, max_value=5.0))
def test_cumulative_times_sum_to_horizon(bd, t):
    chain, __, __2 = bd
    pi0 = chain.point_distribution(0)
    lt = cumulative_times(chain, pi0, t)
    assert lt.sum() == pytest.approx(t, rel=1e-9)
    assert (lt >= -1e-12).all()


# --------------------------------------------------------------------------
# 4. Segmented logs
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(segmented_commits())
def test_segmented_merge_preserves_local_and_causal_order(scenario):
    from repro.workflow.log import SystemLog
    from repro.workflow.segments import SegmentedLog
    from repro.workflow.task import TaskInstance

    nodes, plan = scenario
    slog = SegmentedLog(nodes)
    entries = []
    for i, (node, notify) in enumerate(plan):
        entry = slog.commit_on(
            node, TaskInstance(f"wf_{node}", f"t{i}", 1), {}, {},
            notify=notify,
        )
        entries.append((entry, notify))
    merged = slog.merge()
    assert len(merged) == len(plan)
    pos = {r.uid: i for i, r in enumerate(merged.normal_records())}
    # Per-node order preserved.
    for node in nodes:
        locals_ = [
            e for e, _n in entries if e.node == node
        ]
        positions = [pos[e.instance.uid] for e in locals_]
        assert positions == sorted(positions)
    # Witnessed causality preserved: a commit made after witnessing
    # another node's timestamp merges after that commit.
    for i, (entry, notify) in enumerate(entries):
        for later_entry, _n in entries[i + 1:]:
            if later_entry.node in notify:
                assert pos[entry.instance.uid] < pos[
                    later_entry.instance.uid
                ]


# --------------------------------------------------------------------------
# 5. Data store
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1,
                max_size=30))
def test_version_history_is_append_only(values):
    store = DataStore({"x": 0})
    for i, v in enumerate(values):
        assert store.write("x", v, writer=f"t{i}") == i + 1
    history = store.history("x")
    assert [h.value for h in history] == [0] + values
    assert [h.number for h in history] == list(range(len(values) + 1))
    assert store.read("x") == values[-1]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=2,
             max_size=15),
    st.data(),
)
def test_restore_reproduces_any_historical_value(values, data):
    store = DataStore({"x": values[0]})
    for v in values[1:]:
        store.write("x", v)
    target = data.draw(
        st.integers(min_value=0, max_value=len(values) - 1)
    )
    store.restore("x", target, writer="undo")
    assert store.read("x") == values[target]
