"""Unit tests for attack campaigns."""

import pytest

from repro.ids.attacks import (
    AttackCampaign,
    OutputOverride,
    OutputTransform,
    TargetSelector,
)
from repro.workflow.task import TaskInstance


class TestTargetSelector:
    def test_wildcards(self):
        sel = TargetSelector(task_id="t1")
        assert sel.matches(TaskInstance("any", "t1", 3))
        assert not sel.matches(TaskInstance("any", "t2", 1))

    def test_full_match(self):
        sel = TargetSelector("wf", "t1", 2)
        assert sel.matches(TaskInstance("wf", "t1", 2))
        assert not sel.matches(TaskInstance("wf", "t1", 1))
        assert not sel.matches(TaskInstance("other", "t1", 2))


class TestPayloads:
    def test_output_override_only_touches_existing_keys(self):
        payload = OutputOverride(x=99, ghost=1)
        out = payload({}, {"x": 1, "y": 2})
        assert out == {"x": 99, "y": 2}
        assert "ghost" not in out

    def test_output_transform_keeps_key_set(self):
        payload = OutputTransform(lambda i, o: {"x": o["x"] + 1})
        assert payload({}, {"x": 1}) == {"x": 2}

    def test_output_transform_rejects_key_changes(self):
        payload = OutputTransform(lambda i, o: {"other": 1})
        with pytest.raises(ValueError, match="write set"):
            payload({}, {"x": 1})


class TestAttackCampaign:
    def test_records_ground_truth(self):
        campaign = AttackCampaign().corrupt_task("t1", x=1)
        inst = TaskInstance("wf", "t1", 1)
        campaign.apply(inst, {}, {"x": 0})
        assert campaign.malicious_uids == ("wf/t1#1",)
        assert campaign.label_of("wf/t1#1") == "corrupt t1"
        assert campaign.label_of("wf/t2#1") is None

    def test_untargeted_instance_untouched(self):
        campaign = AttackCampaign().corrupt_task("t1", x=1)
        out = campaign.apply(TaskInstance("wf", "t2", 1), {}, {"x": 0})
        assert out == {"x": 0}
        assert campaign.malicious_uids == ()

    def test_stacked_tampers_compose(self):
        campaign = (
            AttackCampaign()
            .corrupt_task("t1", x=10)
            .transform_task("t1", lambda i, o: {"x": o["x"] + 5})
        )
        out = campaign.apply(TaskInstance("w", "t1", 1), {}, {"x": 0})
        assert out == {"x": 15}

    def test_forge_run_marks_without_tampering(self):
        campaign = AttackCampaign().forge_run("evil")
        out = campaign.apply(TaskInstance("evil", "t1", 1), {}, {"x": 42})
        assert out == {"x": 42}
        assert campaign.malicious_uids == ("evil/t1#1",)
        assert "forged run" in campaign.label_of("evil/t1#1")

    def test_len_counts_rules(self):
        campaign = AttackCampaign().corrupt_task("a").forge_run("r")
        assert len(campaign) == 2
