"""Tests for Theorem 3 / Theorem 4 partial orders over recovery actions."""

import pytest

from repro.core.actions import Action
from repro.core.partial_orders import (
    normal_task_constraints,
    recovery_partial_order,
)
from repro.workflow.dependency import DependencyAnalyzer
from repro.workflow.log import SystemLog
from repro.workflow.task import TaskInstance


def commit(log, wf, task, reads=None, writes=None):
    return log.commit(
        TaskInstance(wf, task, 1), reads=reads or {}, writes=writes or {}
    )


@pytest.fixture
def conflict_log():
    """t1 reads a, writes x; t2 reads x, writes a (anti both ways);
    t3 rewrites x (output dep on t1)."""
    log = SystemLog()
    commit(log, "w", "t1", reads={"a": 0}, writes={"x": 1})
    commit(log, "w", "t2", reads={"x": 1}, writes={"a": 1})
    commit(log, "w", "t3", writes={"x": 2})
    return log


class TestTheorem3:
    def test_rule1_redos_follow_log_order(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        undos = ["w/t1#1", "w/t2#1"]
        order = recovery_partial_order(dep, undos, undos)
        assert order.precedes(Action.redo("w/t1#1"), Action.redo("w/t2#1"))
        assert not order.precedes(
            Action.redo("w/t2#1"), Action.redo("w/t1#1")
        )

    def test_rule3_undo_before_redo(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        order = recovery_partial_order(dep, ["w/t1#1"], ["w/t1#1"])
        assert order.precedes(Action.undo("w/t1#1"), Action.redo("w/t1#1"))

    def test_rule4_anti_dependence(self, conflict_log):
        """t1 →a t2 (t2 rewrites a which t1 read) ⇒ undo(t2) ≺ redo(t1)."""
        dep = DependencyAnalyzer(conflict_log)
        order = recovery_partial_order(
            dep, ["w/t1#1", "w/t2#1"], ["w/t1#1", "w/t2#1"]
        )
        assert order.precedes(Action.undo("w/t2#1"), Action.redo("w/t1#1"))

    def test_rule5_output_dependence(self, conflict_log):
        """t1 →o t3 (t3 rewrites x) ⇒ undo(t3) ≺ undo(t1)."""
        dep = DependencyAnalyzer(conflict_log)
        order = recovery_partial_order(
            dep, ["w/t1#1", "w/t3#1"], []
        )
        assert order.precedes(Action.undo("w/t3#1"), Action.undo("w/t1#1"))

    def test_order_is_acyclic(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        all_uids = ["w/t1#1", "w/t2#1", "w/t3#1"]
        order = recovery_partial_order(dep, all_uids, all_uids)
        order.check_acyclic()  # must not raise

    def test_elements_match_inputs(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        order = recovery_partial_order(dep, ["w/t1#1"], [])
        assert order.elements() == frozenset({Action.undo("w/t1#1")})

    def test_figure1_order_schedulable(self, figure1):
        dep = DependencyAnalyzer(figure1.log, figure1.specs_by_instance)
        from repro.core.undo_redo import find_redo_tasks, find_undo_tasks

        undo = find_undo_tasks(dep, [figure1.malicious_uid])
        redo = find_redo_tasks(dep, undo.definite)
        order = recovery_partial_order(dep, undo.definite, redo.definite)
        schedule = order.topological_order()
        # Every undo precedes its redo in the schedule.
        for uid in undo.definite & redo.definite:
            assert schedule.index(Action.undo(uid)) < schedule.index(
                Action.redo(uid)
            )


class TestTheorem4:
    def test_normal_reader_waits_for_redo(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        order = normal_task_constraints(
            dep,
            undo_set=["w/t1#1"],
            redo_set=["w/t1#1"],
            normal_tasks={
                "w/new#1": (frozenset({"x"}), frozenset())
            },
        )
        normal = Action.normal("w/new#1")
        assert order.precedes(Action.undo("w/t1#1"), normal)
        assert order.precedes(Action.redo("w/t1#1"), normal)

    def test_normal_writer_waits_for_recovery_reader(self, conflict_log):
        """A normal task writing ``a`` must wait for redo(t1), which
        reads ``a`` (anti conflict)."""
        dep = DependencyAnalyzer(conflict_log)
        order = normal_task_constraints(
            dep,
            undo_set=["w/t1#1"],
            redo_set=["w/t1#1"],
            normal_tasks={
                "w/writer#1": (frozenset(), frozenset({"a"}))
            },
        )
        assert order.precedes(
            Action.redo("w/t1#1"), Action.normal("w/writer#1")
        )

    def test_unrelated_normal_task_unconstrained(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        order = normal_task_constraints(
            dep,
            undo_set=["w/t1#1"],
            redo_set=["w/t1#1"],
            normal_tasks={
                "w/free#1": (frozenset({"zz"}), frozenset({"qq"}))
            },
        )
        free = Action.normal("w/free#1")
        assert not order.direct_predecessors(free)

    def test_output_conflict_constrains(self, conflict_log):
        dep = DependencyAnalyzer(conflict_log)
        order = normal_task_constraints(
            dep,
            undo_set=["w/t1#1"],
            redo_set=[],
            normal_tasks={
                "w/ow#1": (frozenset(), frozenset({"x"}))
            },
        )
        assert order.precedes(Action.undo("w/t1#1"), Action.normal("w/ow#1"))


class TestActions:
    def test_action_str(self):
        assert str(Action.undo("w/t1#1")) == "undo(w/t1#1)"
        assert str(Action.redo("w/t1#1")) == "redo(w/t1#1)"
        assert str(Action.normal("w/t1#1")) == "w/t1#1"

    def test_action_hashable_ordered(self):
        a, b = Action.undo("u"), Action.redo("u")
        assert len({a, b, Action.undo("u")}) == 2
        assert sorted([b, a])  # sortable without error
