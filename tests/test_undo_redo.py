"""Tests for Theorem 1 (undo tasks) and Theorem 2 (redo tasks)."""

import pytest

from repro.core.undo_redo import find_redo_tasks, find_undo_tasks
from repro.workflow.dependency import DependencyAnalyzer


@pytest.fixture
def fig1_analysis(figure1):
    dep = DependencyAnalyzer(figure1.log, figure1.specs_by_instance)
    undo = find_undo_tasks(dep, [figure1.malicious_uid])
    return figure1, dep, undo


class TestTheorem1:
    def test_condition1_malicious_in_definite(self, fig1_analysis):
        figure1, dep, undo = fig1_analysis
        assert figure1.malicious_uid in undo.malicious
        assert figure1.malicious_uid in undo.definite

    def test_condition3_flow_closure(self, fig1_analysis):
        """t2, t4, t8, t10 are infected ('A' marks in Figure 1)."""
        figure1, dep, undo = fig1_analysis
        assert undo.infected == frozenset(
            {"wf1/t2#1", "wf1/t4#1", "wf2/t8#1", "wf2/t10#1"}
        )

    def test_condition2_control_candidates(self, fig1_analysis):
        """t3 and t4 are control dependent on the infected branch t2."""
        figure1, dep, undo = fig1_analysis
        deps = {dep for _, dep in undo.control_candidates}
        assert "wf1/t3#1" in deps
        assert "wf1/t4#1" in deps

    def test_condition4_stale_read_candidates(self, fig1_analysis):
        """t6 reads w, which the unexecuted t5 would write."""
        figure1, dep, undo = fig1_analysis
        hits = {
            (c.unexecuted_task, c.reader_uid)
            for c in undo.stale_read_candidates
        }
        assert ("t5", "wf1/t6#1") in hits

    def test_candidates_exclude_definite(self, fig1_analysis):
        figure1, dep, undo = fig1_analysis
        assert not (undo.candidates & undo.definite)
        # t3 (correct computation, wrong path) is a candidate only.
        assert "wf1/t3#1" in undo.candidates

    def test_clean_tasks_not_flagged(self, fig1_analysis):
        figure1, dep, undo = fig1_analysis
        assert "wf2/t7#1" not in undo.all_possible
        assert "wf2/t9#1" not in undo.all_possible

    def test_alert_for_uncommitted_instance_ignored(self, figure1):
        dep = DependencyAnalyzer(figure1.log, figure1.specs_by_instance)
        undo = find_undo_tasks(dep, ["wf1/ghost#1"])
        assert undo.definite == frozenset()
        assert undo.candidates == frozenset()

    def test_empty_malicious_set_empty_analysis(self, figure1):
        dep = DependencyAnalyzer(figure1.log, figure1.specs_by_instance)
        undo = find_undo_tasks(dep, [])
        assert undo.all_possible == frozenset()


class TestTheorem2:
    def test_condition1_non_control_dependent_redone(self, fig1_analysis):
        """t1, t2, t8, t10 are not control dependent on bad tasks →
        definite redos."""
        figure1, dep, undo = fig1_analysis
        redo = find_redo_tasks(dep, undo.definite)
        for uid in ("wf1/t1#1", "wf1/t2#1", "wf2/t8#1", "wf2/t10#1"):
            assert uid in redo.definite

    def test_condition2_control_dependent_becomes_candidate(
        self, fig1_analysis
    ):
        """t4 is bad *and* control dependent on bad t2 → candidate redo,
        resolved (negatively) only during re-execution."""
        figure1, dep, undo = fig1_analysis
        redo = find_redo_tasks(dep, undo.definite)
        assert "wf1/t4#1" in redo.candidate_uids
        assert ("wf1/t2#1", "wf1/t4#1") in redo.candidates
        assert "wf1/t4#1" not in redo.definite

    def test_redo_only_over_undo_set(self, fig1_analysis):
        figure1, dep, undo = fig1_analysis
        redo = find_redo_tasks(dep, undo.definite)
        assert redo.definite <= undo.definite
        assert redo.candidate_uids <= undo.definite
