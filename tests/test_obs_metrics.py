"""Unit tests for metrics instruments and the pipeline collector."""

import pytest

from repro.ids.alerts import BoundedQueue
from repro.obs.events import (
    AlertEnqueued,
    AlertLost,
    EventBus,
    HealFinished,
    NormalTaskRefused,
    ScanStep,
    StateTransition,
    TaskRedone,
    TaskUndone,
    UnitEmitted,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PipelineMetrics,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(4)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_tracks_high_water(self):
        g = Gauge("g")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2 and g.high_water == 7

    def test_inc_dec(self):
        g = Gauge("g")
        g.inc(5)
        g.dec(2)
        assert g.value == 3 and g.high_water == 5

    def test_reset_rebases_high_water(self):
        g = Gauge("g")
        g.set(9)
        g.reset()
        assert g.value == 0 and g.high_water == 0


class TestHistogram:
    def test_bucketing_with_inf_tail(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket (le semantics); 99 falls into the +inf tail.
        assert h.bucket_counts == (2, 1, 1, 1)
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)
        assert h.mean == pytest.approx(21.2)

    def test_mean_of_empty_is_zero(self):
        assert Histogram("h", buckets=(1.0,)).mean == 0.0

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_reset(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.count == 0 and h.sum == 0.0
        assert h.bucket_counts == (0, 0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a_total") is r.counter("a_total")
        assert len(r) == 1

    def test_labels_distinguish_instruments(self):
        r = MetricsRegistry()
        scan = r.histogram("dwell", labels={"state": "SCAN"})
        normal = r.histogram("dwell", labels={"state": "NORMAL"})
        assert scan is not normal
        assert r.get("dwell", {"state": "SCAN"}) is scan
        assert len(r) == 2

    def test_label_order_does_not_matter(self):
        r = MetricsRegistry()
        a = r.gauge("g", labels={"x": "1", "y": "2"})
        b = r.gauge("g", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("thing")

    def test_metrics_sorted_and_reset(self):
        r = MetricsRegistry()
        r.counter("b_total").inc()
        r.counter("a_total").inc()
        assert [m.name for m in r.metrics()] == ["a_total", "b_total"]
        r.reset()
        assert all(m.value == 0 for m in r.metrics())


class TestPipelineMetrics:
    def feed(self, metrics, events):
        for e in events:
            metrics(e)

    def test_counts_queue_events(self):
        m = PipelineMetrics()
        m.start(0.0)
        self.feed(m, [
            AlertEnqueued(0.0, uid="a", queue_depth=1),
            AlertEnqueued(0.1, uid="b", queue_depth=2),
            AlertLost(0.2, uid="c", queue_depth=2),
            UnitEmitted(0.3, units=2, queue_depth=2),
        ])
        assert m.alerts_enqueued.value == 2
        assert m.alerts_lost.value == 1
        assert m.loss_fraction == pytest.approx(1 / 3)
        assert m.alert_depth.high_water == 2
        assert m.units_emitted.value == 2
        assert m.recovery_depth.high_water == 2

    def test_loss_fraction_zero_when_nothing_offered(self):
        assert PipelineMetrics().loss_fraction == 0.0

    def test_dwell_accounting_across_transitions(self):
        m = PipelineMetrics()
        m.start(0.0, state="NORMAL")
        m(StateTransition(2.0, old="NORMAL", new="SCAN"))
        m(StateTransition(5.0, old="SCAN", new="RECOVERY"))
        m.finalize(6.0)
        assert m.time_in_state("NORMAL") == pytest.approx(2.0)
        assert m.time_in_state("SCAN") == pytest.approx(3.0)
        assert m.time_in_state("RECOVERY") == pytest.approx(1.0)
        occ = m.occupancy()
        assert sum(occ.values()) == pytest.approx(1.0)
        assert occ["SCAN"] == pytest.approx(0.5)
        assert m.dwell_states() == ["NORMAL", "RECOVERY", "SCAN"]

    def test_finalize_is_idempotent(self):
        m = PipelineMetrics()
        m.start(0.0, state="SCAN")
        m.finalize(4.0)
        m.finalize(4.0)
        assert m.time_in_state("SCAN") == pytest.approx(4.0)

    def test_first_event_anchors_clock_when_not_started(self):
        m = PipelineMetrics()
        m(StateTransition(3.0, old="NORMAL", new="SCAN"))
        m.finalize(5.0)
        assert m.time_in_state("SCAN") == pytest.approx(2.0)

    def test_heal_and_task_events(self):
        m = PipelineMetrics()
        m.start(0.0)
        self.feed(m, [
            ScanStep(0.1, uid="a", outstanding_units=1, cost=4),
            TaskUndone(0.2, uid="x"),
            TaskUndone(0.3, uid="y"),
            TaskRedone(0.4, uid="x"),
            HealFinished(0.5, undone=2, redone=1, kept=1, abandoned=0,
                         new_executions=1, duration=0.4),
            NormalTaskRefused(0.6, state="SCAN"),
        ])
        assert m.scan_steps.value == 1
        assert m.scan_cost.mean == pytest.approx(4.0)
        assert m.heals.value == 1
        assert m.tasks_undone.value == 2
        assert m.tasks_redone.value == 1
        assert m.undo_size.mean == pytest.approx(2.0)
        assert m.redo_size.mean == pytest.approx(2.0)  # redone + new
        assert m.heal_duration.mean == pytest.approx(0.4)
        assert m.normal_refused.value == 1

    def test_attach_subscribes_to_bus(self):
        bus = EventBus()
        m = PipelineMetrics().attach(bus)
        bus.publish(AlertEnqueued(0.0, uid="a", queue_depth=1))
        assert m.alerts_enqueued.value == 1

    def test_bind_queue_drives_depth_gauge(self):
        m = PipelineMetrics()
        q = BoundedQueue(2)
        m.bind_queue(q, "alert")
        q.offer("a")
        q.offer("b")
        assert m.alert_depth.value == 2
        q.pop()
        assert m.alert_depth.value == 1
        assert m.alert_depth.high_water == 2

    def test_summary_rows_cover_headline_quantities(self):
        m = PipelineMetrics()
        m.start(0.0, state="NORMAL")
        m(AlertLost(0.5, uid="a", queue_depth=1))
        m.finalize(1.0)
        rows = dict(m.summary_rows())
        assert rows["alerts lost"] == 1
        assert rows["alert loss fraction"] == pytest.approx(1.0)
        assert "dwell[NORMAL] total" in rows
