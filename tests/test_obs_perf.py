"""Tests for the wall-clock profiling layer (`repro.obs.perf`).

Covers the accumulator's nesting/self-time algebra with injected
clocks (fully deterministic), the attribution and structure-digest
acceptance criteria on the real fullstack / batch / fleet scenarios,
the registry histogram mirror, and the strategy-parameterized
conformance packs that ride the same PR.
"""

import dataclasses

import pytest

from repro.core.strategies import RecoveryStrategy
from repro.errors import ObsError
from repro.fleet import FleetConfig, FleetControlPlane
from repro.fleet.workload import resolve_mix
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import (
    ConformanceMonitor,
    replay_conformance,
    strict_property_pack,
)
from repro.obs.perf import (
    PHASES,
    PhaseProfiler,
    PhaseSink,
    bump,
    counter_snapshot,
)
from repro.sim.batch import ParallelSlowdownWarning, run_fullstack_batch
from repro.sim.fullstack import FullStackConfig, run_replication


class FakeClock:
    """Injectable wall clock: time only moves when the test says so."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def rows_by_path(report):
    return {r["path"]: r for r in report.rows}


class TestPhaseAlgebra:
    def test_nested_paths_self_time_and_attribution(self):
        clock = FakeClock()
        prof = PhaseProfiler(wall_clock=clock).start()
        with prof.phase("analyze"):
            clock.advance(1.0)
            with prof.phase("analyze.closure"):
                clock.advance(2.0)
        clock.advance(1.0)  # un-instrumented driver time
        prof.stop()
        report = prof.report("unit")
        rows = rows_by_path(report)
        assert rows["analyze"]["wall"] == pytest.approx(3.0)
        assert rows["analyze"]["wall_self"] == pytest.approx(1.0)
        assert rows["analyze;analyze.closure"]["wall"] == pytest.approx(2.0)
        assert rows["analyze;analyze.closure"]["depth"] == 1
        assert report.total_wall == pytest.approx(4.0)
        assert report.attribution == pytest.approx(0.75)

    def test_rows_follow_canonical_phase_order(self):
        clock = FakeClock()
        prof = PhaseProfiler(wall_clock=clock).start()
        # Recorded in reverse of the pipeline order on purpose.
        for name in ("audit", "heal", "analyze", "detect"):
            with prof.phase(name):
                clock.advance(0.5)
        prof.stop()
        names = [r["path"] for r in prof.report().rows]
        assert names == ["detect", "analyze", "heal", "audit"]
        assert all(n in PHASES for n in names)

    def test_aux_roots_are_detail_not_coverage(self):
        clock = FakeClock()
        prof = PhaseProfiler(wall_clock=clock).start()
        with prof.phase("tick"):
            clock.advance(1.0)
        # Folded worker-thread time: ran concurrently with the tick,
        # so counting it would push attribution past 1.
        prof.add_at(("workers", "t0", "detect"), 5.0, calls=3)
        prof.stop()
        counted = prof.report("fleet", aux_roots=("workers",))
        assert counted.attribution == pytest.approx(1.0)
        naive = prof.report("fleet")
        assert naive.attribution == 1.0  # capped, would be 6x
        assert rows_by_path(counted)["workers;t0;detect"]["calls"] == 3

    def test_structure_digest_ignores_wall_times_only(self):
        def run(per_phase):
            clock = FakeClock()
            prof = PhaseProfiler(wall_clock=clock).start()
            for _ in range(3):
                with prof.phase("detect"):
                    clock.advance(per_phase)
            prof.stop()
            return prof.report("unit")

        assert run(0.1).structure_digest() == run(9.0).structure_digest()
        slow = run(0.1)
        extra = run(0.1)
        extra.rows[0]["calls"] += 1
        assert slow.structure_digest() != extra.structure_digest()

    def test_report_before_start_is_loud(self):
        with pytest.raises(ObsError):
            PhaseProfiler().report()
        with pytest.raises(ObsError):
            PhaseProfiler().stop()

    def test_live_report_while_running(self):
        clock = FakeClock()
        prof = PhaseProfiler(wall_clock=clock).start()
        with prof.phase("detect"):
            clock.advance(1.0)
        clock.advance(1.0)
        assert prof.running
        live = prof.report()  # provisional: interval still open
        assert live.total_wall == pytest.approx(2.0)
        clock.advance(2.0)
        prof.stop()
        assert prof.report().total_wall == pytest.approx(4.0)
        assert not prof.running

    def test_counters_report_the_runs_delta(self):
        bump("closure_recomputations", 7)  # pre-existing global noise
        prof = PhaseProfiler(wall_clock=FakeClock()).start()
        prof.count("closure_recomputations", 3)
        prof.stop()
        report = prof.report()
        assert report.counters["closure_recomputations"] == 3
        assert counter_snapshot()["closure_recomputations"] >= 10

    def test_absorb_folds_sink_under_prefix(self):
        sink = PhaseSink()
        with sink.phase("detect"):
            pass
        sink.add("heal", 2.0, sim=1.5, calls=4)
        prof = PhaseProfiler(wall_clock=FakeClock()).start()
        prof.absorb(sink, prefix=("workers", "t1"))
        prof.stop()
        rows = rows_by_path(prof.report())
        assert rows["workers;t1;heal"]["calls"] == 4
        assert rows["workers;t1;heal"]["sim"] == pytest.approx(1.5)

    def test_collapsed_stack_format(self):
        clock = FakeClock()
        prof = PhaseProfiler(wall_clock=clock).start()
        with prof.phase("analyze"):
            with prof.phase("analyze.plan"):
                clock.advance(0.002)
        prof.stop()
        lines = prof.report().collapsed().splitlines()
        assert lines[0] == "repro;analyze 0"
        assert lines[1] == "repro;analyze;analyze.plan 2000"


class TestRegistryMirror:
    def test_phase_exits_observe_labeled_histograms(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        prof = PhaseProfiler(wall_clock=clock)
        prof.bind_registry(registry)
        prof.start()
        for _ in range(2):
            with prof.phase("analyze"):
                clock.advance(0.001)
                with prof.phase("analyze.closure"):
                    clock.advance(0.001)
        prof.stop()
        text = render_prometheus(registry)
        assert 'repro_phase_wall_seconds_count{phase="analyze"} 2' in text
        # Leaf name, not the full path: bounded label cardinality.
        assert 'phase="analyze.closure"' in text
        assert "analyze;analyze.closure" not in text


class TestFullstackAttribution:
    def test_attribution_digest_and_closure_line_item(self):
        config = FullStackConfig(arrival_rate=6.0, alert_buffer=4,
                                 recovery_buffer=4)

        def once():
            prof = PhaseProfiler().start()
            run_replication(config, horizon=30.0, seed=7, profiler=prof)
            prof.stop()
            return prof.report("fullstack")

        first, second = once(), once()
        assert first.structure_digest() == second.structure_digest()
        assert first.attribution >= 0.95
        rows = rows_by_path(first)
        # ROADMAP 2b's measured line item: the closure is re-derived on
        # every analyzer scan, once per processed alert.
        closure = first.counters["closure_recomputations"]
        assert closure >= 1
        assert closure == rows["analyze"]["calls"]
        assert rows["analyze;analyze.closure"]["wall"] >= 0.0


class TestBatchProfile:
    CONFIG = FullStackConfig(arrival_rate=6.0, alert_buffer=4,
                             recovery_buffer=4)

    def test_inline_batch_nests_replication_phases(self):
        prof = PhaseProfiler().start()
        run_fullstack_batch(self.CONFIG, horizon=8.0, replications=2,
                            workers=1, seed=7, profiler=prof)
        prof.stop()
        report = prof.report("batch-inline")
        rows = rows_by_path(report)
        assert rows["batch.worker"]["calls"] == 2
        assert any(p.startswith("batch.worker;detect")
                   for p in rows), "deep phases must nest under worker"
        assert report.attribution >= 0.95

    def test_parallel_batch_accounts_fan_out_and_warns(self):
        # Tiny work, real process pool: spawn dwarfs compute, so the
        # <1 "speedup" fires the loud warning (ROADMAP 2a, satellite 3).
        prof = PhaseProfiler().start()
        with pytest.warns(ParallelSlowdownWarning, match="slower"):
            batch = run_fullstack_batch(
                self.CONFIG, horizon=2.0, replications=2,
                workers=2, seed=7, profiler=prof)
        prof.stop()
        assert batch.speedup_lt_1
        assert batch.speedup < 1.0
        assert batch.fan_out_overhead > 0.0
        report = prof.report("batch-parallel")
        rows = rows_by_path(report)
        assert rows["batch.spawn"]["wall"] > 0.0
        assert rows["batch.fan-out"]["wall"] == pytest.approx(
            batch.fan_out_overhead)
        assert rows["batch.worker"]["calls"] == 2
        assert report.counters["pickle_bytes"] > 0


@pytest.fixture(scope="module")
def profiled_fleet():
    """One profiled small fleet run (profiler started *after*
    construction — setup's CTMC solves belong to calibration)."""
    prof = PhaseProfiler()
    plane = FleetControlPlane(
        FleetConfig(tenants=3, duration=10.0, workers=2, seed=3),
        profiler=prof,
    )
    prof.start()
    plane.run()
    prof.stop()
    return plane


class TestFleetProfile:
    def test_attribution_meets_the_floor(self, profiled_fleet):
        report = profiled_fleet.profile_report()
        assert report.attribution >= 0.95
        paths = [r["path"] for r in report.rows]
        assert "tick" in paths
        assert any(p.startswith("workers;t") for p in paths)

    def test_snapshot_has_per_tenant_and_per_tick_tables(
            self, profiled_fleet):
        snap = profiled_fleet.profile_snapshot()
        assert set(snap) == {"fleet", "tenants", "ticks"}
        assert snap["fleet"]["attribution"] >= 0.95
        assert len(snap["tenants"]) == 3
        for tenant_rows in snap["tenants"].values():
            assert all(";" not in r["path"].split(";")[0]
                       for r in tenant_rows)
        assert snap["ticks"], "per-tick breakdowns must accumulate"

    def test_fleet_histograms_reach_the_shared_registry(
            self, profiled_fleet):
        text = render_prometheus(profiled_fleet.registry)
        assert "repro_phase_wall_seconds" in text
        assert 'phase="detect"' in text  # observed from shard threads

    def test_unprofiled_plane_refuses_profile_report(self):
        plane = FleetControlPlane(FleetConfig(tenants=2, duration=5.0))
        with pytest.raises(ObsError, match="without a profiler"):
            plane.profile_report()

    def test_structure_digest_is_stable_run_to_run(self):
        def once():
            prof = PhaseProfiler()
            plane = FleetControlPlane(
                FleetConfig(tenants=2, duration=8.0, workers=2, seed=5),
                profiler=prof,
            )
            prof.start()
            plane.run()
            prof.stop()
            return plane.profile_report().structure_digest()

        assert once() == once()


class TestStrategyPacks:
    def test_risk_normal_only_drops_heal_bracketing(self):
        strict = {p.name for p in strict_property_pack()}
        relaxed = {p.name for p in strict_property_pack(
            RecoveryStrategy.RISK_NORMAL_ONLY)}
        assert strict - relaxed == {"task-within-heal"}
        # RISK_ALL still promises bracketed repairs: full pack.
        risk_all = {p.name for p in strict_property_pack(
            RecoveryStrategy.RISK_ALL)}
        assert risk_all == strict

    def test_monitor_summary_names_its_strategy(self):
        monitor = ConformanceMonitor(
            strategy=RecoveryStrategy.RISK_NORMAL_ONLY)
        assert monitor.summary()["strategy"] == "risk_normal_only"
        assert "task-within-heal" not in {p.name
                                          for p in monitor.properties}
        assert replay_conformance(
            [], strategy=RecoveryStrategy.RISK_NORMAL_ONLY
        ).strategy is RecoveryStrategy.RISK_NORMAL_ONLY

    def test_mixed_fleet_rollup_counts_by_strategy(self):
        base = resolve_mix(["figure1"])[0]
        relaxed = dataclasses.replace(
            base, strategy=RecoveryStrategy.RISK_NORMAL_ONLY)
        plane = FleetControlPlane(
            FleetConfig(tenants=2, duration=10.0, seed=2),
            profiles=[base, relaxed],
        )
        plane.run()
        health = plane.health()
        assert health.by_strategy == {"risk_normal_only": 1, "strict": 1}
        payload = health.as_dict()
        assert payload["by_strategy"] == health.by_strategy
        strategies = {row["tenant"]: row["strategy"]
                      for row in payload["worst_tenants"]}
        assert sorted(strategies.values()) == ["risk_normal_only",
                                               "strict"]

    def test_effective_health_config_authority(self):
        base = resolve_mix(["figure1"])[0]
        assert base.strategy is RecoveryStrategy.STRICT
        assert base.effective_health_config() is base.health_config
        relaxed = dataclasses.replace(
            base, strategy=RecoveryStrategy.RISK_NORMAL_ONLY)
        cfg = relaxed.effective_health_config()
        assert cfg.strategy is RecoveryStrategy.RISK_NORMAL_ONLY


class TestDeterminismUnderProfiling:
    def test_profiler_does_not_perturb_the_run(self):
        """Profiling is observation only: the simulated results of a
        seeded run are identical with and without a profiler."""
        config = FullStackConfig(arrival_rate=6.0, alert_buffer=4,
                                 recovery_buffer=4)
        bare = run_replication(config, horizon=20.0, seed=11)
        prof = PhaseProfiler().start()
        profiled = run_replication(config, horizon=20.0, seed=11,
                                   profiler=prof)
        prof.stop()
        assert bare.heals == profiled.heals
        assert bare.alerts_lost == profiled.alerts_lost
        assert bare.repaired_instances == profiled.repaired_instances
        assert bare.category_occupancy == profiled.category_occupancy
