"""Tests for DOT export and networkx adapters — including independent
validation of our dominator analysis against networkx."""

import networkx as nx
import pytest

from repro.markov.stg import RecoverySTG
from repro.scenarios.figure1 import build_figure1
from repro.workflow.dependency import DependencyAnalyzer
from repro.workflow.dominators import dominators, unavoidable_nodes
from repro.workflow.spec import workflow
from repro.workflow.viz import (
    dependency_graph_to_dot,
    dependency_graph_to_networkx,
    heal_report_to_dot,
    spec_to_dot,
    spec_to_networkx,
    stg_to_dot,
)


class TestSpecExport:
    def test_networkx_roundtrip_structure(self, diamond_spec):
        g = spec_to_networkx(diamond_spec)
        assert set(g.nodes) == set(diamond_spec.tasks)
        assert set(g.edges) == set(diamond_spec.edges)
        assert g.nodes["b"]["branch"] is True
        assert g.nodes["a"]["branch"] is False
        assert g.nodes["a"]["writes"] == ["ya"]
        assert g.graph["workflow_id"] == "diamond"

    def test_dot_contains_nodes_edges_and_shapes(self, diamond_spec):
        dot = spec_to_dot(diamond_spec)
        assert dot.startswith('digraph "diamond" {')
        for t in diamond_spec.tasks:
            assert f'"{t}"' in dot
        assert '"b" -> "c";' in dot
        assert "shape=diamond" in dot  # the branch node
        assert dot.rstrip().endswith("}")

    def test_dominators_match_networkx(self, diamond_spec):
        """Independent validation: our iterative dominator analysis
        agrees with networkx.immediate_dominators on every node."""
        for spec in (diamond_spec, _figure1_wf1(), _nested()):
            g = spec_to_networkx(spec)
            idom = nx.immediate_dominators(g, spec.start)
            ours = dominators(spec)
            for node in spec.tasks:
                nx_doms = set()
                cur = node
                while True:
                    nx_doms.add(cur)
                    # Some networkx versions omit the root from the
                    # idom mapping; either way the chain ends there.
                    parent = idom.get(cur, cur)
                    if parent == cur:
                        break
                    cur = parent
                assert ours[node] == frozenset(nx_doms), node

    def test_unavoidable_nodes_match_networkx_articulation(self):
        """Unavoidable nodes = nodes on every start→end path; validate
        via networkx path enumeration on small acyclic specs."""
        for spec in (_figure1_wf1(), _nested()):
            g = spec_to_networkx(spec)
            paths = []
            for end in spec.ends:
                paths.extend(
                    nx.all_simple_paths(g, spec.start, end)
                )
            on_all = set(spec.tasks)
            for p in paths:
                on_all &= set(p)
            assert unavoidable_nodes(spec) == frozenset(on_all)


class TestDependencyExport:
    @pytest.fixture
    def analyzed(self):
        sc = build_figure1(attacked=True)
        return sc, DependencyAnalyzer(sc.log, sc.specs_by_instance)

    def test_networkx_edges_carry_kinds(self, analyzed):
        sc, dep = analyzed
        g = dependency_graph_to_networkx(dep)
        kinds = {d["kind"] for _, __, d in g.edges(data=True)}
        assert "flow" in kinds and "control" in kinds
        assert g.number_of_nodes() == len(sc.log.normal_records())

    def test_control_edges_optional(self, analyzed):
        sc, dep = analyzed
        g = dependency_graph_to_networkx(dep, include_control=False)
        kinds = {d["kind"] for _, __, d in g.edges(data=True)}
        assert "control" not in kinds
        assert "flow" in kinds

    def test_flow_edge_matches_analyzer(self, analyzed):
        sc, dep = analyzed
        g = dependency_graph_to_networkx(dep)
        flow_edges = {
            (u, v) for u, v, d in g.edges(data=True)
            if d["kind"] == "flow"
        }
        assert ("wf1/t1#1", "wf1/t2#1") in flow_edges
        assert ("wf1/t1#1", "wf2/t8#1") in flow_edges

    def test_dot_marks_malicious_and_infected(self, analyzed):
        sc, dep = analyzed
        dot = dependency_graph_to_dot(dep, malicious=[sc.malicious_uid])
        assert "#ff8888" in dot   # malicious (B)
        assert "#ffcc88" in dot   # infected (A)
        assert '"wf1/t1#1"' in dot


class TestHealReportExport:
    def test_dispositions_rendered(self, figure1):
        report = figure1.heal_now()
        dot = heal_report_to_dot(report)
        assert "(abandoned)" in dot
        for color in ("#88cc88", "#88aaff", "#ffee88", "#ff8888"):
            assert color in dot
        # Settle order renders as a chain.
        first, second = (s.uid for s in report.final_history[:2])
        assert f'"{first}" -> "{second}";' in dot


class TestSTGExport:
    def test_states_and_rates_rendered(self):
        stg = RecoverySTG.paper_default(buffer_size=2)
        dot = stg_to_dot(stg)
        assert '"N"' in dot
        assert "doublecircle" in dot    # loss states
        assert '"N" -> "S:1/0"' in dot  # the arrival out of NORMAL
        assert f"label=\"{stg.arrival_rate:g}\"" in dot


def _figure1_wf1():
    return (
        workflow("wf1")
        .task("t1").task("t2", choose=lambda d: "t3")
        .task("t3").task("t4").task("t5").task("t6")
        .edge("t1", "t2").edge("t2", "t3").edge("t3", "t4")
        .edge("t4", "t6").edge("t2", "t5").edge("t5", "t6")
        .build()
    )


def _nested():
    return (
        workflow("nested")
        .task("s", choose=lambda d: "m1")
        .task("m1", choose=lambda d: "x")
        .task("x").task("y").task("m2").task("j")
        .edge("s", "m1").edge("s", "m2")
        .edge("m1", "x").edge("m1", "y")
        .edge("x", "j").edge("y", "j").edge("m2", "j")
        .build()
    )
