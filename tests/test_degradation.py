"""Tests for the rate-degradation families f and g."""

import pytest

from repro.markov.degradation import (
    RateFunction,
    constant,
    fig4_cases,
    geometric,
    inverse_k,
    linear_decay,
    power_law,
)


class TestFamilies:
    def test_constant(self):
        f = constant(15.0)
        assert f(1) == f(10) == 15.0

    def test_inverse_k(self):
        f = inverse_k(15.0)
        assert f(1) == 15.0
        assert f(3) == 5.0

    def test_power_law(self):
        f = power_law(16.0, 0.5)
        assert f(1) == 16.0
        assert f(4) == pytest.approx(8.0)

    def test_power_law_zero_alpha_is_constant(self):
        f = power_law(10.0, 0.0)
        assert f(7) == 10.0

    def test_geometric(self):
        f = geometric(8.0, 0.5)
        assert f(1) == 8.0
        assert f(4) == 1.0

    def test_geometric_ratio_validated(self):
        with pytest.raises(ValueError):
            geometric(1.0, 1.5)
        with pytest.raises(ValueError):
            geometric(1.0, 0.0)

    def test_linear_decay_floors(self):
        f = linear_decay(10.0, 3.0, floor=0.5)
        assert f(1) == 10.0
        assert f(2) == 7.0
        assert f(100) == 0.5

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            inverse_k(1.0)(0)

    def test_negative_rate_rejected(self):
        bad = RateFunction("bad", 1.0, lambda b, k: b - k)
        with pytest.raises(ValueError, match="negative"):
            bad(5)

    def test_rebased_keeps_shape(self):
        f = inverse_k(10.0).rebased(20.0)
        assert f(2) == 10.0
        assert f.name == "1/k"

    @pytest.mark.parametrize("factory", [
        lambda: constant(9.0),
        lambda: inverse_k(9.0),
        lambda: power_law(9.0, 0.3),
        lambda: geometric(9.0, 0.8),
        lambda: linear_decay(9.0, 0.5),
    ])
    def test_non_increasing(self, factory):
        f = factory()
        values = [f(k) for k in range(1, 30)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestFig4Cases:
    def test_four_panels(self):
        cases = fig4_cases(15.0, 20.0)
        assert set(cases) == {"a", "b", "c", "d"}

    def test_panel_shapes(self):
        cases = fig4_cases(15.0, 20.0)
        f_a, g_a = cases["a"]
        assert f_a(30) > 15.0 / 2      # very slow degradation
        f_b, g_b = cases["b"]
        assert f_b(3) == 5.0 and g_b(4) == 5.0
        f_c, g_c = cases["c"]
        assert f_c(10) == 15.0 and g_c(10) == 2.0   # only ξ degrades
        f_d, g_d = cases["d"]
        assert f_d(10) == 1.5 and g_d(10) == 20.0   # only μ degrades

    def test_base_rates_respected(self):
        for f, g in fig4_cases(7.0, 9.0).values():
            assert f(1) == 7.0
            assert g(1) == 9.0


class TestAdversarialInputs:
    """Hostile corners: extreme queue depths, boundary parameters, and
    the non-increasing law under randomly drawn bases (the shared
    strategy palette from repro.scenarios.generate)."""

    def test_huge_queue_depths_stay_finite_and_nonnegative(self):
        for fn in (constant(15.0), inverse_k(15.0),
                   power_law(15.0, 0.5), geometric(15.0, 0.9),
                   linear_decay(15.0, 0.1)):
            for k in (1, 10**3, 10**6, 10**9):
                rate = fn(k)
                assert rate >= 0.0
                assert rate <= fn.base

    def test_geometric_underflows_to_zero_not_error(self):
        fn = geometric(10.0, 0.5)
        assert fn(10_000) == 0.0  # denormal-range underflow is clamped
        assert fn(10_000) >= 0.0

    def test_geometric_ratio_one_is_constant(self):
        fn = geometric(8.0, 1.0)
        assert [fn(k) for k in (1, 5, 500)] == [8.0, 8.0, 8.0]

    def test_linear_decay_step_larger_than_base_floors_immediately(self):
        fn = linear_decay(2.0, 100.0, floor=0.25)
        assert fn(1) == 2.0
        assert fn(2) == 0.25
        assert fn(10**6) == 0.25

    def test_linear_decay_zero_floor_allowed(self):
        fn = linear_decay(1.0, 1.0, floor=0.0)
        assert fn(2) == 0.0  # zero rate is legal (queue stalls)

    def test_rebased_to_negative_base_is_caught_on_call(self):
        fn = inverse_k(5.0).rebased(-5.0)
        with pytest.raises(ValueError):
            fn(1)

    def test_k_zero_and_negative_rejected_by_every_family(self):
        for fn in (constant(1.0), inverse_k(1.0), power_law(1.0, 0.3),
                   geometric(1.0, 0.8), linear_decay(1.0, 0.1)):
            for bad in (0, -1, -10**9):
                with pytest.raises(ValueError):
                    fn(bad)

    def test_fig4_cases_rebase_consistently(self):
        for f, g in fig4_cases(3.0, 4.0).values():
            rf, rg = f.rebased(30.0), g.rebased(40.0)
            assert rf(1) == 30.0 and rg(1) == 40.0
            assert rf.name == f.name and rg.name == g.name


class TestNonIncreasingProperty:
    """The paper's standing assumption μ_1 ≥ μ_2 ≥ ... holds for every
    family at every drawn base rate — checked by property."""

    def test_all_families_non_increasing_over_drawn_bases(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings

        from repro.scenarios.generate import service_rates

        @settings(max_examples=40, deadline=None)
        @given(base=service_rates)
        def inner(base):
            for fn in (constant(base), inverse_k(base),
                       power_law(base, 0.05), power_law(base, 1.0),
                       geometric(base, 0.7), linear_decay(base, 0.5)):
                rates = [fn(k) for k in range(1, 40)]
                assert all(a >= b - 1e-12
                           for a, b in zip(rates, rates[1:])), fn.name

        inner()
