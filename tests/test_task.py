"""Unit tests for tasks and task instances."""

import pytest

from repro.workflow.task import (
    InstanceCounter,
    TaskInstance,
    TaskSpec,
    identity_compute,
)


class TestTaskSpec:
    def test_reads_writes_coerced_to_frozensets(self):
        t = TaskSpec("t", reads=["a", "b"], writes=["c"])
        assert t.reads == frozenset({"a", "b"})
        assert t.writes == frozenset({"c"})
        assert isinstance(t.reads, frozenset)

    def test_run_produces_declared_writes(self):
        t = TaskSpec(
            "t", reads=["a"], writes=["b"],
            compute=lambda d: {"b": d["a"] * 2},
        )
        assert t.run({"a": 21}) == {"b": 42}

    def test_run_missing_write_rejected(self):
        t = TaskSpec("t", reads=[], writes=["b"], compute=lambda d: {})
        with pytest.raises(ValueError, match="did not produce"):
            t.run({})

    def test_run_undeclared_write_rejected(self):
        t = TaskSpec(
            "t", reads=[], writes=[], compute=lambda d: {"oops": 1}
        )
        with pytest.raises(ValueError, match="undeclared"):
            t.run({})

    def test_default_compute_is_identity(self):
        t = TaskSpec("t", reads=["a"])
        assert t.run({"a": 5}) == {}
        assert t.is_pure_router

    def test_identity_compute_writes_nothing(self):
        assert identity_compute({"x": 1}) == {}

    def test_not_pure_router_with_writes(self):
        t = TaskSpec("t", writes=["w"], compute=lambda d: {"w": 0})
        assert not t.is_pure_router


class TestTaskInstance:
    def test_uid_format(self):
        inst = TaskInstance("wf1", "t3", 2)
        assert inst.uid == "wf1/t3#2"

    def test_str_hides_first_visit_superscript(self):
        assert str(TaskInstance("wf", "t3", 1)) == "t3"
        assert str(TaskInstance("wf", "t3", 2)) == "t3^2"

    def test_instances_hashable_and_comparable(self):
        a = TaskInstance("wf", "t1", 1)
        b = TaskInstance("wf", "t1", 2)
        assert a < b
        assert len({a, b, TaskInstance("wf", "t1", 1)}) == 2

    def test_default_number_is_one(self):
        assert TaskInstance("wf", "t").number == 1


class TestInstanceCounter:
    def test_numbers_increase_per_task(self):
        c = InstanceCounter("wf")
        assert c.next_instance("t1").number == 1
        assert c.next_instance("t1").number == 2
        assert c.next_instance("t2").number == 1
        assert c.visits("t1") == 2
        assert c.visits("t2") == 1

    def test_unvisited_task_has_zero_visits(self):
        assert InstanceCounter("wf").visits("t9") == 0

    def test_counter_binds_workflow_instance(self):
        c = InstanceCounter("wfX")
        inst = c.next_instance("t1")
        assert inst.workflow_instance == "wfX"
