"""Tests for the operational strategy comparison (Section III-D)."""

import pytest

from repro.core.concurrent import run_strategy
from repro.core.strategies import RecoveryStrategy
from repro.errors import RecoveryError
from repro.ids.attacks import AttackCampaign
from repro.workflow.spec import workflow


def producer_spec():
    """Writes the shared 'rate' object (attack target)."""
    return (
        workflow("producer")
        .task("set_rate", reads=["base"], writes=["rate"],
              compute=lambda d: {"rate": d["base"] * 2})
        .build()
    )


def consumer_spec(name: str):
    """Pending normal work that reads the shared 'rate'."""
    return (
        workflow(f"consumer_{name}")
        .task("use", reads=["rate"], writes=[f"bill_{name}"],
              compute=lambda d: {f"bill_{name}": d["rate"] + 1})
        .build()
    )


def incident(strategy):
    campaign = AttackCampaign().corrupt_task("set_rate", rate=9999)
    return run_strategy(
        strategy,
        attacked_specs=[producer_spec()],
        pending_specs=[consumer_spec("a"), consumer_spec("b")],
        initial_data={"base": 5, "rate": 0, "bill_a": 0, "bill_b": 0},
        campaign=campaign,
    )


class TestStrict:
    def test_delays_but_never_repairs(self):
        out = incident(RecoveryStrategy.STRICT)
        assert out.delayed_tasks == 2
        assert out.repaired_tasks == 0
        assert out.audit.ok, out.audit.problems
        assert out.final_snapshot["bill_a"] == 11  # 5*2 + 1


class TestRiskNormalOnly:
    def test_no_delay_but_repairs(self):
        out = incident(RecoveryStrategy.RISK_NORMAL_ONLY)
        assert out.delayed_tasks == 0
        assert out.repaired_tasks == 2  # both consumers read dirty rate
        assert out.audit.ok, out.audit.problems
        assert out.final_snapshot["bill_a"] == 11

    def test_repairs_increase_recovery_work(self):
        strict = incident(RecoveryStrategy.STRICT)
        risky = incident(RecoveryStrategy.RISK_NORMAL_ONLY)
        assert risky.recovery_operations > strict.recovery_operations

    def test_storage_bill_higher(self):
        strict = incident(RecoveryStrategy.STRICT)
        risky = incident(RecoveryStrategy.RISK_NORMAL_ONLY)
        assert risky.storage_versions >= strict.storage_versions


class TestConvergence:
    def test_both_strategies_reach_identical_state(self):
        """The strategies trade latency vs repair work — never
        correctness: their final states are identical."""
        strict = incident(RecoveryStrategy.STRICT)
        risky = incident(RecoveryStrategy.RISK_NORMAL_ONLY)
        assert strict.final_snapshot == risky.final_snapshot
        assert strict.audit.ok and risky.audit.ok

    def test_convergence_on_random_workloads(self):
        import random

        from repro.sim.workload import WorkloadConfig, WorkloadGenerator

        for seed in range(4):
            gen = WorkloadGenerator(
                WorkloadConfig(n_workflows=2, tasks_per_workflow=6,
                               branch_probability=0.4),
                random.Random(seed),
            )
            wl = gen.generate()
            campaign = gen.pick_attacks(wl, n_attacks=2)
            pending_gen = WorkloadGenerator(
                WorkloadConfig(n_workflows=1, tasks_per_workflow=4,
                               branch_probability=0.0,
                               n_shared_objects=gen.config.n_shared_objects),
                random.Random(seed + 100),
            )
            pending = pending_gen.generate()
            initial = dict(wl.initial_data)
            initial.update(pending.initial_data)
            outcomes = [
                run_strategy(s, wl.specs, pending.specs, initial,
                             campaign, seed=seed)
                for s in (RecoveryStrategy.STRICT,
                          RecoveryStrategy.RISK_NORMAL_ONLY)
            ]
            assert outcomes[0].audit.ok, outcomes[0].audit.problems
            assert outcomes[1].audit.ok, outcomes[1].audit.problems
            assert outcomes[0].final_snapshot == outcomes[1].final_snapshot


class TestRiskAll:
    def test_no_operational_executor(self):
        with pytest.raises(RecoveryError, match="RISK_ALL"):
            incident(RecoveryStrategy.RISK_ALL)
