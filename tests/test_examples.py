"""Smoke tests: every example script runs to completion.

Each example asserts its own claims internally (recovery outcomes,
strict correctness), so "runs without raising" is a meaningful check.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it does


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "motivating_example",
        "banking_fraud_recovery",
        "travel_booking",
        "capacity_planning",
        "simulation_vs_model",
        "attack_waves",
        "distributed_recovery",
    } <= names
