"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_model_defaults(self):
        args = build_parser().parse_args(["steady"])
        assert args.lam == 1.0 and args.mu1 == 15.0 and args.buffer == 15

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "nonsense"])


class TestDemo:
    @pytest.mark.parametrize("scenario", ["figure1", "banking", "travel",
                                          "supply-chain"])
    def test_demos_succeed(self, scenario, capsys):
        assert main(["demo", scenario]) == 0
        out = capsys.readouterr().out
        assert "strictly correct: True" in out

    def test_figure1_lists_dispositions(self, capsys):
        main(["demo", "figure1"])
        out = capsys.readouterr().out
        assert "abandoned" in out and "t3 t4" in out


class TestSteady:
    def test_prints_metrics(self, capsys):
        assert main(["steady", "--lam", "0.5", "--buffer", "6"]) == 0
        out = capsys.readouterr().out
        assert "P(normal)" in out
        assert "loss probability" in out

    def test_overloaded_system_visible(self, capsys):
        main(["steady", "--lam", "4", "--buffer", "6"])
        out = capsys.readouterr().out
        assert "P(scan)" in out


class TestTransient:
    def test_times_listed(self, capsys):
        assert main(["transient", "--buffer", "5",
                     "--t", "0.5", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "E[lost alerts]" in out
        assert "0.5" in out and "2" in out


class TestDesign:
    def test_feasible_design_exit_zero(self, capsys):
        code = main(["design", "--lam", "1", "--epsilon", "0.01",
                     "--peak", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "feasible" in out
        assert "peak rate" in out

    def test_infeasible_design_exit_one(self, capsys):
        code = main(["design", "--lam", "2", "--epsilon", "1e-6",
                     "--mu1", "2", "--xi1", "3", "--max-buffer", "8"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INFEASIBLE" in out


class TestSimulate:
    def test_simulation_table(self, capsys):
        assert main(["simulate", "--buffer", "4",
                     "--horizon", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out and "simulated" in out
        assert "alerts:" in out


class TestSensitivity:
    def test_prints_elasticities(self, capsys):
        assert main(["sensitivity", "--buffer", "8"]) == 0
        out = capsys.readouterr().out
        assert "elasticity of loss" in out
        assert "lambda" in out and "xi1" in out


class TestStgDot:
    def test_dot_output(self, capsys):
        assert main(["stg-dot", "--buffer", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph stg {")
        assert '"N"' in out


class TestWorkflowDot:
    def test_renders_document_file(self, capsys, tmp_path):
        from repro.workflow.serialize import TaskDocument, WorkflowDocument

        doc = WorkflowDocument(
            workflow_id="demo",
            tasks=(
                TaskDocument("a", writes={"x": "1"}),
                TaskDocument("b", writes={"y": "x + 1"}),
            ),
            edges=(("a", "b"),),
        )
        path = tmp_path / "wf.json"
        path.write_text(doc.to_json())
        assert main(["workflow-dot", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "demo" {')
        assert '"a" -> "b";' in out

    def test_invalid_document_raises(self, tmp_path):
        from repro.errors import WorkflowSpecError

        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(WorkflowSpecError):
            main(["workflow-dot", str(path)])
