"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_model_defaults(self):
        args = build_parser().parse_args(["steady"])
        assert args.lam == 1.0 and args.mu1 == 15.0 and args.buffer == 15

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "nonsense"])


class TestDemo:
    @pytest.mark.parametrize("scenario", ["figure1", "banking", "travel",
                                          "supply-chain", "web-app"])
    def test_demos_succeed(self, scenario, capsys):
        assert main(["demo", scenario]) == 0
        out = capsys.readouterr().out
        assert "strictly correct: True" in out

    def test_figure1_lists_dispositions(self, capsys):
        main(["demo", "figure1"])
        out = capsys.readouterr().out
        assert "abandoned" in out and "t3 t4" in out


class TestSteady:
    def test_prints_metrics(self, capsys):
        assert main(["steady", "--lam", "0.5", "--buffer", "6"]) == 0
        out = capsys.readouterr().out
        assert "P(normal)" in out
        assert "loss probability" in out

    def test_overloaded_system_visible(self, capsys):
        main(["steady", "--lam", "4", "--buffer", "6"])
        out = capsys.readouterr().out
        assert "P(scan)" in out


class TestTransient:
    def test_times_listed(self, capsys):
        assert main(["transient", "--buffer", "5",
                     "--t", "0.5", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "E[lost alerts]" in out
        assert "0.5" in out and "2" in out


class TestDesign:
    def test_feasible_design_exit_zero(self, capsys):
        code = main(["design", "--lam", "1", "--epsilon", "0.01",
                     "--peak", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "feasible" in out
        assert "peak rate" in out

    def test_infeasible_design_exit_one(self, capsys):
        code = main(["design", "--lam", "2", "--epsilon", "1e-6",
                     "--mu1", "2", "--xi1", "3", "--max-buffer", "8"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INFEASIBLE" in out


class TestSimulate:
    def test_simulation_table(self, capsys):
        assert main(["simulate", "--buffer", "4",
                     "--horizon", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out and "simulated" in out
        assert "alerts:" in out


class TestSimulateBatch:
    def test_batch_table_and_stderr(self, capsys):
        assert main(["simulate", "--buffer", "4", "--horizon", "50",
                     "--seed", "3", "--replications", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 replications" in out
        assert "loss probability stderr" in out
        assert "batch wall time" in out

    def test_workers_one_spawns_no_pool(self, capsys, monkeypatch):
        """--workers 1 must run inline: creating a process pool at all
        is a bug, not merely a slow path."""
        import repro.sim.batch as batch_mod

        class PoolForbidden:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "ProcessPoolExecutor created despite --workers 1"
                )

        monkeypatch.setattr(batch_mod, "ProcessPoolExecutor",
                            PoolForbidden)
        assert main(["simulate", "--buffer", "4", "--horizon", "50",
                     "--replications", "3", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 replications" in out

    def test_single_replication_uses_single_path(self, capsys):
        """--replications 1 (the default) keeps the original
        single-trajectory output, stderr line absent."""
        assert main(["simulate", "--buffer", "4", "--horizon", "50",
                     "--replications", "1"]) == 0
        out = capsys.readouterr().out
        assert "stderr" not in out

    @pytest.mark.parametrize("argv", [
        ["simulate", "--replications", "0"],
        ["simulate", "--replications", "-2"],
        ["simulate", "--workers", "0"],
        ["simulate", "--workers", "-1"],
        ["simulate", "--replications", "two"],
        ["simulate", "--workers", "1.5"],
    ])
    def test_invalid_fanout_exits_two(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "must be a positive integer" in err or "invalid" in err

    def test_backend_choice_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["steady", "--backend", "bogus"])
        assert exc.value.code == 2

    def test_explicit_backends_agree(self, capsys):
        assert main(["steady", "--buffer", "6",
                     "--backend", "dense"]) == 0
        dense_out = capsys.readouterr().out
        assert main(["steady", "--buffer", "6",
                     "--backend", "sparse"]) == 0
        sparse_out = capsys.readouterr().out
        assert dense_out == sparse_out


class TestSensitivity:
    def test_prints_elasticities(self, capsys):
        assert main(["sensitivity", "--buffer", "8"]) == 0
        out = capsys.readouterr().out
        assert "elasticity of loss" in out
        assert "lambda" in out and "xi1" in out


class TestStgDot:
    def test_dot_output(self, capsys):
        assert main(["stg-dot", "--buffer", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph stg {")
        assert '"N"' in out


class TestObs:
    def test_figure1_report(self, capsys):
        assert main(["obs"]) == 0  # figure1 is the default scenario
        out = capsys.readouterr().out
        assert "Observed figure1 incident" in out
        assert "dwell[SCAN] total" in out
        assert "alert queue high-water" in out
        assert "alert loss fraction" in out
        assert "Incident span tree:" in out
        assert "- incident" in out
        assert "undo" in out and "redo" in out

    def test_gillespie_comparison_table(self, capsys):
        assert main(["obs", "--scenario", "gillespie", "--lam", "4",
                     "--mu1", "6", "--xi1", "8", "--buffer", "3",
                     "--horizon", "200", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Empirical vs CTMC" in out
        assert "loss probability" in out
        assert "P(normal)" in out

    def test_fullstack_scenario(self, capsys):
        assert main(["obs", "--scenario", "fullstack", "--lam", "2",
                     "--horizon", "10", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "Observed full-stack run" in out
        assert "heals" in out

    def test_prometheus_dump(self, capsys):
        assert main(["obs", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_alerts_lost_total counter" in out
        assert "repro_alert_queue_depth_high_water" in out
        assert "repro_state_dwell_time_bucket" in out

    def test_events_to_stdout(self, capsys):
        import json

        assert main(["obs", "--events", "-"]) == 0
        out = capsys.readouterr().out
        jsonl = out.split("Event log (JSONL):\n", 1)[1].strip()
        events = [json.loads(line) for line in jsonl.splitlines()]
        assert events[0]["event"] == "AlertEnqueued"
        assert any(e["event"] == "HealFinished" for e in events)

    def test_events_to_file(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["obs", "--events", str(path)]) == 0
        assert "events written to" in capsys.readouterr().out
        assert path.read_text().count("\n") > 10


class TestDomainErrorExit:
    def test_blocked_analyzer_exits_3_with_clean_message(self, capsys):
        from repro.cli import EXIT_DOMAIN_ERROR

        code = main(["obs", "--alert-buffer", "8", "--buffer", "1",
                     "--false-alarms", "3"])
        captured = capsys.readouterr()
        assert code == EXIT_DOMAIN_ERROR == 3
        assert captured.err.startswith("error: analyzer blocked")
        assert "Traceback" not in captured.err

    def test_any_subcommand_maps_recovery_error(self, capsys,
                                                monkeypatch):
        """The handler sits in main(), so every subcommand gets the
        same clean exit — simulate a domain failure inside demo."""
        import repro.scenarios.figure1 as figure1
        from repro.errors import RecoveryError

        def boom(*args, **kwargs):
            raise RecoveryError("undo failed mid-heal")

        monkeypatch.setattr(figure1, "build_figure1", boom)
        code = main(["demo", "figure1"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err == "error: undo failed mid-heal\n"
        assert "Traceback" not in captured.err

    def test_simulation_error_also_mapped(self, capsys):
        code = main(["obs", "--scenario", "gillespie", "--horizon", "0"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err == "error: horizon must be > 0, got 0.0\n"
        assert "Traceback" not in captured.err

    def test_scheduling_error_also_mapped(self, capsys, monkeypatch):
        import repro.scenarios.figure1 as figure1
        from repro.errors import SchedulingError

        def boom(*args, **kwargs):
            raise SchedulingError("no admissible order")

        monkeypatch.setattr(figure1, "build_figure1", boom)
        code = main(["demo", "figure1"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err == "error: no admissible order\n"


class TestWorkflowDot:
    def test_renders_document_file(self, capsys, tmp_path):
        from repro.workflow.serialize import TaskDocument, WorkflowDocument

        doc = WorkflowDocument(
            workflow_id="demo",
            tasks=(
                TaskDocument("a", writes={"x": "1"}),
                TaskDocument("b", writes={"y": "x + 1"}),
            ),
            edges=(("a", "b"),),
        )
        path = tmp_path / "wf.json"
        path.write_text(doc.to_json())
        assert main(["workflow-dot", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "demo" {')
        assert '"a" -> "b";' in out

    def test_invalid_document_exits_three(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["workflow-dot", str(path)]) == 3
        assert "workflow_id" in capsys.readouterr().err


class TestObsFlightVerbs:
    """The flight-recorder CLI: record | replay | explain | trace."""

    def test_record_to_file_then_replay(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(["obs", "record", "--log", str(path)]) == 0
        assert "flight-log records written to" in capsys.readouterr().out
        first = path.read_text().splitlines()[0]
        import json

        header = json.loads(first)
        assert header["record"] == "header" and header["schema"] == 1

        assert main(["obs", "replay", "--log", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Replayed flight log" in out
        assert "undo set (definite): " in out
        assert "wf1/t1#1" in out
        assert "realized schedule: " in out
        assert "Replayed pipeline metrics" in out

    def test_record_to_stdout(self, capsys):
        assert main(["obs", "record"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith('{"label":"figure1"')

    def test_record_gillespie_rejected(self, capsys):
        code = main(["obs", "record", "--scenario", "gillespie"])
        captured = capsys.readouterr()
        assert code == 3
        assert "no recovery pipeline to record" in captured.err

    def test_explain_fresh_run(self, capsys):
        assert main(["obs", "explain", "wf1/t6#1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("wf1/t6#1")
        assert "undo[T1.4]: stale-read candidate" in out

    def test_explain_without_target_exits_three(self, capsys):
        code = main(["obs", "explain"])
        captured = capsys.readouterr()
        assert code == 3
        assert "needs a task instance uid" in captured.err

    def test_explain_unknown_uid_exits_three(self, capsys):
        code = main(["obs", "explain", "nope/x#9"])
        captured = capsys.readouterr()
        assert code == 3
        assert "never mentions" in captured.err

    def test_trace_to_file_is_valid_chrome_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["obs", "trace", "--out", str(out_path)]) == 0
        assert "Chrome trace written to" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        for entry in doc["traceEvents"]:
            assert "ph" in entry and "ts" in entry and "pid" in entry

    def test_trace_to_stdout(self, capsys):
        import json

        assert main(["obs", "trace"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(e["name"] == "run" for e in doc["traceEvents"])

    def test_report_remains_the_default_action(self, capsys):
        assert main(["obs", "--scenario", "figure1"]) == 0
        assert "Observed figure1 incident" in capsys.readouterr().out


class TestLint:
    """The static-verification CLI: lint spec | plan | code."""

    def _broken_doc(self, tmp_path):
        import json

        path = tmp_path / "broken.json"
        path.write_text(json.dumps({
            "workflow_id": "broken",
            "tasks": [{"id": "t1", "writes": {"x": "1"}},
                      {"id": "t2", "writes": {"y": "2"}}],
            "edges": [["t1", "ghost"]],
        }), encoding="utf-8")
        return path

    def test_code_pass_on_clean_tree(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", "code", str(clean)]) == 0
        assert "0 error" in capsys.readouterr().out

    def test_code_pass_exits_two_on_error(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n",
                         encoding="utf-8")
        assert main(["lint", "code", str(dirty)]) == 2
        out = capsys.readouterr().out
        assert "DET001" in out and "1 error" in out

    def test_shipped_codebase_lints_clean(self, capsys):
        assert main(["lint", "code", "src/repro"]) == 0

    def test_spec_pass_scenario_no_errors(self, capsys):
        assert main(["lint", "spec", "--scenario", "figure1"]) == 0
        assert "0 error" in capsys.readouterr().out

    def test_spec_pass_all_scenarios_is_default(self, capsys):
        assert main(["lint", "spec"]) == main(
            ["lint", "spec", "--all-scenarios"]
        )

    def test_spec_pass_broken_document_exits_two(self, capsys, tmp_path):
        code = main(["lint", "spec", str(self._broken_doc(tmp_path))])
        assert code == 2
        assert "SPEC001" in capsys.readouterr().out

    def test_json_format_parses(self, capsys, tmp_path):
        import json

        main(["lint", "spec", str(self._broken_doc(tmp_path)),
              "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["error"] >= 1
        assert data["findings"][0]["rule"] == "SPEC001"

    def test_sarif_out_writes_valid_file(self, capsys, tmp_path):
        import json

        out = tmp_path / "lint.sarif"
        main(["lint", "spec", "--scenario", "banking",
              "--format", "sarif", "--out", str(out)])
        assert "written to" in capsys.readouterr().out
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["tool"]["driver"]["name"]

    def test_plan_pass_on_recorded_flight_log(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(["obs", "record", "--log", str(path)]) == 0
        capsys.readouterr()
        assert main(["lint", "plan", str(path)]) == 0
        assert "0 error" in capsys.readouterr().out

    def test_plan_pass_flags_tampered_log(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(["obs", "record", "--log", str(path)]) == 0
        capsys.readouterr()
        kept = [line for line in path.read_text().splitlines()
                if '"T3.3"' not in line]
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(kept) + "\n", encoding="utf-8")
        assert main(["lint", "plan", str(tampered)]) == 2
        assert "PLAN021" in capsys.readouterr().out

    def test_missing_document_exits_two_cleanly(self, capsys, tmp_path):
        code = main(["lint", "spec", str(tmp_path / "nope.json")])
        assert code != 0
        assert capsys.readouterr().err


class TestFleet:
    def test_calibrated_fleet_exits_zero(self, capsys):
        assert main(["fleet", "--tenants", "4", "--duration", "25",
                     "--workers", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out and "OK" in out
        assert "audits strictly correct" in out
        assert "detect->heal p50" in out

    def test_unknown_archetype_exits_three(self, capsys):
        from repro.cli import EXIT_DOMAIN_ERROR

        code = main(["fleet", "--mix", "banking", "nonsense"])
        err = capsys.readouterr().err
        assert code == EXIT_DOMAIN_ERROR == 3
        assert err.startswith("error:")
        assert "unknown workload archetype" in err
        assert "Traceback" not in err

    def test_invalid_tenant_count_exits_two(self, capsys):
        # argparse owns plain type errors: exit 2, not 3
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--tenants", "0"])
        assert exc.value.code == 2

    def test_worker_count_does_not_change_the_report(self, capsys):
        assert main(["fleet", "--tenants", "3", "--duration", "20",
                     "--seed", "5"]) == 0
        serial = capsys.readouterr().out
        assert main(["fleet", "--tenants", "3", "--duration", "20",
                     "--seed", "5", "--workers", "4"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda text: [line for line in text.splitlines()
                              if "worker(s)" not in line]
        assert strip(parallel) == strip(serial)

    def test_breached_fleet_exits_one(self, capsys):
        # one grant per 20-time-unit round starves the tenant queue:
        # alerts overflow, the loss SLO breaches, exit goes to 1
        code = main(["fleet", "--tenants", "1", "--mix", "banking",
                     "--duration", "200", "--tick", "20",
                     "--central-capacity", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "BREACH" in out
        assert "Worst tenants" in out


class TestFuzz:
    def test_budget_parsing(self):
        args = build_parser().parse_args(["fuzz", "--budget", "90"])
        assert args.budget == 90.0
        args = build_parser().parse_args(["fuzz", "--budget", "60s"])
        assert args.budget == 60.0
        args = build_parser().parse_args(["fuzz", "--budget", "2m"])
        assert args.budget == 120.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--budget", "soon"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--budget", "-5s"])

    def test_clean_run_exits_zero(self, capsys, tmp_path):
        code = main(["fuzz", "--campaigns", "10", "--seed", "0",
                     "--corpus-dir", str(tmp_path / "corpus")])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: campaigns=10" in out
        assert "violations=0" in out

    def test_inject_mode_catches_and_writes_corpus(self, capsys,
                                                   tmp_path):
        corpus = tmp_path / "corpus"
        code = main(["fuzz", "--campaigns", "3", "--inject",
                     "drop-undo", "--corpus-dir", str(corpus)])
        out = capsys.readouterr().out
        assert code == 0  # caught everywhere, nothing missed
        assert "missed=0" in out
        assert "counterexample" in out
        files = sorted(corpus.glob("ce-drop-undo-*.json"))
        assert files
        # Those files replay cleanly without the injected fault.
        code = main(["fuzz", "--replay"] + [str(p) for p in files])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 with violations" in out

    def test_replay_committed_corpus(self, capsys):
        import glob
        import os

        paths = sorted(glob.glob(os.path.join(
            os.path.dirname(__file__), "corpus", "*.json"
        )))
        assert paths
        assert main(["fuzz", "--replay"] + paths) == 0
        out = capsys.readouterr().out
        assert f"replayed {len(paths)} corpus file(s)" in out

    def test_unknown_inject_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--inject", "meltdown"])
        assert exc.value.code == 2


class TestProfile:
    def test_fullstack_profile_table(self, capsys, tmp_path):
        flame = tmp_path / "prof.folded"
        chrome = tmp_path / "prof.trace.json"
        blob = tmp_path / "prof.json"
        assert main(["profile", "--horizon", "20", "--seed", "7",
                     "--flame", str(flame), "--chrome", str(chrome),
                     "--json", str(blob)]) == 0
        out = capsys.readouterr().out
        assert "attribution" in out
        assert "closure_recomputations" in out
        assert "structure digest" in out
        import json as _json
        folded = flame.read_text().splitlines()
        assert any(line.startswith("repro;analyze;analyze.closure ")
                   for line in folded)
        trace = _json.loads(chrome.read_text())
        assert trace["traceEvents"]
        payload = _json.loads(blob.read_text())
        assert payload["scenario"] == "fullstack"
        assert payload["attribution"] >= 0.95

    def test_fleet_profile_snapshot_json(self, capsys, tmp_path):
        blob = tmp_path / "fleet.json"
        assert main(["profile", "--scenario", "fleet", "--tenants", "3",
                     "--duration", "10", "--seed", "3",
                     "--json", str(blob)]) == 0
        out = capsys.readouterr().out
        assert "attribution" in out
        import json as _json
        payload = _json.loads(blob.read_text())
        assert set(payload) == {"fleet", "tenants", "ticks"}
        assert payload["fleet"]["attribution"] >= 0.95


class TestLintRacesCLI:
    """The race pass and the merged `lint code --all` surface."""

    RACY = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._v = 0\n"
        "    def inc(self):\n"
        "        self._v += 1\n"
    )

    def test_races_pass_on_shipped_tree_clean(self, capsys):
        assert main(["lint", "races", "src/repro"]) == 0
        assert "0 error" in capsys.readouterr().out

    def test_races_pass_exits_two_on_unguarded_write(self, capsys,
                                                     tmp_path):
        racy = tmp_path / "racy.py"
        racy.write_text(self.RACY, encoding="utf-8")
        assert main(["lint", "races", str(racy)]) == 2
        out = capsys.readouterr().out
        assert "RACE001" in out

    def test_code_all_merges_both_passes(self, capsys, tmp_path):
        both = tmp_path / "both.py"
        both.write_text("import time\nt = time.time()\n" + self.RACY,
                        encoding="utf-8")
        assert main(["lint", "code", str(both), "--all"]) == 2
        out = capsys.readouterr().out
        assert "DET001" in out and "RACE001" in out

    def test_code_all_sarif_has_one_run_per_analyzer(self, capsys,
                                                     tmp_path):
        import json as _json

        both = tmp_path / "both.py"
        both.write_text("import time\nt = time.time()\n" + self.RACY,
                        encoding="utf-8")
        out_file = tmp_path / "lint.sarif"
        assert main(["lint", "code", str(both), "--all",
                     "--format", "sarif", "--out", str(out_file)]) == 2
        sarif = _json.loads(out_file.read_text())
        names = [run["tool"]["driver"]["name"] for run in sarif["runs"]]
        assert names == ["repro-lint-determinism", "repro-lint-races"]
        det_rules, race_rules = (
            {r["ruleId"] for r in run["results"]}
            for run in sarif["runs"])
        assert "DET001" in det_rules
        assert "RACE001" in race_rules

    def test_code_all_sarif_clean_tree_exits_zero(self, capsys, tmp_path):
        import json as _json

        out_file = tmp_path / "lint.sarif"
        assert main(["lint", "code", "src/repro", "--all",
                     "--format", "sarif", "--out", str(out_file)]) == 0
        sarif = _json.loads(out_file.read_text())
        assert len(sarif["runs"]) == 2
        assert all(run["results"] == [] for run in sarif["runs"])


class TestFleetSanitize:
    def test_sanitized_fleet_exits_zero_and_reports(self, capsys):
        assert main(["fleet", "--tenants", "3", "--duration", "6",
                     "--workers", "2", "--seed", "3",
                     "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "0 violation(s)" in out

    def test_violations_exit_two(self, capsys, monkeypatch):
        # Force a violation through the sanitizer the CLI builds.
        import threading

        from repro.lint import sanitizer as san_mod

        class Tripped(san_mod.RaceSanitizer):
            def instrument_fleet(self, plane):
                super().instrument_fleet(plane)
                for name in ("t1", "t2"):
                    t = threading.Thread(
                        target=lambda: self.note_access("x", write=True),
                        name=name)
                    t.start()
                    t.join()

        monkeypatch.setattr(san_mod, "RaceSanitizer", Tripped)
        code = main(["fleet", "--tenants", "2", "--duration", "3",
                     "--workers", "2", "--sanitize"])
        out = capsys.readouterr().out
        assert code == 2
        assert "RACE101" in out
