"""Unit tests for the observability exporters."""

import json

from repro.obs.events import AlertEnqueued, AlertLost, HealStarted
from repro.obs.export import events_to_jsonl, metrics_table, render_prometheus
from repro.obs.metrics import MetricsRegistry, PipelineMetrics


class TestEventsToJsonl:
    def test_one_compact_object_per_line(self):
        text = events_to_jsonl([
            AlertEnqueued(0.5, uid="w/t1#1", queue_depth=1),
            AlertLost(1.0, uid="w/t2#1", queue_depth=8),
        ])
        lines = text.splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"event": "AlertEnqueued", "time": 0.5,
                         "uid": "w/t1#1", "queue_depth": 1}
        assert " " not in lines[0]  # compact separators

    def test_tuple_fields_serialize_as_lists(self):
        (line,) = events_to_jsonl(
            [HealStarted(2.0, malicious=("a", "b"))]
        ).splitlines()
        assert json.loads(line)["malicious"] == ["a", "b"]

    def test_empty_stream(self):
        assert events_to_jsonl([]) == ""


class TestRenderPrometheus:
    def test_counter_and_gauge_exposition(self):
        r = MetricsRegistry()
        r.counter("repro_demo_total", help="demo counter").inc(3)
        g = r.gauge("repro_depth", help="demo gauge")
        g.set(5)
        g.set(2)
        text = render_prometheus(r)
        assert "# HELP repro_demo_total demo counter" in text
        assert "# TYPE repro_demo_total counter" in text
        assert "repro_demo_total 3" in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2" in text
        assert "repro_depth_high_water 5" in text

    def test_histogram_buckets_are_cumulative(self):
        r = MetricsRegistry()
        h = r.histogram("repro_cost", buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 99.0):
            h.observe(v)
        text = render_prometheus(r)
        assert 'repro_cost_bucket{le="1"} 2' in text
        assert 'repro_cost_bucket{le="5"} 3' in text
        assert 'repro_cost_bucket{le="+Inf"} 4' in text
        assert "repro_cost_sum 103.2" in text
        assert "repro_cost_count 4" in text

    def test_labeled_family_shares_one_header(self):
        r = MetricsRegistry()
        r.histogram("repro_dwell", buckets=(1.0,),
                    labels={"state": "SCAN"}).observe(0.5)
        r.histogram("repro_dwell", buckets=(1.0,),
                    labels={"state": "NORMAL"}).observe(0.5)
        text = render_prometheus(r)
        assert text.count("# TYPE repro_dwell histogram") == 1
        assert 'repro_dwell_bucket{state="NORMAL",le="1"} 1' in text
        assert 'repro_dwell_bucket{state="SCAN",le="1"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestMetricsTable:
    def test_table_has_summary_rows(self):
        m = PipelineMetrics()
        m.start(0.0, state="NORMAL")
        m(AlertLost(0.5, uid="a", queue_depth=1))
        m.finalize(1.0)
        text = metrics_table(m, title="demo metrics").render()
        assert "demo metrics" in text
        assert "alerts lost" in text
        assert "dwell[NORMAL] total" in text


class TestExpositionEdgeCases:
    def test_non_finite_samples_use_exposition_spellings(self):
        r = MetricsRegistry()
        r.gauge("repro_pos").set(float("inf"))
        r.gauge("repro_neg").set(float("-inf"))
        r.gauge("repro_nan").set(float("nan"))
        text = render_prometheus(r)
        assert "repro_pos +Inf" in text
        assert "repro_pos_high_water +Inf" in text
        assert "repro_neg -Inf" in text
        assert "repro_nan NaN" in text
        # int(inf) raises OverflowError; the renderer must not.
        assert "OverflowError" not in text

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("repro_weird_total",
                  labels={"path": 'a\\b"c\nd'}).inc()
        text = render_prometheus(r)
        assert 'path="a\\\\b\\"c\\nd"' in text
        assert "\n\n" not in text  # the raw newline never leaks

    def test_help_text_escaped(self):
        r = MetricsRegistry()
        r.counter("repro_h_total", help="line1\nline2 \\ slash").inc()
        text = render_prometheus(r)
        assert "# HELP repro_h_total line1\\nline2 \\\\ slash" in text


class TestChromeTrace:
    def _spans(self):
        from repro.obs.tracing import Span

        root = Span("run", 0.0, {"label": "demo"})
        root.end = 2.0
        child = Span("heal", 0.5)
        child.end = 1.25
        root.children.append(child)
        dangling = Span("crashed", 1.5)  # never finished
        return [root], dangling

    def test_finished_spans_are_complete_events(self):
        from repro.obs.export import spans_to_chrome_trace

        roots, _ = self._spans()
        doc = json.loads(spans_to_chrome_trace(roots))
        assert doc["displayTimeUnit"] == "ms"
        run, heal = doc["traceEvents"]
        assert run == {"name": "run", "ph": "X", "ts": 0.0,
                       "dur": 2000000.0, "pid": 1, "tid": 1,
                       "args": {"label": "demo"}}
        assert heal["ph"] == "X" and heal["ts"] == 500000.0
        assert heal["dur"] == 750000.0

    def test_unfinished_span_is_begin_event(self):
        from repro.obs.export import spans_to_chrome_trace

        roots, dangling = self._spans()
        roots[0].children.append(dangling)
        (entry,) = [e for e in
                    json.loads(spans_to_chrome_trace(roots))["traceEvents"]
                    if e["name"] == "crashed"]
        assert entry["ph"] == "B" and "dur" not in entry

    def test_events_render_as_instants_on_track_zero(self):
        from repro.obs.export import spans_to_chrome_trace

        roots, _ = self._spans()
        doc = json.loads(spans_to_chrome_trace(
            roots, [AlertEnqueued(0.75, uid="w/t1#1", queue_depth=2)]
        ))
        (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "AlertEnqueued"
        assert instant["tid"] == 0 and instant["s"] == "t"
        assert instant["ts"] == 750000.0
        assert instant["args"] == {"uid": "w/t1#1", "queue_depth": "2"}
