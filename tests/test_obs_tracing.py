"""Unit tests for the span tracer and its injectable clocks."""

import pytest

from repro.errors import ReproError
from repro.obs.tracing import ManualClock, Span, Tracer, render_span_tree


class TestManualClock:
    def test_starts_and_advances(self):
        clock = ManualClock(10.0)
        assert clock() == 10.0 and clock.now == 10.0
        assert clock.advance(2.5) == 12.5
        assert clock() == 12.5

    def test_set_absolute(self):
        clock = ManualClock()
        clock.set(4.0)
        assert clock.now == 4.0

    def test_rejects_backward_motion(self):
        clock = ManualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(4.0)


class TestTracer:
    def test_wall_clock_default(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        (root,) = tracer.roots
        assert root.finished and root.duration >= 0.0

    def test_nesting_builds_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("incident") as root:
            clock.advance(1.0)
            with tracer.span("scan", step=1):
                clock.advance(2.0)
            with tracer.span("heal"):
                clock.advance(3.0)
        assert tracer.roots == [root]
        assert [c.name for c in root.children] == ["scan", "heal"]
        assert root.duration == pytest.approx(6.0)
        assert root.children[0].duration == pytest.approx(2.0)
        assert root.children[1].duration == pytest.approx(3.0)
        assert root.children[0].attributes == {"step": 1}

    def test_current_tracks_innermost(self):
        tracer = Tracer(ManualClock())
        assert tracer.current is None
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        assert tracer.current is inner
        tracer.end_span(inner)
        assert tracer.current is outer

    def test_span_closed_on_exception(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.finished and root.duration == pytest.approx(1.0)
        assert tracer.current is None

    def test_end_without_open_span_raises(self):
        with pytest.raises(ReproError):
            Tracer(ManualClock()).end_span()

    def test_out_of_order_end_raises_and_preserves_stack(self):
        tracer = Tracer(ManualClock())
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        with pytest.raises(ReproError, match="nesting"):
            tracer.end_span(outer)
        assert tracer.current is inner  # stack unchanged by the error

    def test_set_attribute(self):
        span = Span("s", 0.0)
        span.set_attribute("tasks", 7)
        assert span.attributes == {"tasks": 7}


class TestRenderSpanTree:
    def test_renders_durations_depth_and_attrs(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("incident", scenario="figure1"):
            with tracer.span("scan"):
                clock.advance(0.5)
        text = render_span_tree(tracer.roots)
        lines = text.splitlines()
        assert lines[0] == "- incident (0.5)  [scenario=figure1]"
        assert lines[1] == "  - scan (0.5)"

    def test_unfinished_span_rendered_open(self):
        tracer = Tracer(ManualClock())
        tracer.start_span("pending")
        assert "(open)" in render_span_tree(tracer.roots)


class TestEndSpanHardening:
    def test_double_end_raises_obs_error(self):
        from repro.errors import ObsError

        tracer = Tracer(ManualClock())
        span = tracer.start_span("once")
        tracer.end_span(span)
        with pytest.raises(ObsError, match="already finished"):
            tracer.end_span(span)

    def test_finished_span_error_even_with_other_spans_open(self):
        from repro.errors import ObsError

        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            inner = tracer.start_span("inner")
            clock.advance(0.25)
            tracer.end_span(inner)
            with pytest.raises(ObsError, match="already finished"):
                tracer.end_span(inner)
        # The erroneous call must not have closed "outer" in inner's
        # stead: its duration covers the full block.
        (outer,) = tracer.roots
        assert outer.finished

    def test_lifecycle_errors_are_obs_errors(self):
        from repro.errors import ObsError, ReproError

        assert issubclass(ObsError, ReproError)
        with pytest.raises(ObsError):
            Tracer(ManualClock()).end_span()
