"""Tests for the operational healer — candidate resolution, settle-pass
semantics, and the paper's Figure 1 outcome."""

import pytest

from repro.core.actions import Action, ActionKind
from repro.core.healer import Healer
from repro.errors import RecoveryError
from repro.scenarios.figure1 import Figure1Scenario, build_figure1
from repro.workflow.data import TOMBSTONE, DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import RecordKind, SystemLog
from repro.workflow.spec import workflow


class TestFigure1:
    """The paper's own worked example, end to end."""

    def test_exact_recovery_sets(self, figure1):
        report = figure1.heal_now()
        T = Figure1Scenario.task_ids
        assert T(report.undone) == figure1.EXPECTED_UNDONE
        assert T(report.redone) == figure1.EXPECTED_REDONE
        assert T(report.abandoned) == figure1.EXPECTED_ABANDONED
        assert T(report.new_executions) == figure1.EXPECTED_NEW
        assert T(report.kept) == figure1.EXPECTED_KEPT

    def test_strictly_correct(self, figure1):
        figure1.heal_now()
        assert figure1.audit.ok, figure1.audit.problems

    def test_matches_clean_oracle(self, figure1, figure1_clean):
        figure1.heal_now()
        healed = figure1.store.snapshot()
        oracle = figure1_clean.store.snapshot()
        for name, value in oracle.items():
            assert healed[name] == value, name
        # The only extra healed object is the tombstoned u (created by
        # the abandoned t3).
        extras = set(healed) - set(oracle)
        assert all(healed[n] is TOMBSTONE for n in extras)

    def test_undo_before_redo_in_actions(self, figure1):
        report = figure1.heal_now()
        seq = list(report.actions)
        for uid in set(report.undone) & set(report.redone):
            assert seq.index(Action.undo(uid)) < seq.index(Action.redo(uid))

    def test_redo_records_never_read_dirty_versions(self, figure1):
        """Rule T3.4's semantic audit: no recovery execution observed a
        corrupted version."""
        report = figure1.heal_now()
        dirty = set(report.dirty_versions)
        for record in figure1.log.records(RecordKind.REDO):
            for name, ver in record.reads.items():
                assert (name, ver) not in dirty

    def test_redos_follow_log_precedence(self, figure1):
        """Rule T3.1: among redone instances, redo order = log order."""
        report = figure1.heal_now()
        redo_positions = {
            uid: i for i, uid in enumerate(report.redone)
        }
        seqs = {
            uid: figure1.log.get(uid).seq for uid in report.redone
        }
        ordered = sorted(report.redone, key=seqs.__getitem__)
        assert list(report.redone) == ordered
        assert redo_positions  # non-empty sanity

    def test_undo_records_committed(self, figure1):
        report = figure1.heal_now()
        undo_uids = {
            r.uid for r in figure1.log.records(RecordKind.UNDO)
        }
        assert set(report.undone) == undo_uids

    def test_kept_tasks_have_no_recovery_records(self, figure1):
        report = figure1.heal_now()
        recovery_uids = {
            r.uid
            for r in figure1.log.records()
            if r.kind != RecordKind.NORMAL
        }
        assert not (set(report.kept) & recovery_uids)

    def test_report_counts(self, figure1):
        report = figure1.heal_now()
        assert report.touched == 7 + 5 + 1
        assert report.preserved_work == 2
        assert "7 undone" in report.summary()


class TestNoOpHeal:
    def test_healthy_system_untouched(self, figure1_clean):
        store_before = figure1_clean.store.snapshot()
        healer = Healer(
            figure1_clean.store,
            figure1_clean.log,
            figure1_clean.specs_by_instance,
        )
        report = healer.heal([])
        assert report.undone == () and report.redone == ()
        assert len(report.kept) == len(
            figure1_clean.log.normal_records()
        )
        assert figure1_clean.store.snapshot() == store_before

    def test_alert_about_unlogged_instance_is_noop(self, figure1_clean):
        healer = Healer(
            figure1_clean.store,
            figure1_clean.log,
            figure1_clean.specs_by_instance,
        )
        report = healer.heal(["wf1/ghost#7"])
        assert report.malicious == frozenset()
        assert report.undone == ()


class TestSelfReadingTask:
    """A malicious task that reads the object it writes: its redo must
    see the pre-attack value (Phase A's reason to exist)."""

    def test_accumulator_restored(self):
        spec = (
            workflow("acc")
            .task("bump", reads=["total"], writes=["total"],
                  compute=lambda d: {"total": d["total"] + 10})
            .task("done", reads=["total"], writes=["out"],
                  compute=lambda d: {"out": d["total"] * 2})
            .chain("bump", "done")
            .build()
        )
        store, log = DataStore({"total": 5, "out": 0}), SystemLog()
        engine = Engine(store, log)
        run = engine.new_run(spec, "r")

        from repro.ids.attacks import AttackCampaign

        campaign = AttackCampaign().corrupt_task("bump", total=999)
        engine.run_to_completion(run, tamper=campaign)
        assert store.read("total") == 999

        healer = Healer(store, log, engine.specs_by_instance)
        report = healer.heal(["r/bump#1"])
        assert store.read("total") == 15  # 5 + 10, from the clean value
        assert store.read("out") == 30
        assert set(report.redone) == {"r/bump#1", "r/done#1"}


class TestForgedRuns:
    def test_forged_run_fully_abandoned(self):
        spec = (
            workflow("w")
            .task("a", reads=["x"], writes=["x"],
                  compute=lambda d: {"x": d["x"] + 1})
            .build()
        )
        store, log = DataStore({"x": 0}), SystemLog()
        engine = Engine(store, log)
        engine.run_to_completion(engine.new_run(spec, "legit"))
        engine.run_to_completion(engine.new_run(spec, "evil"))
        assert store.read("x") == 2

        healer = Healer(store, log, engine.specs_by_instance)
        report = healer.heal([], forged_runs=["evil"])
        assert store.read("x") == 1
        assert set(report.abandoned) == {"evil/a#1"}
        assert report.redone == ()
        assert set(report.kept) == {"legit/a#1"}

    def test_object_created_only_by_forged_run_tombstoned(self):
        spec = (
            workflow("w")
            .task("a", reads=[], writes=["loot"],
                  compute=lambda d: {"loot": 1_000_000})
            .build()
        )
        store, log = DataStore(), SystemLog()
        engine = Engine(store, log)
        engine.run_to_completion(engine.new_run(spec, "evil"))
        healer = Healer(store, log, engine.specs_by_instance)
        healer.heal([], forged_runs=["evil"])
        assert store.read("loot") is TOMBSTONE


class TestStaleReadCascade:
    """Theorem 1 condition 3 across workflows: a reader of a redone
    task's output is repaired even when its own workflow is clean."""

    def test_cross_workflow_repair(self):
        producer = (
            workflow("prod")
            .task("make", reads=["seed"], writes=["shared"],
                  compute=lambda d: {"shared": d["seed"] * 10})
            .build()
        )
        consumer = (
            workflow("cons")
            .task("use", reads=["shared"], writes=["result"],
                  compute=lambda d: {"result": d["shared"] + 1})
            .build()
        )
        store = DataStore({"seed": 3, "shared": 0, "result": 0})
        log = SystemLog()
        engine = Engine(store, log)

        from repro.ids.attacks import AttackCampaign

        campaign = AttackCampaign().corrupt_task("make", shared=777)
        engine.run_to_completion(
            engine.new_run(producer, "p"), tamper=campaign
        )
        engine.run_to_completion(engine.new_run(consumer, "c"))
        assert store.read("result") == 778

        healer = Healer(store, log, engine.specs_by_instance)
        report = healer.heal(["p/make#1"])
        assert store.read("shared") == 30
        assert store.read("result") == 31
        assert "c/use#1" in report.redone


class TestErrors:
    def test_missing_spec_rejected(self, figure1):
        healer = Healer(figure1.store, figure1.log, {})
        with pytest.raises(RecoveryError, match="spec"):
            healer.heal([figure1.malicious_uid])

    def test_reader_of_unrecoverable_object_reported(self):
        """An object created only by a forged run, read by a legit
        workflow: the healed history has no value for it, and the heal
        must fail loudly rather than invent one."""
        creator = (
            workflow("creator")
            .task("make", reads=[], writes=["artifact"],
                  compute=lambda d: {"artifact": 99})
            .build()
        )
        reader = (
            workflow("reader")
            .task("use", reads=["artifact"], writes=["derived"],
                  compute=lambda d: {"derived": d["artifact"] + 1})
            .build()
        )
        store, log = DataStore({"derived": 0}), SystemLog()
        engine = Engine(store, log)
        engine.run_to_completion(engine.new_run(creator, "evil"))
        engine.run_to_completion(engine.new_run(reader, "legit"))
        healer = Healer(store, log, engine.specs_by_instance)
        with pytest.raises(RecoveryError,
                           match="created only by undone tasks"):
            healer.heal([], forged_runs=["evil"])
