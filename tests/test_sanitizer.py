"""Tests for the dynamic Eraser-style race sanitizer.

The verdicts here depend only on locksets, never on an unlucky
interleaving: the canary threads run strictly back to back and the
removed-lock mutations are still caught every time.  The static twin
of the registry canary lives in test_lint_races.py.
"""

import threading

import pytest

from repro.fleet.control import FleetConfig, FleetControlPlane
from repro.lint.sanitizer import RaceSanitizer, TrackedLock
from repro.obs import locks as locks_mod
from repro.obs.events import AlertEnqueued, EventBus
from repro.obs.locks import HierarchyLock, enable_checks, make_lock, make_rlock
from repro.obs.metrics import MetricsRegistry


def run_in_thread(fn, name="t"):
    """Run ``fn`` on a fresh named thread and join it — sequential
    execution, distinct thread identity."""
    out, errs = [], []

    def body():
        try:
            out.append(fn())
        except BaseException as exc:  # pragma: no cover - failure path
            errs.append(exc)

    t = threading.Thread(target=body, name=name)
    t.start()
    t.join()
    if errs:
        raise errs[0]
    return out[0]


def rules_of(san):
    return sorted(d.rule for d in san.violations)


class _NopLock:
    """A lock-shaped object that synchronizes nothing — the mutation
    operator for the removed-lock canaries."""

    def acquire(self, blocking=True, timeout=-1):
        return True

    def release(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


class TestEraserStateMachine:
    def test_single_thread_stays_exclusive(self):
        san = RaceSanitizer()
        for _ in range(5):
            san.note_access("v", write=True)
        assert san.violations == ()

    def test_cross_thread_write_without_lock_flagged(self):
        san = RaceSanitizer()
        run_in_thread(lambda: san.note_access("v", write=True), "t1")
        run_in_thread(lambda: san.note_access("v", write=True), "t2")
        assert rules_of(san) == ["RACE101"]
        (diag,) = san.violations
        assert "t2" in diag.message and "t1" in diag.message

    def test_cross_thread_reads_only_not_flagged(self):
        san = RaceSanitizer()
        run_in_thread(lambda: san.note_access("v", write=False), "t1")
        run_in_thread(lambda: san.note_access("v", write=False), "t2")
        assert san.violations == ()

    def test_common_lock_keeps_candidate_set_nonempty(self):
        san = RaceSanitizer()
        lock = san.wrap_lock("L")

        def access():
            with lock:
                san.note_access("v", write=True)

        run_in_thread(access, "t1")
        run_in_thread(access, "t2")
        run_in_thread(access, "t3")
        assert san.violations == ()

    def test_disjoint_locks_empty_the_candidate_set(self):
        # C(v) initializes at the first cross-thread access ({B}) and
        # is intersected on the next ({A} & {B} = {}) — three accesses
        # drain it, per the Eraser refinement rule.
        san = RaceSanitizer()
        a, b = san.wrap_lock("A"), san.wrap_lock("B")

        def with_lock(lock):
            with lock:
                san.note_access("v", write=True)

        run_in_thread(lambda: with_lock(a), "t1")
        run_in_thread(lambda: with_lock(b), "t2")
        run_in_thread(lambda: with_lock(a), "t3")
        assert rules_of(san) == ["RACE101"]

    def test_violation_reported_once_per_var(self):
        san = RaceSanitizer()
        for i in range(4):
            run_in_thread(lambda: san.note_access("v", write=True), f"t{i}")
        assert rules_of(san) == ["RACE101"]

    def test_verdict_is_deterministic(self):
        # Same program, three runs: identical rule sequence each time.
        outcomes = []
        for _ in range(3):
            san = RaceSanitizer()
            run_in_thread(lambda: san.note_access("v", write=True), "t1")
            run_in_thread(lambda: san.note_access("v", write=True), "t2")
            outcomes.append(rules_of(san))
        assert outcomes == [["RACE101"]] * 3


class TestBarrier:
    def test_barrier_fences_cross_phase_access(self):
        # Phase-confined hand-off: writer thread, join (modelled by the
        # barrier), then another thread — ordered, not racy.
        san = RaceSanitizer()
        run_in_thread(lambda: san.note_access("v", write=True), "worker")
        san.barrier("phase-join")
        run_in_thread(lambda: san.note_access("v", write=True), "main")
        assert san.violations == ()

    def test_same_phase_race_still_caught(self):
        san = RaceSanitizer()
        san.barrier("start")
        run_in_thread(lambda: san.note_access("v", write=True), "w1")
        run_in_thread(lambda: san.note_access("v", write=True), "w2")
        assert rules_of(san) == ["RACE101"]


class TestLockOrderRuntime:
    def test_inverted_acquisition_order_flagged(self):
        san = RaceSanitizer()
        a, b = san.wrap_lock("A"), san.wrap_lock("B")

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        run_in_thread(ab, "t1")
        run_in_thread(ba, "t2")
        assert "RACE102" in rules_of(san)

    def test_consistent_order_clean(self):
        san = RaceSanitizer()
        a, b = san.wrap_lock("A"), san.wrap_lock("B")

        def ab():
            with a:
                with b:
                    pass

        run_in_thread(ab, "t1")
        run_in_thread(ab, "t2")
        assert san.violations == ()

    def test_inversion_reported_once_per_pair(self):
        san = RaceSanitizer()
        a, b = san.wrap_lock("A"), san.wrap_lock("B")

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        for i in range(3):
            run_in_thread(ab, f"f{i}")
            run_in_thread(ba, f"r{i}")
        assert rules_of(san).count("RACE102") == 1


class TestInstrumentedMetrics:
    def test_locked_registry_clean_across_threads(self):
        san = RaceSanitizer()
        reg = MetricsRegistry()
        san.instrument_metrics(reg)
        run_in_thread(lambda: reg.counter("hits").inc(), "t1")
        run_in_thread(lambda: reg.counter("hits").inc(), "t2")
        run_in_thread(lambda: reg.gauge("depth").set(3.0), "t3")
        assert san.violations == ()

    def test_registry_lock_deletion_caught(self):
        # THE dynamic mutation canary: after instrumentation, replace
        # the registry lock with a no-op.  _get_or_create's
        # check-then-insert then runs with an empty lockset and the
        # second thread's create must trip RACE101 on the metrics map.
        san = RaceSanitizer()
        reg = MetricsRegistry()
        san.instrument_metrics(reg)
        reg._lock = _NopLock()  # the mutation
        run_in_thread(lambda: reg.counter("a"), "t1")
        run_in_thread(lambda: reg.counter("b"), "t2")
        assert rules_of(san) == ["RACE101"]
        (diag,) = san.violations
        assert diag.where == "registry._metrics"

    def test_metric_lock_deletion_caught(self):
        san = RaceSanitizer()
        reg = MetricsRegistry()
        c = reg.counter("hits")
        san.instrument_metrics(reg)
        c._lock = _NopLock()  # the mutation
        run_in_thread(c.inc, "t1")
        run_in_thread(c.inc, "t2")
        assert "RACE101" in rules_of(san)
        assert any(d.where == "metric[hits]" for d in san.violations)

    def test_canary_detection_is_deterministic(self):
        for _ in range(3):
            san = RaceSanitizer()
            reg = MetricsRegistry()
            san.instrument_metrics(reg)
            reg._lock = _NopLock()
            run_in_thread(lambda: reg.counter("a"), "t1")
            run_in_thread(lambda: reg.counter("b"), "t2")
            assert rules_of(san) == ["RACE101"]


class TestInstrumentedBus:
    def test_locked_bus_clean(self):
        san = RaceSanitizer()
        bus = EventBus()
        san.instrument_bus(bus)
        run_in_thread(lambda: bus.subscribe(lambda e: None), "t1")
        run_in_thread(lambda: bus.subscribe(lambda e: None), "t2")
        run_in_thread(
            lambda: bus.publish(AlertEnqueued(0.0, uid="u", queue_depth=1)),
            "t3")
        assert san.violations == ()

    def test_bus_lock_deletion_caught(self):
        san = RaceSanitizer()
        bus = EventBus()
        san.instrument_bus(bus)
        bus._lock = _NopLock()  # the mutation
        run_in_thread(lambda: bus.subscribe(lambda e: None), "t1")
        run_in_thread(lambda: bus.subscribe(lambda e: None), "t2")
        assert rules_of(san) == ["RACE101"]


class TestSanitizedFleet:
    def test_fleet_run_is_violation_free(self):
        san = RaceSanitizer()
        config = FleetConfig(tenants=4, mix=("web", "banking"),
                             duration=6.0, tick=1.0, workers=4, seed=11)
        plane = FleetControlPlane(config, bus=EventBus(), sanitizer=san)
        report = plane.run()
        assert report.ticks >= 6
        stats = san.summary()
        assert stats["accesses"] > 0
        assert stats["barriers"] > 0
        assert san.violations == (), san.report().render_text()

    def test_fleet_results_unchanged_by_sanitizer(self):
        config = FleetConfig(tenants=3, mix=("web",), duration=4.0,
                             tick=1.0, workers=2, seed=7)
        bare = FleetControlPlane(config).run()
        sanitized = FleetControlPlane(
            config, sanitizer=RaceSanitizer()).run()
        assert bare.heals == sanitized.heals
        assert bare.scans == sanitized.scans
        assert bare.alerts_lost == sanitized.alerts_lost


class TestLockHierarchy:
    @pytest.fixture(autouse=True)
    def restore_flag(self):
        yield
        enable_checks(False)

    def test_plain_locks_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_ORDER", raising=False)
        enable_checks(False)
        assert not isinstance(make_lock("registry"), HierarchyLock)
        assert not isinstance(make_rlock("server"), HierarchyLock)

    def test_unknown_tier_rejected_even_unchecked(self):
        with pytest.raises(ValueError):
            make_lock("nonsense")

    def test_in_order_acquisition_allowed(self):
        enable_checks(True)
        server, registry, metric = (
            make_rlock("server"), make_lock("registry"), make_lock("metric"))
        assert isinstance(server, HierarchyLock)

        def nest():
            with server:
                with registry:
                    with metric:
                        pass

        run_in_thread(nest)

    def test_out_of_order_acquisition_asserts(self):
        enable_checks(True)
        registry, server = make_lock("registry"), make_rlock("server")

        def invert():
            with registry:
                with server:
                    pass

        with pytest.raises(AssertionError, match="hierarchy violation"):
            run_in_thread(invert)

    def test_reentrant_reacquisition_allowed(self):
        enable_checks(True)
        server = make_rlock("server")

        def reenter():
            with server:
                with server:
                    pass

        run_in_thread(reenter)

    def test_env_var_enables_checks(self, monkeypatch):
        enable_checks(False)
        monkeypatch.setenv("REPRO_LOCK_ORDER", "1")
        assert locks_mod.checks_enabled()
        assert isinstance(make_lock("bus"), HierarchyLock)

    def test_real_tree_obeys_hierarchy(self):
        # Build the instrumented stack with assertions on: registry
        # and metric locks must nest under the server RLock cleanly.
        enable_checks(True)
        try:
            from repro.obs.server import TelemetryServer

            reg = MetricsRegistry()
            reg.counter("x").inc()
            server = TelemetryServer(registry=reg)

            def render():
                with server.lock:
                    server.render_metrics()

            run_in_thread(render)
        finally:
            enable_checks(False)


class TestTrackedLock:
    def test_proxies_real_lock(self):
        san = RaceSanitizer()
        inner = threading.Lock()
        lock = san.wrap_lock("L", inner=inner)
        with lock:
            assert inner.locked()
        assert not inner.locked()

    def test_report_is_lint_report(self):
        san = RaceSanitizer()
        run_in_thread(lambda: san.note_access("v", write=True), "t1")
        run_in_thread(lambda: san.note_access("v", write=True), "t2")
        report = san.report()
        assert report.exit_code == 2
        assert "RACE101" in report.render_text()
