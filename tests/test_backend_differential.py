"""Differential tests locking the scale layer down.

Two contracts, two styles of proof:

1. **Sparse vs dense solvers** — on the Figure 4–6 parameter grids the
   sparse (scipy CSR) backend must agree with the dense reference to
   1e-8 for every solver family: steady state, transient
   (uniformization, matrix exponential, cumulative times), and
   first-passage (hitting times, CDF).  Dense is the oracle; sparse is
   the optimisation under test.
2. **Parallel vs sequential replication** — a Gillespie batch run with
   ``workers=K`` must reproduce ``workers=1`` *bit-exactly* (same seed
   stream, same trajectories, same statistics).  Parallelism buys wall
   time, never different answers.

Plus the explicit-backend failure mode: ``backend="sparse"`` without
scipy must raise :class:`~repro.errors.ModelError` with an install
hint — never silently fall back to dense.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.markov.backend as backend_mod
from repro.errors import ModelError
from repro.markov.backend import (
    SPARSE_AUTO_THRESHOLD,
    resolve_backend,
    sparse_available,
)
from repro.markov.degradation import fig4_cases
from repro.markov.metrics import loss_probability
from repro.markov.passage import (
    expected_hitting_times,
    hitting_time_cdf,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG
from repro.markov.transient import (
    cumulative_times,
    transient_probabilities,
    transient_probabilities_expm,
)
from repro.sim.batch import run_gillespie_batch, spawn_seeds

TOL = 1e-8

# -- the Figure 4–6 parameter grids -----------------------------------------
#
# Figure 4 sweeps the four degradation cases over buffer sizes; Figure 5
# sweeps the arrival rate λ; Figure 6 varies μ1/ξ1.  The grid below is a
# representative cross-section: every degradation case, small and
# mid-sized buffers, light and heavy load.

FIG4_GRID = [
    (case, lam, buf)
    for case in ("a", "b", "c", "d")
    for lam, buf in ((1.0, 6), (2.0, 10))
]

FIG56_GRID = [
    # (λ, μ1, ξ1, buffer) — Figure 5's λ sweep and Figure 6's rate sweep
    (0.5, 15.0, 20.0, 8),
    (2.0, 15.0, 20.0, 8),
    (8.0, 15.0, 20.0, 8),
    (2.0, 5.0, 20.0, 10),
    (2.0, 15.0, 5.0, 10),
]


def _fig4_stg(case: str, lam: float, buf: int) -> RecoverySTG:
    scan, recovery = fig4_cases(15.0, 20.0)[case]
    return RecoverySTG(
        arrival_rate=lam, scan=scan, recovery=recovery,
        recovery_buffer=buf,
    )


def _fig56_stg(lam: float, mu1: float, xi1: float, buf: int) -> RecoverySTG:
    return RecoverySTG.paper_default(
        arrival_rate=lam, mu1=mu1, xi1=xi1, buffer_size=buf
    )


ALL_STGS = (
    [pytest.param(_fig4_stg(c, lam, b), id=f"fig4-{c}-lam{lam:g}-buf{b}")
     for c, lam, b in FIG4_GRID]
    + [pytest.param(_fig56_stg(*p), id=f"fig56-lam{p[0]:g}-mu{p[1]:g}"
                                       f"-xi{p[2]:g}-buf{p[3]}")
       for p in FIG56_GRID]
)

needs_scipy = pytest.mark.skipif(
    not sparse_available(), reason="scipy not available"
)


# ---------------------------------------------------------------------------
# 1. Sparse vs dense
# ---------------------------------------------------------------------------


@needs_scipy
@pytest.mark.parametrize("stg", ALL_STGS)
def test_steady_state_backends_agree(stg: RecoverySTG) -> None:
    chain = stg.ctmc()
    pi_dense = steady_state(chain, backend="dense")
    pi_sparse = steady_state(chain, backend="sparse")
    assert np.abs(pi_dense - pi_sparse).max() < TOL
    # The headline metric agrees too.
    assert loss_probability(stg, pi_sparse) == pytest.approx(
        loss_probability(stg, pi_dense), abs=TOL
    )


@needs_scipy
@pytest.mark.parametrize("stg", ALL_STGS)
def test_transient_backends_agree(stg: RecoverySTG) -> None:
    chain = stg.ctmc()
    pi0 = stg.initial_distribution()
    for t in (0.1, 1.0, 5.0):
        uni_d = transient_probabilities(chain, pi0, t, backend="dense")
        uni_s = transient_probabilities(chain, pi0, t, backend="sparse")
        assert np.abs(uni_d - uni_s).max() < TOL
        expm_d = transient_probabilities_expm(chain, pi0, t,
                                              backend="dense")
        expm_s = transient_probabilities_expm(chain, pi0, t,
                                              backend="sparse")
        assert np.abs(expm_d - expm_s).max() < TOL
        cum_d = cumulative_times(chain, pi0, t, backend="dense")
        cum_s = cumulative_times(chain, pi0, t, backend="sparse")
        assert np.abs(cum_d - cum_s).max() < TOL


@needs_scipy
@pytest.mark.parametrize("stg", ALL_STGS)
def test_passage_backends_agree(stg: RecoverySTG) -> None:
    chain = stg.ctmc()
    targets = stg.loss_states()
    h_dense = expected_hitting_times(chain, targets, backend="dense")
    h_sparse = expected_hitting_times(chain, targets, backend="sparse")
    finite = np.isfinite(h_dense)
    assert (finite == np.isfinite(h_sparse)).all()
    # Hitting times scale with the chain; compare relatively.
    scale = max(1.0, np.abs(h_dense[finite]).max())
    assert (np.abs(h_dense[finite] - h_sparse[finite]).max()
            / scale) < TOL
    times = [0.5, 2.0, 10.0]
    cdf_d = hitting_time_cdf(chain, targets, stg.normal_state, times,
                             backend="dense")
    cdf_s = hitting_time_cdf(chain, targets, stg.normal_state, times,
                             backend="sparse")
    assert np.abs(cdf_d - cdf_s).max() < TOL


@needs_scipy
def test_auto_backend_matches_forced_backends() -> None:
    """Auto selection changes the code path, not the answer."""
    small = RecoverySTG.paper_default(buffer_size=4)          # dense side
    large = RecoverySTG.paper_default(buffer_size=25)         # sparse side
    assert large.ctmc().n_states >= SPARSE_AUTO_THRESHOLD
    for stg in (small, large):
        chain = stg.ctmc()
        pi_auto = steady_state(chain)
        pi_dense = steady_state(chain, backend="dense")
        assert np.abs(pi_auto - pi_dense).max() < TOL


# ---------------------------------------------------------------------------
# 2. Parallel vs sequential replication (bit-exact)
# ---------------------------------------------------------------------------


def test_parallel_batch_reproduces_sequential_exactly() -> None:
    stg = RecoverySTG.paper_default(arrival_rate=2.0, buffer_size=5)
    serial = run_gillespie_batch(
        stg, horizon=40.0, replications=6, workers=1, seed=123
    )
    parallel = run_gillespie_batch(
        stg, horizon=40.0, replications=6, workers=3, seed=123
    )
    assert serial.seeds == parallel.seeds
    for a, b in zip(serial.results, parallel.results):
        # Bit-exact: identical occupancy maps, jump counts, arrivals.
        assert a.occupancy == b.occupancy
        assert a.jumps == b.jumps
        assert a.arrivals == b.arrivals
        assert a.arrivals_lost == b.arrivals_lost
        assert a.loss_time_fraction == b.loss_time_fraction
    assert serial.loss_time_fraction == parallel.loss_time_fraction
    assert serial.loss_time_stderr == parallel.loss_time_stderr


def test_seed_stream_is_a_prefix_under_growth() -> None:
    """Replication i's seed depends on (base, i) only."""
    assert spawn_seeds(7, 3) == spawn_seeds(7, 8)[:3]
    assert spawn_seeds(7, 8) != spawn_seeds(8, 8)


# ---------------------------------------------------------------------------
# 3. Explicit sparse without scipy fails loudly
# ---------------------------------------------------------------------------


def _broken_import():
    raise ImportError("scipy deliberately unavailable for this test")


def test_sparse_backend_without_scipy_raises(monkeypatch) -> None:
    monkeypatch.setattr(backend_mod, "_import_sparse", _broken_import)
    monkeypatch.setattr(
        backend_mod, "_import_sparse_linalg", _broken_import
    )
    chain = RecoverySTG.paper_default(buffer_size=4).ctmc()
    with pytest.raises(ModelError, match="pip install scipy"):
        steady_state(chain, backend="sparse")
    with pytest.raises(ModelError, match="pip install scipy"):
        resolve_backend(chain.n_states, "sparse")


def test_auto_backend_without_scipy_stays_dense(monkeypatch) -> None:
    """Auto degrades gracefully — dense is correct, just slower."""
    monkeypatch.setattr(backend_mod, "_import_sparse", _broken_import)
    monkeypatch.setattr(
        backend_mod, "_import_sparse_linalg", _broken_import
    )
    assert not sparse_available()
    assert resolve_backend(10_000, None) == "dense"


def test_unknown_backend_name_raises() -> None:
    chain = RecoverySTG.paper_default(buffer_size=3).ctmc()
    with pytest.raises(ModelError, match="unknown backend"):
        steady_state(chain, backend="bogus")
