"""Tests for loss probability, ε-convergence and expected queue lengths."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.markov.metrics import (
    category_probabilities,
    epsilon_convergence,
    expected_alerts,
    expected_lost_alerts,
    expected_recovery_units,
    loss_probability,
    state_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State, StateCategory


def point_mass(stg, state):
    return stg.initial_distribution(state)


class TestLossProbability:
    def test_mass_on_right_edge_counted(self, small_stg):
        A = small_stg.alert_buffer
        pi = point_mass(small_stg, State(A, 2))
        assert loss_probability(small_stg, pi) == 1.0

    def test_mass_elsewhere_not_counted(self, small_stg):
        pi = point_mass(small_stg, State(0, 0))
        assert loss_probability(small_stg, pi) == 0.0

    def test_partial_mass(self, small_stg):
        A = small_stg.alert_buffer
        chain = small_stg.ctmc()
        pi = np.zeros(len(small_stg.states))
        pi[chain.index_of(State(A, 0))] = 0.25
        pi[chain.index_of(State(0, 0))] = 0.75
        assert loss_probability(small_stg, pi) == pytest.approx(0.25)

    def test_shape_checked(self, small_stg):
        with pytest.raises(ModelError):
            loss_probability(small_stg, np.array([1.0]))

    def test_overloaded_system_loses(self):
        stg = RecoverySTG.paper_default(arrival_rate=4.0)
        pi = steady_state(stg.ctmc())
        assert loss_probability(stg, pi) > 0.5


class TestCategoryProbabilities:
    def test_sums_to_one(self, paper_stg):
        pi = steady_state(paper_stg.ctmc())
        cats = category_probabilities(paper_stg, pi)
        assert sum(cats.values()) == pytest.approx(1.0)
        assert set(cats) == set(StateCategory)

    def test_point_mass_classified(self, small_stg):
        cats = category_probabilities(
            small_stg, point_mass(small_stg, State(0, 3))
        )
        assert cats[StateCategory.RECOVERY] == 1.0


class TestExpectations:
    def test_point_mass_expectations(self, small_stg):
        pi = point_mass(small_stg, State(3, 2))
        assert expected_alerts(small_stg, pi) == 3.0
        assert expected_recovery_units(small_stg, pi) == 2.0

    def test_expectations_grow_with_load(self):
        lo = RecoverySTG.paper_default(arrival_rate=0.5)
        hi = RecoverySTG.paper_default(arrival_rate=3.0)
        e_lo = expected_recovery_units(lo, steady_state(lo.ctmc()))
        e_hi = expected_recovery_units(hi, steady_state(hi.ctmc()))
        assert e_hi > e_lo


class TestEpsilonConvergence:
    def test_matches_steady_state_loss(self, paper_stg):
        pi = steady_state(paper_stg.ctmc())
        assert epsilon_convergence(paper_stg) == pytest.approx(
            loss_probability(paper_stg, pi)
        )

    def test_accepts_explicit_distribution(self, small_stg):
        A = small_stg.alert_buffer
        pi = point_mass(small_stg, State(A, 0))
        assert epsilon_convergence(small_stg, pi) == 1.0

    def test_good_system_small_epsilon(self, paper_stg):
        assert epsilon_convergence(paper_stg) < 0.01

    def test_state_probability(self, small_stg):
        pi = point_mass(small_stg, State(1, 1))
        assert state_probability(small_stg, pi, State(1, 1)) == 1.0
        assert state_probability(small_stg, pi, State(0, 0)) == 0.0


class TestExpectedLostAlerts:
    def test_good_system_loses_nothing(self, paper_stg):
        assert expected_lost_alerts(paper_stg, 4.0) < 1e-4

    def test_poor_system_losses_grow_with_time(self):
        stg = RecoverySTG.paper_default(mu1=2.0, xi1=3.0)
        early = expected_lost_alerts(stg, 10.0)
        late = expected_lost_alerts(stg, 100.0)
        assert late > early
        # At steady state the poor system loses ≈0.9 alerts per unit
        # time (λ=1, loss ≈ 0.9); over the 100-unit transient it loses
        # a substantial fraction of the ~100 arrivals.
        assert late > 30.0

    def test_matches_loss_rate_times_edge_time(self, small_stg):
        """Consistency with the definition λ · (time on right edge)."""
        from repro.markov.transient import cumulative_times

        chain = small_stg.ctmc()
        pi0 = small_stg.initial_distribution()
        t = 7.5
        lt = cumulative_times(chain, pi0, t)
        edge_time = sum(
            lt[chain.index_of(s)] for s in small_stg.loss_states()
        )
        assert expected_lost_alerts(small_stg, t) == pytest.approx(
            small_stg.arrival_rate * edge_time
        )

    def test_gillespie_agrees_with_expected_losses(self):
        """The expected loss count matches the simulated loss count."""
        import random

        from repro.sim.ctmc_sim import GillespieSimulator

        stg = RecoverySTG.paper_default(arrival_rate=2.0, buffer_size=4)
        horizon = 5_000.0
        analytic = 0.0
        # At this horizon the chain is essentially stationary; use the
        # stationary loss rate to avoid a giant cumulative solve.
        pi = steady_state(stg.ctmc())
        analytic = stg.arrival_rate * loss_probability(stg, pi) * horizon
        sim = GillespieSimulator(stg, random.Random(8))
        result = sim.run(horizon=horizon)
        assert result.arrivals_lost == pytest.approx(analytic, rel=0.15)
