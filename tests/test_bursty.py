"""Tests for the MMPP bursty-arrival extension."""

import random

import pytest

from repro.errors import ModelError, SimulationError
from repro.markov.steady_state import steady_state
from repro.markov.metrics import loss_probability
from repro.markov.stg import RecoverySTG
from repro.sim.bursty import BurstModel, BurstySimulator
from repro.sim.ctmc_sim import GillespieSimulator


class TestBurstModel:
    def test_mean_rate(self):
        model = BurstModel(quiet_rate=0.0, burst_rate=10.0,
                           onset_rate=1.0, decay_rate=9.0)
        assert model.burst_fraction == pytest.approx(0.1)
        assert model.mean_rate == pytest.approx(1.0)

    def test_with_mean_hits_target(self):
        for mean in (0.5, 1.0, 2.0):
            for ptm in (2.0, 5.0, 10.0):
                model = BurstModel.with_mean(
                    mean, peak_to_mean=ptm, mean_burst_length=2.0
                )
                assert model.mean_rate == pytest.approx(mean)
                assert model.burst_rate == pytest.approx(mean * ptm)

    def test_validation(self):
        with pytest.raises(ModelError):
            BurstModel(-1, 1, 1, 1)
        with pytest.raises(ModelError):
            BurstModel(0, 1, 0, 1)  # never any arrival
        with pytest.raises(ModelError):
            BurstModel.with_mean(1.0, peak_to_mean=1.0,
                                 mean_burst_length=1.0)
        with pytest.raises(ModelError):
            BurstModel.with_mean(1.0, peak_to_mean=2.0,
                                 mean_burst_length=1.0, quiet_rate=3.0)


class TestBurstySimulator:
    def test_occupancy_sums_to_one(self):
        stg = RecoverySTG.paper_default(buffer_size=4)
        model = BurstModel.with_mean(1.0, peak_to_mean=5.0,
                                     mean_burst_length=2.0)
        result = BurstySimulator(stg, model, random.Random(1)).run(500.0)
        assert sum(result.occupancy.values()) == pytest.approx(1.0)

    def test_mean_arrival_rate_realized(self):
        # MMPP arrival counts are over-dispersed; average several
        # trajectories to beat the burst-level variance.
        stg = RecoverySTG.paper_default(buffer_size=10)
        model = BurstModel.with_mean(1.0, peak_to_mean=4.0,
                                     mean_burst_length=3.0)
        rates = []
        for seed in range(4):
            result = BurstySimulator(
                stg, model, random.Random(seed)
            ).run(20_000.0)
            rates.append(result.arrivals / result.horizon)
        realized = sum(rates) / len(rates)
        assert realized == pytest.approx(model.mean_rate, rel=0.05)

    def test_degenerate_model_matches_poisson(self):
        """A 'burst' model whose two phases share one rate is Poisson;
        its loss must match the analytic steady state."""
        stg = RecoverySTG.paper_default(arrival_rate=2.0, buffer_size=5)
        model = BurstModel(quiet_rate=2.0, burst_rate=2.0,
                           onset_rate=1.0, decay_rate=1.0)
        result = BurstySimulator(stg, model, random.Random(3)).run(20_000.0)
        analytic = loss_probability(stg, steady_state(stg.ctmc()))
        assert result.loss_time_fraction == pytest.approx(analytic,
                                                          abs=0.02)

    def test_bursty_worse_than_poisson_at_same_mean(self):
        """The headline claim behind Section VI's peak-rate sizing."""
        mean = 1.0
        stg = RecoverySTG.paper_default(arrival_rate=mean, buffer_size=6)
        poisson = GillespieSimulator(stg, random.Random(4)).run(30_000.0)
        model = BurstModel.with_mean(mean, peak_to_mean=8.0,
                                     mean_burst_length=4.0)
        bursty = BurstySimulator(stg, model, random.Random(4)).run(30_000.0)
        assert bursty.loss_time_fraction > poisson.loss_time_fraction
        assert bursty.alert_loss_fraction > poisson.alert_loss_fraction

    def test_zero_horizon_rejected(self):
        stg = RecoverySTG.paper_default(buffer_size=3)
        model = BurstModel.with_mean(1.0, 2.0, 1.0)
        with pytest.raises(SimulationError):
            BurstySimulator(stg, model).run(0.0)


class TestAdversarialModels:
    """Degenerate and hostile corners of the MMPP parameter space."""

    def test_permanent_burst_is_poisson_at_peak(self):
        """onset > 0, decay = 0: one transition into a burst that never
        ends — the long-run process is Poisson at the peak rate."""
        model = BurstModel(quiet_rate=0.0, burst_rate=3.0,
                           onset_rate=5.0, decay_rate=0.0)
        assert model.burst_fraction == pytest.approx(1.0)
        assert model.mean_rate == pytest.approx(3.0)
        stg = RecoverySTG.paper_default(arrival_rate=3.0, buffer_size=5)
        result = BurstySimulator(stg, model, random.Random(7)).run(5_000.0)
        analytic = loss_probability(stg, steady_state(stg.ctmc()))
        assert result.loss_time_fraction == pytest.approx(analytic,
                                                          abs=0.03)

    def test_burst_that_never_starts_is_quiet_poisson(self):
        """onset = 0 with a positive quiet rate: the burst phase is
        unreachable and the stream is plain Poisson."""
        model = BurstModel(quiet_rate=1.0, burst_rate=50.0,
                           onset_rate=0.0, decay_rate=1.0)
        assert model.burst_fraction == 0.0
        assert model.mean_rate == pytest.approx(1.0)
        stg = RecoverySTG.paper_default(arrival_rate=1.0, buffer_size=5)
        result = BurstySimulator(stg, model, random.Random(9)).run(10_000.0)
        analytic = loss_probability(stg, steady_state(stg.ctmc()))
        assert result.loss_time_fraction == pytest.approx(analytic,
                                                          abs=0.02)

    def test_extreme_peak_saturates_tiny_buffer(self):
        """A 100x peak against a one-slot buffer: most burst arrivals
        must be lost, and the accounting stays consistent."""
        stg = RecoverySTG.paper_default(buffer_size=1)
        model = BurstModel.with_mean(1.0, peak_to_mean=100.0,
                                     mean_burst_length=5.0)
        result = BurstySimulator(stg, model, random.Random(11)).run(2_000.0)
        assert 0 < result.arrivals_lost <= result.arrivals
        assert result.alert_loss_fraction > 0.5

    def test_alert_count_never_exceeds_buffer(self):
        stg = RecoverySTG.paper_default(buffer_size=3)
        model = BurstModel.with_mean(2.0, peak_to_mean=20.0,
                                     mean_burst_length=2.0)
        result = BurstySimulator(stg, model, random.Random(13)).run(500.0)
        assert all(s.alerts <= 3 for s in result.occupancy)

    def test_same_seed_is_bit_identical(self):
        stg = RecoverySTG.paper_default(buffer_size=4)
        model = BurstModel.with_mean(1.0, peak_to_mean=6.0,
                                     mean_burst_length=2.0)
        a = BurstySimulator(stg, model, random.Random(17)).run(300.0)
        b = BurstySimulator(stg, model, random.Random(17)).run(300.0)
        assert a.occupancy == b.occupancy
        assert a.arrivals == b.arrivals and a.jumps == b.jumps

    def test_jump_bound_enforced(self):
        stg = RecoverySTG.paper_default(arrival_rate=5.0, buffer_size=4)
        model = BurstModel.with_mean(5.0, peak_to_mean=4.0,
                                     mean_burst_length=1.0)
        with pytest.raises(SimulationError):
            BurstySimulator(stg, model, random.Random(1)).run(
                10_000.0, max_jumps=50
            )

    def test_negative_horizon_rejected(self):
        stg = RecoverySTG.paper_default(buffer_size=3)
        model = BurstModel.with_mean(1.0, 2.0, 1.0)
        with pytest.raises(SimulationError):
            BurstySimulator(stg, model).run(-1.0)

    def test_mean_unreachable_quiet_rate_rejected(self):
        # quiet_rate == mean makes p = 0: no valid burst fraction.
        with pytest.raises(ModelError):
            BurstModel.with_mean(1.0, peak_to_mean=2.0,
                                 mean_burst_length=1.0, quiet_rate=1.0)
