"""Tests for the full-stack timed simulation (real heals under load)."""

import random

import pytest

from repro.errors import SimulationError
from repro.markov.stg import StateCategory
from repro.sim.fullstack import FullStackConfig, FullStackSimulator


def run(lam, horizon=60.0, seed=1, **overrides):
    defaults = dict(arrival_rate=lam, scan_time=1 / 15,
                    unit_recovery_time=1 / 20, alert_buffer=6,
                    recovery_buffer=6)
    defaults.update(overrides)
    cfg = FullStackConfig(**defaults)
    return FullStackSimulator(cfg, random.Random(seed)).run(horizon)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FullStackConfig(arrival_rate=-1)
        with pytest.raises(ValueError):
            FullStackConfig(scan_time=0)
        with pytest.raises(ValueError):
            FullStackConfig(alert_buffer=0)

    def test_bad_horizon(self):
        with pytest.raises(SimulationError):
            FullStackSimulator().run(0.0)


class TestEmergentBehaviour:
    def test_light_load_mostly_normal(self):
        result = run(lam=0.5)
        assert result.category_occupancy[StateCategory.NORMAL] > 0.8
        assert result.alerts_lost == 0
        assert result.heals > 5

    def test_overload_collapses_to_scan_and_loses(self):
        result = run(lam=8.0)
        assert result.category_occupancy[StateCategory.SCAN] > 0.9
        assert result.alerts_lost > 0
        assert result.loss_fraction > 0.2

    def test_occupancy_orders_with_load(self):
        light = run(lam=0.5)
        heavy = run(lam=4.0)
        assert (
            light.category_occupancy[StateCategory.NORMAL]
            > heavy.category_occupancy[StateCategory.NORMAL]
        )
        assert light.loss_fraction <= heavy.loss_fraction

    def test_occupancy_is_distribution(self):
        result = run(lam=1.0)
        assert sum(result.category_occupancy.values()) == pytest.approx(
            1.0
        )


class TestCorrectnessUnderLoad:
    """The capstone property: whatever the load, every committed heal —
    including the final sweep over lost alerts — leaves the system
    strictly correct, and every injected attack is eventually repaired."""

    @pytest.mark.parametrize("lam", [0.5, 2.0, 8.0])
    def test_all_heals_audited(self, lam):
        result = run(lam=lam)
        assert result.all_heals_audited_ok
        # Every attack instance was undone somewhere along the way.
        assert result.repaired_instances >= result.attacks

    def test_quiet_system_no_attacks(self):
        result = run(lam=0.0, horizon=10.0)
        assert result.attacks == 0
        assert result.category_occupancy[StateCategory.NORMAL] == (
            pytest.approx(1.0)
        )

    def test_deterministic_per_seed(self):
        a = run(lam=2.0, seed=9)
        b = run(lam=2.0, seed=9)
        assert a.attacks == b.attacks
        assert a.category_occupancy == b.category_occupancy
