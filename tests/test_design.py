"""Tests for the Section VI design-guideline automation."""

import pytest

from repro.markov.degradation import constant, inverse_k
from repro.markov.design import (
    DesignResult,
    cost_effective_rate,
    design_system,
    peak_resilience,
    sweep_buffer_sizes,
)
from repro.markov.stg import RecoverySTG


class TestSweep:
    def test_sweep_covers_requested_sizes(self):
        losses = sweep_buffer_sizes(
            1.0, constant(15.0), constant(20.0), sizes=[2, 4, 8]
        )
        assert set(losses) == {2, 4, 8}
        assert all(0.0 <= lp <= 1.0 for lp in losses.values())

    def test_no_degradation_larger_buffer_helps(self):
        """Figure 4(a): slow/no degradation ⇒ loss falls with size."""
        losses = sweep_buffer_sizes(
            5.0, constant(15.0), constant(20.0), sizes=list(range(2, 12))
        )
        values = [losses[n] for n in sorted(losses)]
        assert values[0] > values[-1]
        # Monotone non-increasing (tiny numerical wiggle tolerated).
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestDesignSystem:
    def test_feasible_configuration(self):
        result = design_system(
            arrival_rate=1.0,
            epsilon=0.01,
            scan=inverse_k(15.0),
            recovery=inverse_k(20.0),
        )
        assert result.feasible
        assert result.achieved_epsilon <= 0.01
        assert result.buffer_size >= 2
        assert "feasible" in result.summary()

    def test_chooses_smallest_adequate_buffer(self):
        result = design_system(
            arrival_rate=1.0,
            epsilon=0.01,
            scan=inverse_k(15.0),
            recovery=inverse_k(20.0),
        )
        for n, loss in result.swept.items():
            if n < result.buffer_size:
                assert loss > 0.01

    def test_infeasible_configuration_reported(self):
        """A hopeless system (λ far above service capacity) cannot reach
        a tiny ε by buffer sizing alone."""
        result = design_system(
            arrival_rate=5.0,
            epsilon=1e-6,
            scan=inverse_k(2.0),
            recovery=inverse_k(3.0),
            max_buffer=10,
        )
        assert not result.feasible
        assert result.achieved_epsilon > 1e-6
        assert "INFEASIBLE" in result.summary()

    def test_stops_growing_when_loss_rises(self):
        result = design_system(
            arrival_rate=2.0,
            epsilon=1e-9,
            scan=inverse_k(4.0),
            recovery=inverse_k(5.0),
            max_buffer=30,
        )
        # The sweep must not have run all the way to 30 once the loss
        # started increasing (degraded rates make big buffers harmful).
        assert not result.feasible
        assert max(result.swept) < 30


class TestCostEffectiveRate:
    def test_knee_exists_for_paper_parameters(self):
        """Cases 3/4: beyond a specific value (~15-20 at λ=1), more
        rate buys nothing."""
        knee_mu = cost_effective_rate(1.0, "mu", other_rate=20.0)
        assert 10.0 <= knee_mu <= 20.0
        knee_xi = cost_effective_rate(1.0, "xi", other_rate=15.0)
        assert 15.0 <= knee_xi <= 25.0

    def test_knee_grows_with_attack_rate(self):
        low = cost_effective_rate(0.5, "mu", other_rate=20.0)
        high = cost_effective_rate(1.5, "mu", other_rate=20.0)
        assert high >= low

    def test_rates_beyond_knee_do_not_help(self):
        from repro.markov.degradation import inverse_k as inv
        from repro.markov.metrics import category_probabilities
        from repro.markov.steady_state import steady_state
        from repro.markov.stg import RecoverySTG, StateCategory

        knee = cost_effective_rate(1.0, "mu", other_rate=20.0,
                                   tolerance=0.02)

        def p_normal(mu1):
            stg = RecoverySTG(1.0, inv(mu1), inv(20.0), 15)
            pi = steady_state(stg.ctmc())
            return category_probabilities(stg, pi)[StateCategory.NORMAL]

        assert p_normal(knee * 2) - p_normal(knee) < 0.05

    def test_invalid_which_rejected(self):
        with pytest.raises(ValueError):
            cost_effective_rate(1.0, "sigma", other_rate=1.0)


class TestPeakResilience:
    def test_good_system_withstands_horizon(self, paper_stg):
        t = peak_resilience(paper_stg, epsilon=0.05, horizon=10.0)
        assert t == 10.0

    def test_poor_system_breaks_after_a_few_units(self):
        """Case 6: the under-provisioned system resists ≈5 time units."""
        stg = RecoverySTG.paper_default(mu1=2.0, xi1=3.0)
        t = peak_resilience(stg, epsilon=0.05, horizon=50.0, step=0.5)
        assert 2.0 <= t <= 20.0

    def test_resilience_shrinks_with_attack_rate(self):
        mild = RecoverySTG.paper_default(arrival_rate=1.0, mu1=2.0, xi1=3.0)
        harsh = RecoverySTG.paper_default(arrival_rate=3.0, mu1=2.0, xi1=3.0)
        t_mild = peak_resilience(mild, epsilon=0.05, horizon=40.0, step=0.5)
        t_harsh = peak_resilience(harsh, epsilon=0.05, horizon=40.0, step=0.5)
        assert t_harsh <= t_mild
