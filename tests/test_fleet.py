"""Tests for the fleet control plane (`repro.fleet`).

The load-bearing pin is worker-count independence: shards are disjoint
state driven by simulated-time clocks, so ``workers=K`` must produce
per-tenant verdicts, latencies, and counters identical to ``workers=1``
— the acceptance criterion of the subsystem.  The rest covers the
scheduling semantics (central preemption, deferral vs true loss, the
administrator path for blocked shards) and the workload archetypes.
"""

import dataclasses

import pytest

from repro.errors import FleetError
from repro.fleet import (
    PROFILES,
    FleetConfig,
    FleetControlPlane,
    TenantShard,
    WorkerPool,
    resolve_mix,
)
from repro.fleet.workload import prediction_for
from repro.obs.health import SloState


def hot_profile(arrival_rate=3.0, alert_buffer=3, recovery_buffer=3):
    """An overloaded banking variant: λ far above service capacity with
    tiny buffers, so queues overflow and priorities matter."""
    return dataclasses.replace(
        PROFILES["banking"],
        arrival_rate=arrival_rate,
        alert_buffer=alert_buffer,
        recovery_buffer=recovery_buffer,
    )


def run_fleet(workers=1, tenants=6, duration=40.0, seed=7, **kwargs):
    cfg = FleetConfig(tenants=tenants, duration=duration,
                      workers=workers, seed=seed, **kwargs)
    return FleetControlPlane(cfg).run()


class TestWorkerPool:
    def test_inline_mode_has_no_executor(self):
        pool = WorkerPool(1)
        assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        pool.close()

    def test_parallel_map_preserves_order(self):
        with WorkerPool(4) as pool:
            assert pool.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]

    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"bad {x}")

        with WorkerPool(3) as pool:
            with pytest.raises(ValueError):
                pool.map(boom, [1, 2, 3])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(FleetError):
            WorkerPool(0)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"tenants": 0},
        {"duration": 0.0},
        {"tick": -1.0},
        {"workers": 0},
        {"central_capacity": -1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(FleetError):
            FleetConfig(**kwargs)

    def test_default_central_capacity_scales_with_tenants(self):
        assert FleetConfig(tenants=25).resolved_central_capacity == 100
        assert FleetConfig(tenants=5, central_capacity=7) \
            .resolved_central_capacity == 7

    def test_unknown_mix_archetype_rejected(self):
        with pytest.raises(FleetError, match="unknown workload"):
            resolve_mix(["banking", "nope"])
        with pytest.raises(FleetError):
            resolve_mix([])


class TestDeterminismAcrossWorkers:
    """The acceptance pin: worker count changes wall-clock only."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_calm_fleet_identical_to_serial(self, workers):
        base = run_fleet(workers=1)
        other = run_fleet(workers=workers)
        assert other.verdicts_by_tenant == base.verdicts_by_tenant
        assert [t.latencies for t in other.health.tenants] == \
            [t.latencies for t in base.health.tenants]
        d_base, d_other = base.as_dict(), other.as_dict()
        d_base.pop("workers"), d_other.pop("workers")
        assert d_other == d_base

    def test_overloaded_fleet_identical_to_serial(self):
        def run(workers):
            cfg = FleetConfig(tenants=4, duration=30.0, workers=workers,
                              seed=1, central_capacity=6)
            return FleetControlPlane(cfg, profiles=[hot_profile()]).run()

        base, other = run(1), run(3)
        assert base.alerts_lost > 0  # the regime actually overflows
        d_base, d_other = base.as_dict(), other.as_dict()
        d_base.pop("workers"), d_other.pop("workers")
        assert d_other == d_base


class TestCalibratedFleet:
    """At the archetypes' calibrated rates the fleet stays healthy."""

    def test_zero_breach_and_strictly_correct(self):
        report = run_fleet(workers=2, tenants=8, duration=50.0)
        assert report.health.verdict is SloState.OK
        assert report.health.by_state["BREACH"] == 0
        assert report.alerts_lost == 0
        assert all(t.audits_ok for t in report.health.tenants)

    def test_every_accepted_alert_is_served_and_healed(self):
        report = run_fleet(tenants=5, duration=40.0, seed=11)
        assert report.scans == report.alerts_accepted
        assert report.attacks == report.alerts_accepted
        assert report.heals > 0
        # every attack got a measured detect→heal latency
        assert len(report.health.latencies) == report.attacks

    def test_latencies_positive_and_reported(self):
        report = run_fleet(tenants=4, duration=40.0)
        lat = report.health.as_dict()["latency"]
        assert lat["samples"] > 0
        assert 0 < lat["p50"] <= lat["p99"] <= lat["max"]


class TestOverloadSemantics:
    def overloaded(self, tenants=4, **kwargs):
        cfg = FleetConfig(tenants=tenants, duration=30.0, seed=1,
                          central_capacity=6, **kwargs)
        return FleetControlPlane(cfg, profiles=[hot_profile()])

    def test_losses_deferred_and_still_strictly_correct(self):
        report = self.overloaded().run()
        assert report.alerts_lost > 0
        assert report.central_deferrals > 0
        assert report.health.verdict is SloState.BREACH
        # the administrator path ultimately heals *everything*: the
        # end-to-end strict-correctness audit passes on every tenant
        assert all(t.audits_ok for t in report.health.tenants)

    def test_lost_plus_accepted_equals_attacks(self):
        report = self.overloaded().run()
        assert report.alerts_accepted + report.alerts_lost \
            == report.attacks

    def test_breach_tenants_preempt_in_central_queue(self):
        """With a tight central queue shared by overloaded and calm
        tenants, every central eviction falls on the calm (OK, class 2)
        tenants' tokens — the breaching tenants' detection work is
        never displaced."""
        cfg = FleetConfig(tenants=4, duration=30.0, seed=1,
                          central_capacity=6)
        plane = FleetControlPlane(
            cfg, profiles=[hot_profile(), PROFILES["figure1"]]
        )
        report = plane.run()
        lost_by_class = plane.central.lost_by_class
        assert sum(lost_by_class) == plane.central.lost
        assert lost_by_class[2] > 0  # calm tenants were deferred...
        assert lost_by_class[0] == 0  # ...breaching ones never were
        assert "BREACH" in report.verdicts_by_tenant.values()
        assert "OK" in report.verdicts_by_tenant.values()


class TestShard:
    def test_shard_isolation_of_rng_streams(self):
        a = TenantShard("a", PROFILES["banking"], seed=1)
        b = TenantShard("b", PROFILES["banking"], seed=2)
        a.ingest(50.0), b.ingest(50.0)
        assert a.attacks != b.attacks or a.latencies != b.latencies

    def test_same_seed_same_arrivals(self):
        a = TenantShard("a", PROFILES["travel"], seed=9)
        b = TenantShard("b", PROFILES["travel"], seed=9)
        assert len(a.ingest(50.0)) == len(b.ingest(50.0))
        assert a.attacks == b.attacks

    def test_prediction_cached_per_profile(self):
        assert prediction_for(PROFILES["banking"]) is \
            prediction_for(PROFILES["banking"])

    def test_shard_sweep_heals_and_audits(self):
        shard = TenantShard("t", PROFILES["figure1"], seed=4)
        accepted = shard.ingest(40.0)
        assert accepted
        shard.process(len(accepted), 40.0)
        shard.sweep(50.0)
        assert shard.system.alerts_queued == 0
        assert shard.heals > 0
        assert shard.audits_ok
        assert shard.manager.epoch == shard.heals

    def test_blocked_shard_resolved_by_sweep(self):
        """Recovery queue full with alerts pending (the paper's
        deadlock-by-overflow): sweep's administrator path drains it."""
        shard = TenantShard("t", hot_profile(arrival_rate=5.0,
                                             alert_buffer=2,
                                             recovery_buffer=1),
                            seed=3)
        for _ in range(10):
            accepted = shard.ingest(shard.clock.now + 5.0)
            shard.process(len(accepted), shard.clock.now)
        shard.sweep(shard.clock.now + 1.0)
        assert shard.system.alerts_queued == 0
        assert shard.system.recovery_units_queued == 0
        assert shard.audits_ok

    def test_every_archetype_runs_and_heals(self):
        for name, profile in PROFILES.items():
            shard = TenantShard(name, profile, seed=5)
            shard.ingest(60.0)
            shard.sweep(60.0)
            assert shard.attacks > 0, name
            assert shard.audits_ok, name


class TestControlPlaneApi:
    def test_shard_by_tenant_lookup(self):
        plane = FleetControlPlane(FleetConfig(tenants=3, duration=5.0))
        assert plane.shard_by_tenant("t1").tenant == "t1"
        with pytest.raises(FleetError, match="unknown tenant"):
            plane.shard_by_tenant("zz")

    def test_health_readable_before_any_tick(self):
        plane = FleetControlPlane(FleetConfig(tenants=3, duration=5.0))
        health = plane.health()
        assert len(health.tenants) == 3
        assert health.verdict is SloState.OK

    def test_fleet_metrics_track_run_counters(self):
        cfg = FleetConfig(tenants=4, duration=30.0, seed=2)
        plane = FleetControlPlane(cfg)
        report = plane.run()
        get = plane.registry.counter
        assert get("repro_fleet_attacks_total").value == report.attacks
        assert get("repro_fleet_alerts_lost_total").value \
            == report.alerts_lost
        assert get("repro_fleet_heals_total").value == report.heals
        hist = plane.registry.histogram("repro_fleet_detect_heal_latency")
        assert hist.count == len(report.health.latencies)

    def test_tenant_ids_zero_padded_and_unique(self):
        plane = FleetControlPlane(FleetConfig(tenants=12, duration=5.0))
        ids = [s.tenant for s in plane.shards]
        assert len(set(ids)) == 12
        assert ids[0] == "t00" and ids[11] == "t11"
