"""Tests: the architecture's operating rules reproduce the CTMC.

The simulator implements Figure 2's *rules* (bounded queues, scan
priority, blocked-analyzer drain, preemption); the CTMC was derived
from the same rules by hand.  Their agreement here is the consistency
check between the paper's Section IV prose and its Markov model.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.markov.metrics import (
    category_probabilities,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State
from repro.sim.architecture_sim import ArchitectureSimulator


class TestRulesReproduceModel:
    @pytest.mark.parametrize("params", [
        dict(arrival_rate=0.8, buffer_size=5),
        dict(arrival_rate=2.0, buffer_size=5),
        dict(arrival_rate=1.0, mu1=2.0, xi1=3.0, buffer_size=5),
    ])
    def test_occupancy_matches_steady_state(self, params):
        stg = RecoverySTG.paper_default(**params)
        chain = stg.ctmc()
        pi = steady_state(chain)
        result = ArchitectureSimulator(stg, random.Random(42)).run(
            30_000.0
        )
        for state in stg.states:
            analytic = pi[chain.index_of(state)]
            empirical = result.occupancy.get(state, 0.0)
            assert empirical == pytest.approx(analytic, abs=0.025), state

    def test_loss_matches_model(self):
        stg = RecoverySTG.paper_default(arrival_rate=2.5, buffer_size=4)
        pi = steady_state(stg.ctmc())
        result = ArchitectureSimulator(stg, random.Random(7)).run(
            30_000.0
        )
        assert result.loss_time_fraction == pytest.approx(
            loss_probability(stg, pi), abs=0.02
        )
        assert result.arrivals_lost > 0

    def test_category_occupancy_sums_to_one(self):
        stg = RecoverySTG.paper_default(buffer_size=4)
        result = ArchitectureSimulator(stg, random.Random(1)).run(2_000.0)
        assert sum(result.category_occupancy.values()) == pytest.approx(
            1.0
        )


class TestRules:
    def test_no_arrivals_stays_normal(self):
        stg = RecoverySTG.paper_default(arrival_rate=0.0, buffer_size=3)
        result = ArchitectureSimulator(stg).run(100.0)
        assert result.occupancy == {State(0, 0): 1.0}
        assert result.arrivals == 0

    def test_scan_and_recovery_never_overlap(self):
        """Emergent check: no time is spent in states where both a scan
        and a recovery would have to be in flight — the occupancy is a
        distribution over the same (a, r) grid as the CTMC."""
        stg = RecoverySTG.paper_default(arrival_rate=3.0, buffer_size=3)
        result = ArchitectureSimulator(stg, random.Random(3)).run(5_000.0)
        for state in result.occupancy:
            assert 0 <= state.alerts <= stg.alert_buffer
            assert 0 <= state.units <= stg.recovery_buffer

    def test_deterministic_per_seed(self):
        stg = RecoverySTG.paper_default(buffer_size=3)
        r1 = ArchitectureSimulator(stg, random.Random(5)).run(500.0)
        r2 = ArchitectureSimulator(stg, random.Random(5)).run(500.0)
        assert r1.occupancy == r2.occupancy

    def test_bad_horizon_rejected(self):
        stg = RecoverySTG.paper_default(buffer_size=3)
        with pytest.raises(SimulationError):
            ArchitectureSimulator(stg).run(0.0)
