"""Property tests for the fleet SLO rollup (`repro.fleet.slo`).

The fleet ``/slo`` view must not depend on how the control plane
happens to enumerate or group its shards.  Hypothesis pins the two
invariances the design claims:

- **permutation**: ``rollup(perm(verdicts)) == rollup(verdicts)`` for
  any ordering of the tenants;
- **repartition**: splitting the tenants into any partition, rolling
  each group up separately, and merging the parts reproduces the
  all-at-once rollup — ``merge_health([rollup(g) ...]) == rollup(all)``.

Plus the deterministic edge cases (duplicates, empties, percentiles).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError
from repro.fleet.slo import (
    FleetHealth,
    TenantVerdict,
    merge_health,
    percentile,
    rollup,
)
from repro.obs.health import ConformanceReport, SloState

import pytest


def make_report(arrivals=0, losses=0, scans=0, recoveries=0,
                verdict="OK", drifts=(), conformance="OK",
                violations=0):
    return ConformanceReport(
        duration=10.0,
        arrivals=arrivals,
        losses=losses,
        scans=scans,
        recoveries=recoveries,
        predicted_loss=0.01,
        loss_objective=0.03,
        slo_states=(("loss", verdict), ("conformance", conformance)),
        slo_transitions=0,
        drifts=tuple(drifts),
        violations=violations,
    )


verdicts_st = st.sampled_from(list(SloState))

tenant_verdict_st = st.builds(
    lambda idx, verdict, arrivals, losses, heals, audits, lat,
    conformance, violations:
        TenantVerdict(
            tenant=f"t{idx:04d}",
            verdict=verdict,
            report=make_report(
                arrivals=arrivals + losses,
                losses=losses,
                scans=arrivals,
                recoveries=heals,
                verdict=verdict.value,
                conformance=conformance.value,
                violations=violations,
            ),
            attacks=arrivals + losses,
            heals=heals,
            audits_ok=audits,
            latencies=tuple(lat),
        ),
    idx=st.integers(0, 9999),
    verdict=verdicts_st,
    arrivals=st.integers(0, 50),
    losses=st.integers(0, 10),
    heals=st.integers(0, 20),
    audits=st.booleans(),
    lat=st.lists(st.floats(0.001, 100.0), max_size=5),
    conformance=st.sampled_from([SloState.OK, SloState.BREACH]),
    violations=st.integers(0, 7),
)

#: Unique-by-tenant verdict lists (rollup rejects duplicates).
fleet_st = st.lists(
    tenant_verdict_st, min_size=1, max_size=12,
    unique_by=lambda t: t.tenant,
)


class TestPermutationInvariance:
    @settings(max_examples=60)
    @given(verdicts=fleet_st, seed=st.randoms())
    def test_rollup_invariant_under_tenant_permutation(self, verdicts,
                                                       seed):
        shuffled = list(verdicts)
        seed.shuffle(shuffled)
        assert rollup(shuffled) == rollup(verdicts)
        assert rollup(shuffled).as_dict() == rollup(verdicts).as_dict()

    @settings(max_examples=60)
    @given(verdicts=fleet_st)
    def test_verdict_is_worst_of(self, verdicts):
        health = rollup(verdicts)
        severity = {SloState.OK: 0, SloState.WARN: 1, SloState.BREACH: 2}
        worst = max((t.verdict for t in verdicts),
                    key=lambda s: severity[s])
        assert health.verdict is worst
        assert sum(health.by_state.values()) == len(verdicts)


class TestRepartitionInvariance:
    @settings(max_examples=60)
    @given(verdicts=fleet_st, data=st.data())
    def test_any_partition_merges_to_the_full_rollup(self, verdicts,
                                                     data):
        # draw a random partition of the tenants into 1..n groups
        n_groups = data.draw(
            st.integers(1, len(verdicts)), label="n_groups"
        )
        groups = [[] for _ in range(n_groups)]
        for t in verdicts:
            groups[data.draw(
                st.integers(0, n_groups - 1), label=f"group:{t.tenant}"
            )].append(t)
        parts = [rollup(g) for g in groups if g]
        assert merge_health(parts) == rollup(verdicts)

    @settings(max_examples=40)
    @given(verdicts=fleet_st)
    def test_merged_counts_are_sums(self, verdicts):
        merged = rollup(verdicts).merged
        assert merged.arrivals == sum(t.report.arrivals for t in verdicts)
        assert merged.losses == sum(t.report.losses for t in verdicts)
        assert merged.violations == sum(
            t.report.violations for t in verdicts
        )

    @settings(max_examples=40)
    @given(verdicts=fleet_st)
    def test_latencies_are_the_sorted_union(self, verdicts):
        lat = rollup(verdicts).latencies
        expected = sorted(
            x for t in verdicts for x in t.latencies
        )
        assert lat == expected


class TestRollupEdges:
    def test_empty_rollup_rejected(self):
        with pytest.raises(FleetError):
            rollup([])
        with pytest.raises(FleetError):
            merge_health([])

    def test_duplicate_tenant_rejected(self):
        t = TenantVerdict("t1", SloState.OK, make_report())
        with pytest.raises(FleetError, match="duplicate tenant"):
            rollup([t, t])

    def test_overlapping_partitions_rejected(self):
        t = TenantVerdict("t1", SloState.OK, make_report())
        part = rollup([t])
        with pytest.raises(FleetError, match="duplicate tenant"):
            merge_health([part, part])

    def test_worst_tenants_orders_by_severity_then_losses(self):
        ok = TenantVerdict("a", SloState.OK, make_report())
        lossy = TenantVerdict("b", SloState.WARN,
                              make_report(arrivals=10, losses=2,
                                          verdict="WARN"))
        bad = TenantVerdict("c", SloState.BREACH,
                            make_report(arrivals=10, losses=1,
                                        verdict="BREACH"))
        health = rollup([ok, lossy, bad])
        assert [t.tenant for t in health.worst_tenants()] \
            == ["c", "b", "a"]

    def test_as_dict_schema(self):
        t = TenantVerdict("t1", SloState.OK,
                          make_report(arrivals=5), latencies=(1.0, 2.0))
        d = rollup([t]).as_dict()
        assert d["fleet"] is True
        assert d["tenants"] == 1
        assert d["latency"]["samples"] == 2
        assert d["latency"]["p50"] == 1.0
        assert d["latency"]["p99"] == 2.0


class TestConformanceRollup:
    """The third (LTLf conformance) SLO in the fleet drill-down."""

    @settings(max_examples=60)
    @given(verdicts=fleet_st, seed=st.randoms())
    def test_violation_total_invariant_under_permutation(self, verdicts,
                                                         seed):
        shuffled = list(verdicts)
        seed.shuffle(shuffled)
        assert (rollup(shuffled).merged.violations
                == rollup(verdicts).merged.violations)
        assert (rollup(shuffled).as_dict()["violations"]
                == rollup(verdicts).as_dict()["violations"])

    @settings(max_examples=40)
    @given(verdicts=fleet_st)
    def test_tenant_row_exposes_conformance_verdict(self, verdicts):
        for row in rollup(verdicts).as_dict()["worst_tenants"]:
            tenant = next(t for t in verdicts if t.tenant == row["tenant"])
            assert row["conformance"] == tenant.conformance.value
            assert row["violations"] == tenant.report.violations

    def test_conformance_verdict_reads_the_slo_state(self):
        bad = TenantVerdict(
            "t1", SloState.BREACH,
            make_report(verdict="OK", conformance="BREACH", violations=3),
        )
        assert bad.conformance is SloState.BREACH
        assert bad.as_dict()["conformance"] == "BREACH"
        assert bad.as_dict()["violations"] == 3

    def test_conformance_defaults_ok_without_the_slo(self):
        report = ConformanceReport(
            duration=1.0, arrivals=0, losses=0, scans=0, recoveries=0,
            predicted_loss=0.0, loss_objective=1.0,
            slo_states=(("loss", "OK"),), slo_transitions=0,
        )
        assert TenantVerdict("t1", SloState.OK, report).conformance \
            is SloState.OK


class TestPercentile:
    def test_nearest_rank_is_an_observed_value(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 99) == 5.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_empty_and_bounds(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(FleetError):
            percentile([1.0], 101)
        with pytest.raises(FleetError):
            percentile([1.0], -1)

    @settings(max_examples=50)
    @given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
           q=st.floats(0, 100))
    def test_result_always_observed(self, values, q):
        values.sort()
        assert percentile(values, q) in values
