"""Healing cyclic workflows: repeated task instances (t_i^k).

The paper allows circles in workflow graphs; repeated visits are
distinct instances.  Recovery may change *how many times* a loop runs —
e.g. an attacker forging the loop counter makes the original execution
iterate the wrong number of times; the healed execution must re-decide
every iteration, abandoning surplus instances or executing extra ones.
"""

import pytest

from repro.core.axioms import audit_strict_correctness
from repro.core.healer import Healer
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import workflow


def countdown_spec():
    """init sets n; body decrements and accumulates; loops while n > 0."""
    return (
        workflow("loop")
        .task("init", reads=["seed"], writes=["n", "acc"],
              compute=lambda d: {"n": d["seed"], "acc": 0})
        .task("body", reads=["n", "acc"], writes=["n", "acc"],
              compute=lambda d: {"n": d["n"] - 1,
                                 "acc": d["acc"] + d["n"]},
              choose=lambda d: "body" if d["n"] > 0 else "fin")
        .task("fin", reads=["acc"], writes=["result"],
              compute=lambda d: {"result": d["acc"] * 10})
        .edge("init", "body").edge("body", "body").edge("body", "fin")
        .build()
    )


def run_attacked(seed_value, forged_n):
    initial = {"seed": seed_value, "n": 0, "acc": 0, "result": 0}
    store, log = DataStore(initial), SystemLog()
    engine = Engine(store, log)
    campaign = AttackCampaign()
    if forged_n is not None:
        # Tamper only the *init* write of n (the loop counter).
        campaign.transform_task(
            "init",
            lambda i, o, _f=forged_n: {"n": _f, "acc": o["acc"]},
        )
    engine.run_to_completion(engine.new_run(countdown_spec(), "L"),
                             tamper=campaign)
    return initial, store, log, engine, campaign


def heal_and_audit(initial, store, log, engine, campaign):
    healer = Healer(store, log, engine.specs_by_instance)
    report = healer.heal(campaign.malicious_uids)
    audit = audit_strict_correctness(
        engine.specs_by_instance, initial, report.final_history,
        store.snapshot(),
    )
    assert audit.ok, audit.problems
    return report


class TestLoopHealing:
    def test_attack_shrinks_loop(self):
        """Genuine seed 5 (5 iterations); attacker forges n=2 (2
        iterations).  Healing must *extend* the loop back to 5."""
        initial, store, log, engine, campaign = run_attacked(5, forged_n=2)
        body_runs = [r for r in log.trace("L")
                     if r.instance.task_id == "body"]
        assert len(body_runs) == 2
        report = heal_and_audit(initial, store, log, engine, campaign)
        # acc = 5+4+3+2+1 = 15 → result 150
        assert store.read("result") == 150
        # The two original body instances redone, three new ones added.
        redone_bodies = [u for u in report.redone if "/body#" in u]
        new_bodies = [u for u in report.new_executions if "/body#" in u]
        assert len(redone_bodies) == 2
        assert len(new_bodies) == 3

    def test_attack_grows_loop(self):
        """Genuine seed 2; attacker forges n=6.  Healing must *cut* the
        loop to 2 iterations, abandoning the surplus instances."""
        initial, store, log, engine, campaign = run_attacked(2, forged_n=6)
        body_runs = [r for r in log.trace("L")
                     if r.instance.task_id == "body"]
        assert len(body_runs) == 6
        report = heal_and_audit(initial, store, log, engine, campaign)
        assert store.read("result") == 30  # acc = 2+1 = 3
        abandoned_bodies = [u for u in report.abandoned if "/body#" in u]
        assert len(abandoned_bodies) == 4
        # 'fin' was executed originally and must be redone (stale acc),
        # not duplicated.
        assert sum(1 for u in report.redone if "/fin#" in u) == 1

    def test_same_iteration_count_redo_in_place(self):
        """Attack that corrupts acc but not the loop count: every
        iteration is redone at its original position, none abandoned."""
        initial = {"seed": 3, "n": 0, "acc": 0, "result": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = AttackCampaign().transform_task(
            "init", lambda i, o: {"n": o["n"], "acc": 555}
        )
        engine.run_to_completion(engine.new_run(countdown_spec(), "L"),
                                 tamper=campaign)
        report = heal_and_audit(initial, store, log, engine, campaign)
        assert store.read("result") == 60  # acc = 3+2+1 = 6
        assert report.abandoned == ()
        assert report.new_executions == ()
        assert len(report.redone) == len(log.trace("L"))

    def test_clean_loop_untouched(self):
        initial, store, log, engine, campaign = run_attacked(4, None)
        healer = Healer(store, log, engine.specs_by_instance)
        report = healer.heal([])
        assert report.undone == ()
        assert len(report.kept) == len(log.trace("L"))

    def test_instance_numbers_in_healed_history(self):
        """New loop instances continue the numbering (t^3, t^4, ...)."""
        initial, store, log, engine, campaign = run_attacked(5, forged_n=2)
        report = heal_and_audit(initial, store, log, engine, campaign)
        new_numbers = sorted(
            int(u.split("#")[1]) for u in report.new_executions
            if "/body#" in u
        )
        assert new_numbers == [3, 4, 5]
