"""The campaign generator: determinism, serialization, lint-cleanliness.

The fuzzing harness is only as trustworthy as its generator, so these
tests pin down the three properties the corpus format and the CI smoke
job rely on:

- generation is a pure function of the seed (bit-identical workloads
  and campaigns across calls and processes);
- every campaign survives a JSON round trip unchanged (corpus files
  are campaigns);
- generated workflow specs are structurally valid — the spec linter
  reports no ERROR-level finding on them.
"""

import pytest

from repro.errors import GenerationError
from repro.lint import Severity, lint_specs
from repro.scenarios.generate import (
    AttackStep,
    CampaignSpec,
    SpecShape,
    generate_campaign,
    generate_workload,
    mutate_plan,
    random_attacked_case,
    stable_seed,
)


def _structure(workload):
    """A workload's comparable skeleton (task bodies are closures)."""
    return [
        (
            spec.workflow_id,
            sorted(spec.tasks),
            sorted(spec.edges),
            {
                tid: (tuple(task.reads), tuple(task.writes))
                for tid, task in spec.tasks.items()
            },
        )
        for spec in workload.specs
    ], dict(workload.initial_data)


# --------------------------------------------------------------------------
# Determinism
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 7, 4242])
def test_workload_generation_is_bit_identical(seed):
    shape = SpecShape(n_workflows=3, tasks_per_workflow=7,
                      branch_probability=0.3, loop_probability=0.4)
    first = generate_workload(seed, shape, prefix="G")
    second = generate_workload(seed, shape, prefix="G")
    assert _structure(first) == _structure(second)


def test_workload_generation_depends_on_seed():
    shape = SpecShape(n_workflows=2, tasks_per_workflow=6)
    assert _structure(generate_workload(1, shape)) != _structure(
        generate_workload(2, shape)
    )


@pytest.mark.parametrize("index", range(12))
def test_campaign_stream_is_deterministic(index):
    assert generate_campaign(5, index=index) == generate_campaign(
        5, index=index
    )


def test_stable_seed_is_stable_and_sensitive():
    assert stable_seed(3, 11) == stable_seed(3, 11)
    assert stable_seed(3, 11) != stable_seed(11, 3)
    assert 0 <= stable_seed(2**40, -17) < 2**31


def test_attacked_case_plans_are_reproducible():
    first = random_attacked_case(42, n_attacks=2)
    second = random_attacked_case(42, n_attacks=2)
    assert first is not None and second is not None
    assert first[2].undo_analysis.definite == \
        second[2].undo_analysis.definite
    assert first[2].redo_analysis.definite == \
        second[2].redo_analysis.definite


# --------------------------------------------------------------------------
# Serialization (the corpus format)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("index", range(10))
def test_campaign_json_round_trip(index):
    campaign = generate_campaign(9, index=index)
    assert CampaignSpec.from_json(campaign.to_json()) == campaign


def test_campaign_round_trip_ignores_unknown_keys():
    """Corpus files carry a ``found_by`` annotation; loading must not
    choke on it (or on any future sibling key)."""
    campaign = generate_campaign(9, index=3)
    doc = campaign.to_dict()
    doc["found_by"] = {"oracle": "plan-verifier"}
    assert CampaignSpec.from_dict(doc) == campaign


def test_campaign_rejects_bad_documents():
    with pytest.raises(GenerationError):
        CampaignSpec.from_json("not json {")
    with pytest.raises(GenerationError):
        CampaignSpec.from_json("[]")
    with pytest.raises(GenerationError):
        CampaignSpec.from_dict({"format": "campaign/v99", "seed": 1})
    with pytest.raises(GenerationError):
        CampaignSpec.from_dict({})  # missing seed


def test_attack_step_validation():
    with pytest.raises(GenerationError):
        AttackStep(kind="meltdown")
    with pytest.raises(GenerationError):
        AttackStep(trigger="never")
    with pytest.raises(GenerationError):
        AttackStep(kind="false-alarm", count=0)
    with pytest.raises(GenerationError):
        CampaignSpec(seed=1, stages=())
    with pytest.raises(GenerationError):
        CampaignSpec(seed=1, tenants=0)


def test_calibrated_property_matches_ctmc_assumptions():
    quiet = CampaignSpec(seed=1, stages=((AttackStep(),),))
    assert quiet.calibrated
    flood = CampaignSpec(
        seed=1,
        stages=((AttackStep(kind="false-alarm", count=3),),),
    )
    assert not flood.calibrated
    timed = CampaignSpec(
        seed=1, stages=((AttackStep(trigger="scan"),),)
    )
    assert not timed.calibrated
    fleet = CampaignSpec(seed=1, tenants=3)
    assert not fleet.calibrated


# --------------------------------------------------------------------------
# Lint-cleanliness
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 17, 99])
def test_generated_specs_have_no_lint_errors(seed):
    shape = SpecShape(n_workflows=3, tasks_per_workflow=8,
                      branch_probability=0.5, loop_probability=0.4)
    workload = generate_workload(seed, shape)
    errors = [
        d for d in lint_specs(workload.specs)
        if d.severity is Severity.ERROR
    ]
    assert errors == [], [d.render() for d in errors[:5]]


def test_mutate_plan_rejects_unknown_kind():
    case = random_attacked_case(42)
    assert case is not None
    log, _specs, plan = case
    with pytest.raises(GenerationError):
        mutate_plan(plan, "swap-everything", log)


# --------------------------------------------------------------------------
# Hypothesis strategies (skipped when hypothesis is absent)
# --------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")


def test_campaign_specs_strategy_yields_valid_campaigns():
    from hypothesis import given, settings

    from repro.scenarios.generate import campaign_specs

    @settings(max_examples=30, deadline=None)
    @given(campaign_specs())
    def inner(campaign):
        assert isinstance(campaign, CampaignSpec)
        assert CampaignSpec.from_json(campaign.to_json()) == campaign
        assert campaign.steps

    inner()
