"""Tests for parameter sensitivity analysis."""

import pytest

from repro.errors import ModelError
from repro.markov.sensitivity import (
    Sensitivity,
    loss_sensitivities,
    normal_sensitivities,
)


def by_name(sensitivities):
    return {s.parameter: s for s in sensitivities}


class TestLossSensitivities:
    @pytest.fixture(scope="class")
    def design_point(self):
        return by_name(loss_sensitivities(
            lam=1.0, mu1=15.0, xi1=20.0, buffer_size=10
        ))

    def test_all_parameters_reported(self, design_point):
        assert set(design_point) == {"lambda", "mu1", "xi1", "buffer"}

    def test_attack_rate_increases_loss(self, design_point):
        assert design_point["lambda"].elasticity > 0

    def test_faster_rates_decrease_loss(self, design_point):
        assert design_point["mu1"].elasticity < 0
        assert design_point["xi1"].elasticity < 0

    def test_rates_are_high_leverage(self, design_point):
        """Near the design point, loss reacts strongly (elasticity well
        above 1 in magnitude) to both base rates — they are where a
        designer's spending pays off."""
        assert abs(design_point["mu1"].elasticity) > 1
        assert abs(design_point["xi1"].elasticity) > 1

    def test_xi_dominates_when_drain_limited(self):
        """With the scheduler as the binding resource (ξ₁ near the
        λ-driven transition), its elasticity exceeds μ's."""
        sens = by_name(loss_sensitivities(
            lam=1.0, mu1=15.0, xi1=16.0, buffer_size=15
        ))
        assert abs(sens["xi1"].elasticity) > abs(sens["mu1"].elasticity)

    def test_buffer_can_hurt_under_degradation(self, design_point):
        """The Figure 4(b) regime: one more slot *increases* loss when
        processing degrades as 1/k."""
        assert design_point["buffer"].elasticity > 0

    def test_metric_at_base_consistent(self, design_point):
        values = {s.metric_at_base for s in design_point.values()}
        assert len(values) == 1  # same design point for all entries


class TestNormalSensitivities:
    def test_signs_mirror_loss(self):
        sens = by_name(normal_sensitivities(
            lam=1.0, mu1=15.0, xi1=20.0, buffer_size=10
        ))
        assert sens["lambda"].elasticity < 0   # more attacks, less NORMAL
        assert sens["mu1"].elasticity > 0
        assert sens["xi1"].elasticity > 0

    def test_quiet_system_insensitive(self):
        """Far from saturation, P(NORMAL) barely moves with parameters."""
        sens = by_name(normal_sensitivities(
            lam=0.1, mu1=15.0, xi1=20.0, buffer_size=10
        ))
        for name in ("mu1", "xi1"):
            assert abs(sens[name].elasticity) < 0.1


class TestValidation:
    def test_rel_step_checked(self):
        with pytest.raises(ModelError):
            loss_sensitivities(rel_step=0.9)

    def test_dataclass_fields(self):
        s = Sensitivity("mu1", 15.0, 0.01, -3.0)
        assert s.parameter == "mu1" and s.elasticity == -3.0
