"""Tests for the replay-determinism AST lint (DET001-005)."""

import textwrap

from repro.lint import lint_paths, lint_source
from repro.lint.diagnostics import Severity


def findings(source):
    return lint_source(textwrap.dedent(source), "mod.py")


def rules_of(diags):
    return sorted(d.rule for d in diags)


class TestDet001Clocks:
    def test_call_flagged(self):
        diags = findings("""
            import time
            t0 = time.perf_counter()
        """)
        assert rules_of(diags) == ["DET001"]
        assert diags[0].file == "mod.py" and diags[0].line == 3
        assert diags[0].severity is Severity.ERROR

    def test_bare_reference_flagged(self):
        # A clock passed as a default argument poisons replay exactly
        # like a direct call.
        diags = findings("""
            import time
            def f(clock=time.monotonic):
                return clock()
        """)
        assert rules_of(diags) == ["DET001"]
        assert "reference to" in diags[0].message

    def test_from_import_and_alias(self):
        diags = findings("""
            from time import monotonic as mono
            import time as t
            a = mono()
            b = t.time()
        """)
        assert rules_of(diags) == ["DET001", "DET001"]

    def test_injected_clock_call_clean(self):
        assert findings("""
            def f(clock):
                return clock()
        """) == []


class TestDet002GlobalRandom:
    def test_module_level_functions_flagged(self):
        diags = findings("""
            import random
            x = random.random()
            random.shuffle([1, 2])
            c = random.choice("ab")
        """)
        assert rules_of(diags) == ["DET002"] * 3

    def test_seeded_instance_clean(self):
        assert findings("""
            import random
            rng = random.Random(42)
            x = rng.random()
            rng.shuffle([1, 2])
        """) == []


class TestDet003Calendar:
    def test_now_and_today_flagged(self):
        diags = findings("""
            import datetime
            from datetime import datetime as dt, date
            a = datetime.datetime.now()
            b = dt.utcnow()
            c = date.today()
        """)
        assert rules_of(diags) == ["DET003"] * 3

    def test_constructed_datetime_clean(self):
        assert findings("""
            from datetime import datetime
            stamp = datetime(2004, 3, 23)
        """) == []


class TestDet004SetIteration:
    def test_for_over_set_literal(self):
        diags = findings("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert rules_of(diags) == ["DET004"]
        assert diags[0].severity is Severity.WARN

    def test_comprehension_over_set_call(self):
        diags = findings("""
            out = [x for x in set([3, 1])]
            also = {x for x in frozenset([1]) if x}
        """)
        assert rules_of(diags) == ["DET004", "DET004"]

    def test_set_algebra_flagged(self):
        diags = findings("""
            for x in set(a) - set(b):
                print(x)
        """)
        assert rules_of(diags) == ["DET004"]

    def test_sorted_set_clean(self):
        assert findings("""
            for x in sorted({3, 1, 2}):
                print(x)
        """) == []

    def test_plain_name_iteration_not_flagged(self):
        # Statically unknowable; the lint only flags provable sets.
        assert findings("""
            def f(items):
                for x in items:
                    print(x)
        """) == []


class TestDet005Entropy:
    def test_urandom_uuid_secrets(self):
        diags = findings("""
            import os, uuid, secrets
            a = os.urandom(8)
            b = uuid.uuid4()
            c = secrets.token_hex()
        """)
        assert rules_of(diags) == ["DET005"] * 3

    def test_uuid5_is_deterministic(self):
        assert findings("""
            import uuid
            ns = uuid.uuid5(uuid.NAMESPACE_DNS, "x")
        """) == []


class TestPragma:
    def test_allow_suppresses_on_line(self):
        diags = findings("""
            import time
            a = time.time()  # lint: allow[DET001] wall time on purpose
            b = time.time()
        """)
        assert len(diags) == 1 and diags[0].line == 4

    def test_allow_list_and_wrong_rule(self):
        diags = findings("""
            import time, random
            a = time.time()  # lint: allow[DET001,DET002]
            b = random.random()  # lint: allow[DET001]
        """)
        assert rules_of(diags) == ["DET002"]

    def test_scope_is_recorded(self):
        diags = findings("""
            import time
            class Runner:
                def tick(self):
                    return time.time()
        """)
        assert diags[0].where == "mod.py::Runner.tick"


class TestCodebaseIsGreen:
    def test_src_repro_has_no_findings(self):
        """The satellite guarantee: every real finding in the codebase
        was fixed or pragma-annotated with a justification."""
        assert lint_paths(["src/repro"]) == []

    def test_lint_paths_walks_files_and_dirs(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "bad.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        diags = lint_paths([good, bad])
        assert rules_of(diags) == ["DET001"]
        assert diags[0].file.endswith("bad.py")
