"""Tests for multi-epoch operation: healing sequential attack waves."""

import pytest

from repro.core.epochs import EpochManager
from repro.errors import RecoveryError
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.spec import workflow


def accumulator_spec(name: str, delta: int):
    """One task adding ``delta`` to the shared counter and logging its
    own output object."""
    return (
        workflow(name)
        .task("add", reads=["counter"], writes=["counter", f"out_{name}"],
              compute=lambda d: {
                  "counter": d["counter"] + delta,
                  f"out_{name}": d["counter"] + delta,
              })
        .build()
    )


@pytest.fixture
def manager():
    initial = {"counter": 0}
    store = DataStore(initial)
    return EpochManager(store, initial), initial


class TestSingleEpoch:
    def test_clean_epoch_heals_trivially(self, manager):
        mgr, __ = manager
        mgr.run_workflow(accumulator_spec("a", 5))
        report = mgr.heal([])
        assert report.undone == ()
        assert mgr.epoch == 1
        assert mgr.store.read("counter") == 5
        assert mgr.audit().ok

    def test_attacked_epoch_repaired(self, manager):
        mgr, __ = manager
        campaign = AttackCampaign().corrupt_task("add", counter=999)
        name = mgr.run_workflow_attacked(
            accumulator_spec("a", 5), tamper=campaign
        )
        assert mgr.store.read("counter") == 999
        report = mgr.heal(campaign.malicious_uids)
        assert mgr.store.read("counter") == 5
        assert f"{name}/add#1" in report.redone
        assert mgr.audit().ok


class TestMultipleEpochs:
    def test_second_wave_measured_against_healed_baseline(self, manager):
        """Epoch 1: attack +5 task (forged to 999), heal → counter 5.
        Epoch 2: run +7 (counter 12), attack another +1 task, heal.
        The final state must reflect all three legitimate additions."""
        mgr, __ = manager
        wave1 = AttackCampaign().corrupt_task(
            "add", workflow_instance="w1", counter=999
        )
        mgr.run_workflow_attacked(accumulator_spec("a", 5), wave1, name="w1")
        mgr.heal(wave1.malicious_uids)
        assert mgr.store.read("counter") == 5

        mgr.run_workflow(accumulator_spec("b", 7), name="w2")
        wave2 = AttackCampaign().corrupt_task(
            "add", workflow_instance="w3", counter=-1
        )
        mgr.run_workflow_attacked(accumulator_spec("c", 1), wave2, name="w3")
        assert mgr.store.read("counter") == -1
        report = mgr.heal(wave2.malicious_uids)
        assert mgr.store.read("counter") == 13  # 5 + 7 + 1
        assert mgr.epoch == 2
        assert mgr.audit().ok, mgr.audit().problems

    def test_epoch_two_does_not_disturb_epoch_one_work(self, manager):
        mgr, __ = manager
        mgr.run_workflow(accumulator_spec("a", 5), name="w1")
        mgr.heal([])
        wave = AttackCampaign().corrupt_task(
            "add", workflow_instance="w2", counter=123
        )
        mgr.run_workflow_attacked(accumulator_spec("b", 7), wave, name="w2")
        report = mgr.heal(wave.malicious_uids)
        # Only the epoch-2 instance was touched.
        assert all(u.startswith("w2/") for u in report.undone)
        assert mgr.store.read("out_a") == 5
        assert mgr.store.read("counter") == 12

    def test_alert_about_rolled_epoch_ignored(self, manager):
        mgr, __ = manager
        mgr.run_workflow(accumulator_spec("a", 5), name="w1")
        mgr.heal([])
        mgr.run_workflow(accumulator_spec("b", 7), name="w2")
        report = mgr.heal(["w1/add#1"])  # w1 lives in an archived epoch
        assert report.undone == ()
        assert mgr.store.read("counter") == 12

    def test_archived_logs_accumulate(self, manager):
        mgr, __ = manager
        mgr.run_workflow(accumulator_spec("a", 1))
        mgr.heal([])
        mgr.run_workflow(accumulator_spec("b", 1))
        mgr.heal([])
        assert len(mgr.archived_logs) == 2
        assert len(mgr.log) == 0  # fresh epoch

    def test_duplicate_instance_names_rejected(self, manager):
        mgr, __ = manager
        mgr.run_workflow(accumulator_spec("a", 1), name="same")
        mgr.heal([])
        with pytest.raises(RecoveryError, match="unique"):
            mgr.run_workflow(accumulator_spec("b", 1), name="same")

    def test_combined_history_grows(self, manager):
        mgr, __ = manager
        mgr.run_workflow(accumulator_spec("a", 1))
        mgr.heal([])
        n1 = len(mgr.combined_history)
        mgr.run_workflow(accumulator_spec("b", 1))
        mgr.heal([])
        assert len(mgr.combined_history) > n1


class TestBranchAcrossEpochs:
    def test_branch_redecision_in_second_epoch(self, manager):
        """An epoch-2 branch depends on data healed in epoch 1."""
        mgr, __ = manager
        # Epoch 1: attacker forges counter to 100.
        wave1 = AttackCampaign().corrupt_task(
            "add", workflow_instance="w1", counter=100
        )
        mgr.run_workflow_attacked(accumulator_spec("a", 5), wave1, name="w1")
        mgr.heal(wave1.malicious_uids)  # counter back to 5

        gate = (
            workflow("gate")
            .task("check", reads=["counter"], writes=["mode"],
                  compute=lambda d: {
                      "mode": 1 if d["counter"] >= 10 else 0
                  },
                  choose=lambda d: "high" if d["mode"] else "low")
            .task("high", reads=[], writes=["result"],
                  compute=lambda d: {"result": "high"})
            .task("low", reads=[], writes=["result"],
                  compute=lambda d: {"result": "low"})
            .edge("check", "high").edge("check", "low")
            .build()
        )
        # Epoch 2: attacker inflates the counter read by the gate.
        wave2 = AttackCampaign().corrupt_task(
            "add", workflow_instance="w2", counter=50
        )
        mgr.run_workflow_attacked(accumulator_spec("b", 2), wave2,
                                  name="w2")
        mgr.run_workflow(gate, name="w3")
        assert mgr.store.read("result") == "high"  # corrupted decision
        mgr.heal(wave2.malicious_uids)
        assert mgr.store.read("counter") == 7
        assert mgr.store.read("result") == "low"  # healed decision
        assert mgr.audit().ok, mgr.audit().problems
