"""Unit tests for the versioned data stores."""

import pytest

from repro.errors import DataStoreError, VersionNotFoundError
from repro.workflow.data import (
    TOMBSTONE,
    DataStore,
    MultiVersionDataStore,
    Version,
)


class TestDataStore:
    def test_initial_values_are_version_zero(self):
        store = DataStore({"x": 10})
        assert store.read("x") == 10
        v = store.latest("x")
        assert v.number == 0 and v.writer is None

    def test_write_bumps_version(self):
        store = DataStore({"x": 1})
        assert store.write("x", 2, writer="t1") == 1
        assert store.write("x", 3, writer="t2") == 2
        assert store.read("x") == 3
        assert store.read_version("x") == (2, 3)

    def test_write_creates_unknown_object_at_version_zero(self):
        store = DataStore()
        assert store.write("new", 7, writer="t") == 0
        assert store.latest("new").writer == "t"

    def test_history_is_ordered(self):
        store = DataStore({"x": 0})
        store.write("x", 1)
        store.write("x", 2)
        assert [v.value for v in store.history("x")] == [0, 1, 2]

    def test_read_unknown_object_raises(self):
        with pytest.raises(DataStoreError):
            DataStore().read("ghost")

    def test_version_lookup(self):
        store = DataStore({"x": 0})
        store.write("x", 5, writer="w")
        assert store.version("x", 1).value == 5
        with pytest.raises(VersionNotFoundError):
            store.version("x", 9)

    def test_restore_writes_new_version(self):
        store = DataStore({"x": 10})
        store.write("x", 99, writer="bad")
        new_ver = store.restore("x", 0, writer="undo")
        assert new_ver == 2
        assert store.read("x") == 10
        # History preserved — recovery never rewrites it.
        assert [v.value for v in store.history("x")] == [10, 99, 10]

    def test_last_version_before(self):
        store = DataStore({"x": 10})
        store.write("x", 20)
        store.write("x", 30)
        assert store.last_version_before("x", 2).value == 20
        assert store.last_version_before("x", 1).value == 10
        with pytest.raises(VersionNotFoundError):
            store.last_version_before("x", 0)

    def test_snapshot(self):
        store = DataStore({"x": 1, "y": 2})
        store.write("x", 3)
        assert store.snapshot() == {"x": 3, "y": 2}

    def test_names_and_contains(self):
        store = DataStore({"x": 1})
        assert "x" in store and "y" not in store
        assert list(store.names()) == ["x"]


class TestMultiVersionDataStore:
    def test_pinned_read_survives_later_writes(self):
        store = MultiVersionDataStore({"x": 1})
        store.pin("reader", "x")
        store.write("x", 2)
        assert store.read("x") == 2
        assert store.read_pinned("reader", "x") == 1

    def test_unpinned_reader_sees_latest(self):
        store = MultiVersionDataStore({"x": 1})
        store.write("x", 2)
        assert store.read_pinned("other", "x") == 2

    def test_release_drops_pins(self):
        store = MultiVersionDataStore({"x": 1})
        store.pin("r", "x")
        store.write("x", 2)
        store.release("r")
        assert store.read_pinned("r", "x") == 2

    def test_storage_cost_counts_versions(self):
        store = MultiVersionDataStore({"x": 1, "y": 1})
        store.write("x", 2)
        store.write("x", 3)
        assert store.storage_cost() == 4  # x: 3 versions, y: 1


class TestTombstone:
    def test_singleton(self):
        from repro.workflow.data import _Tombstone

        assert _Tombstone() is TOMBSTONE
        assert repr(TOMBSTONE) == "<TOMBSTONE>"
