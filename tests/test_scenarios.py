"""Integration tests for the paper's three concrete scenarios."""

import pytest

from repro.scenarios.banking import build_banking
from repro.scenarios.figure1 import build_figure1
from repro.scenarios.travel import build_travel
from repro.workflow.data import TOMBSTONE


class TestBanking:
    """Forged transfer undone; collateral rejection re-approved."""

    @pytest.fixture
    def healed(self):
        sc = build_banking()
        pre = sc.balances()
        sc.heal_now()
        return sc, pre

    def test_attack_effects_before_heal(self):
        sc = build_banking()
        assert sc.store.read("balance_mallory") == 80
        assert sc.store.read("balance_alice") == 20
        assert sc.store.read("rejected_ab") == 1  # legit transfer denied

    def test_theft_reverted(self, healed):
        sc, pre = healed
        assert sc.store.read("balance_mallory") == 0

    def test_legit_transfer_reapproved(self, healed):
        sc, __ = healed
        assert sc.store.read("balance_alice") == 50
        assert sc.store.read("balance_bob") == 60
        assert sc.store.read("rejected_ab") == 0

    def test_untouched_transfer_kept(self, healed):
        sc, __ = healed
        assert sc.store.read("balance_carol") == 30
        assert sc.store.read("balance_dave") == 15
        kept_wfs = {
            u.split("/")[0] for u in sc.heal.kept
        }
        assert "transfer_cd" in kept_wfs

    def test_ledger_reflects_only_legit_volume(self, healed):
        sc, __ = healed
        assert sc.store.read("ledger") == 60  # 50 + 10

    def test_forged_run_never_redone(self, healed):
        sc, __ = healed
        assert not any(
            u.startswith("transfer_forged/") for u in sc.heal.redone
        )
        assert not any(
            u.startswith("transfer_forged/")
            for u in sc.heal.new_executions
        )

    def test_strictly_correct(self, healed):
        sc, __ = healed
        assert sc.audit.ok, sc.audit.problems


class TestTravel:
    """Forged card data: approval branch flipped back to deny."""

    @pytest.fixture
    def healed(self):
        sc = build_travel()
        sc.heal_now()
        return sc

    def test_attack_effects_before_heal(self):
        sc = build_travel()
        assert sc.store.read("booked_fraud") == 1
        assert sc.store.read("seats") == 10 - 4   # fraud + 3 honest
        assert sc.store.read("revenue") == 4 * 120

    def test_fraud_booking_denied_after_heal(self, healed):
        assert healed.store.read("denied_fraud") == 1
        assert healed.store.read("booked_fraud") == 0

    def test_inventory_and_revenue_repaired(self, healed):
        assert healed.store.read("seats") == 7
        assert healed.store.read("revenue") == 3 * 120

    def test_honest_bookings_survive(self, healed):
        for name in ("b0", "b1", "b2"):
            assert healed.store.read(f"booked_{name}") == 1

    def test_reserve_charge_abandoned_not_redone(self, healed):
        abandoned_tasks = {
            u.split("/")[1].split("#")[0] for u in healed.heal.abandoned
            if u.startswith("booking_fraud/")
        }
        assert {"reserve", "charge", "confirm"} <= abandoned_tasks

    def test_strictly_correct(self, healed):
        assert healed.audit.ok, healed.audit.problems


class TestFigure1Clean:
    def test_clean_run_takes_correct_path(self):
        sc = build_figure1(attacked=False)
        paths = {
            wf: [r.instance.task_id for r in sc.log.trace(wf)]
            for wf in ("wf1", "wf2")
        }
        assert paths["wf1"] == ["t1", "t2", "t5", "t6"]
        assert paths["wf2"] == ["t7", "t8", "t9", "t10"]

    def test_attacked_run_takes_wrong_path(self):
        sc = build_figure1(attacked=True)
        path = [r.instance.task_id for r in sc.log.trace("wf1")]
        assert path == ["t1", "t2", "t3", "t4", "t6"]
