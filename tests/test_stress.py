"""Soak test: sustained operation across many epochs of random attacks.

A long-lived system alternates normal operation, attacks and heals for
many epochs; after every heal the whole accumulated history must still
audit as strictly correct against the original initial data.  This is
the closest in-process approximation of the paper's "system under
sustained attack" operating regime.
"""

import random

import pytest

from repro.core.epochs import EpochManager
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.spec import WorkflowSpec, workflow


def make_spec(name: str, rng: random.Random, shared=("pool", "meter")):
    """A small random linear workflow over private + shared objects."""
    n_tasks = rng.randint(2, 4)
    builder = workflow(name)
    prev = None
    coeff = rng.randint(2, 9)
    for i in range(n_tasks):
        tid = f"t{i}"
        own = f"{name}_o{i}"
        reads = [rng.choice(shared)]
        if prev is not None:
            reads.append(f"{name}_o{i-1}")
        writes = [own]
        if rng.random() < 0.5:
            writes.append(rng.choice(shared))

        def compute(d, _w=tuple(writes), _r=tuple(reads), _c=coeff + i):
            total = sum(int(d[k]) for k in _r)
            return {w: (total * _c + 1) % 9973 for w in _w}

        builder.task(tid, reads=reads, writes=writes, compute=compute)
        if prev is not None:
            builder.edge(prev, tid)
        prev = tid
    return builder.build()


@pytest.mark.parametrize("seed", [0, 1])
def test_many_epochs_of_attacks(seed):
    rng = random.Random(seed)
    initial = {"pool": 5, "meter": 11}
    mgr = EpochManager(DataStore(initial), initial)

    for epoch in range(6):
        campaign = AttackCampaign()
        attacked_names = []
        n_runs = rng.randint(2, 4)
        for i in range(n_runs):
            name = f"e{epoch}w{i}"
            spec = make_spec(name, rng)
            if rng.random() < 0.6:
                task = rng.choice(sorted(spec.tasks))
                campaign.transform_task(
                    task,
                    lambda inp, out: {
                        k: (v + 7777) % 9973 for k, v in out.items()
                    },
                    workflow_instance=name,
                )
                attacked_names.append(name)
            mgr.run_workflow_attacked(spec, campaign, name=name)
        report = mgr.heal(campaign.malicious_uids)
        # Every attacked instance that committed was repaired or removed.
        for uid in campaign.malicious_uids:
            assert uid in report.undone
        audit = mgr.audit()
        assert audit.ok, (epoch, audit.problems[:3])

    assert mgr.epoch == 6
    assert len(mgr.archived_logs) == 6


def test_epoch_soak_with_forged_runs():
    rng = random.Random(42)
    initial = {"pool": 5, "meter": 11}
    mgr = EpochManager(DataStore(initial), initial)

    for epoch in range(4):
        legit = f"e{epoch}_legit"
        forged = f"e{epoch}_forged"
        mgr.run_workflow(make_spec(legit, rng), name=legit)
        mgr.run_workflow(make_spec(forged, rng), name=forged)
        report = mgr.heal([], forged_runs=[forged])
        assert all(u.startswith(forged) for u in report.abandoned)
        audit = mgr.audit()
        assert audit.ok, audit.problems[:3]
