"""Unit tests for the observability event bus and typed events."""

import pytest

from repro.obs.events import (
    AlertEnqueued,
    AlertLost,
    EventBus,
    EventRecorder,
    HealFinished,
    HealStarted,
    ScanStep,
    StateTransition,
    TaskUndone,
)


class TestEvents:
    def test_kind_is_type_name(self):
        assert AlertLost(1.0, uid="w/t1#1", queue_depth=3).kind == "AlertLost"
        assert ScanStep(0.0, uid="u", outstanding_units=0,
                        cost=1).kind == "ScanStep"

    def test_to_dict_is_flat_and_tagged(self):
        d = AlertEnqueued(2.5, uid="w/t1#1", queue_depth=2).to_dict()
        assert d == {"event": "AlertEnqueued", "time": 2.5,
                     "uid": "w/t1#1", "queue_depth": 2}

    def test_to_dict_converts_tuples_to_lists(self):
        d = HealStarted(1.0, malicious=("a", "b")).to_dict()
        assert d["malicious"] == ["a", "b"]

    def test_events_are_frozen(self):
        e = TaskUndone(1.0, uid="u")
        with pytest.raises(Exception):
            e.time = 2.0

    def test_transition_category_fallback(self):
        plain = StateTransition(0.0, old="NORMAL", new="SCAN")
        assert plain.category_from == "NORMAL"
        assert plain.category_to == "SCAN"
        rich = StateTransition(0.0, old="(3, 0)", new="(2, 1)",
                               old_category="SCAN", new_category="SCAN")
        assert rich.category_from == "SCAN"
        assert rich.category_to == "SCAN"


class TestEventBus:
    def test_inactive_until_subscribed(self):
        bus = EventBus()
        assert not bus.active
        handler = bus.subscribe(lambda e: None)
        assert bus.active
        bus.unsubscribe(handler)
        assert not bus.active

    def test_publish_without_subscribers_is_inert(self):
        EventBus().publish(TaskUndone(0.0, uid="u"))  # must not raise

    def test_dispatch_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append("first"))
        bus.subscribe(lambda e: seen.append("second"))
        bus.publish(TaskUndone(0.0, uid="u"))
        assert seen == ["first", "second"]

    def test_typed_subscription_filters(self):
        bus = EventBus()
        losses = []
        bus.subscribe(losses.append, types=[AlertLost])
        bus.publish(AlertEnqueued(0.0, uid="a", queue_depth=1))
        bus.publish(AlertLost(1.0, uid="b", queue_depth=8))
        assert [e.uid for e in losses] == ["b"]

    def test_all_subscribers_see_typed_events_too(self):
        bus = EventBus()
        everything, typed = [], []
        bus.subscribe(everything.append)
        bus.subscribe(typed.append, types=[AlertLost])
        bus.publish(AlertLost(0.0, uid="x", queue_depth=1))
        assert len(everything) == 1 and len(typed) == 1

    def test_unsubscribe_removes_typed_registration(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(seen.append, types=[AlertLost, TaskUndone])
        bus.unsubscribe(handler)
        assert not bus.active
        bus.publish(AlertLost(0.0, uid="x", queue_depth=1))
        assert seen == []

    def test_unsubscribe_unknown_handler_is_noop(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        bus.unsubscribe(lambda e: None)
        assert bus.active


class TestEventRecorder:
    def test_records_in_order_and_filters_by_type(self):
        bus = EventBus()
        rec = EventRecorder().attach(bus)
        bus.publish(AlertEnqueued(0.0, uid="a", queue_depth=1))
        bus.publish(TaskUndone(1.0, uid="b"))
        bus.publish(AlertEnqueued(2.0, uid="c", queue_depth=2))
        assert [e.kind for e in rec.events] == [
            "AlertEnqueued", "TaskUndone", "AlertEnqueued"]
        assert [e.uid for e in rec.of_type(AlertEnqueued)] == ["a", "c"]

    def test_clear(self):
        rec = EventRecorder()
        rec(HealFinished(0.0, undone=1, redone=1, kept=0, abandoned=0,
                         new_executions=0, duration=0.5))
        rec.clear()
        assert rec.events == []
