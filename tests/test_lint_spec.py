"""Tests for the static spec lint rules (SPEC001, SPEC101-106)."""

import pytest

from repro.errors import UnknownTaskError, WorkflowSpecError
from repro.lint import (
    SpecLintConfig,
    config_from_document,
    lint_documents,
    lint_specs,
)
from repro.lint.diagnostics import Severity
from repro.workflow.serialize import TaskDocument, WorkflowDocument
from repro.workflow.spec import workflow


def rules_of(diags):
    return sorted({d.rule for d in diags})


def by_rule(diags, rule):
    return [d for d in diags if d.rule == rule]


def clean_pair():
    """Two tiny workflows with fully-consumed data and no branches."""
    a = (
        workflow("a")
        .task("a1", writes=["x"], compute=lambda d: {"x": 1})
        .task("a2", reads=["x"], compute=lambda d: {})
        .chain("a1", "a2")
        .build()
    )
    b = (
        workflow("b")
        .task("b1", reads=["x"], compute=lambda d: {})
        .build()
    )
    return [a, b]


class TestCleanSpecs:
    def test_no_findings(self):
        # A 3-task system where everything is consumed: any damage
        # radius covers most of it, so park SPEC106 at its ceiling.
        config = SpecLintConfig(blast_warn_fraction=1.0)
        assert lint_specs(clean_pair(), config) == []


class TestSpec101DeadEnd:
    def test_cycle_region_without_exit(self):
        spec = (
            workflow("w")
            .task("t1", choose=lambda d: "t2")
            .task("t2", compute=lambda d: {})
            .task("t3", compute=lambda d: {})
            .task("e", compute=lambda d: {})
            .edge("t1", "t2").edge("t2", "t3").edge("t3", "t2")
            .edge("t1", "e")
            .build()
        )
        diags = by_rule(lint_specs([spec]), "SPEC101")
        assert sorted(d.message.split("'")[1] for d in diags) == ["t2", "t3"]
        assert all(d.severity is Severity.WARN for d in diags)

    def test_linear_workflow_clean(self):
        spec = (
            workflow("w")
            .task("t1", compute=lambda d: {})
            .task("t2", compute=lambda d: {})
            .chain("t1", "t2")
            .build()
        )
        assert by_rule(lint_specs([spec]), "SPEC101") == []


class TestSpec102And103Data:
    def test_dead_write_and_phantom_read(self):
        spec = (
            workflow("w")
            .task("t1", reads=["cfg"], writes=["tmp"],
                  compute=lambda d: {"tmp": 0})
            .build()
        )
        diags = lint_specs([spec])
        dead = by_rule(diags, "SPEC102")
        phantom = by_rule(diags, "SPEC103")
        assert len(dead) == 1 and "'tmp'" in dead[0].message
        assert len(phantom) == 1 and "'cfg'" in phantom[0].message
        # Both informational: legitimate outputs / initial data exist.
        assert dead[0].severity is Severity.INFO
        assert phantom[0].severity is Severity.INFO

    def test_cross_workflow_consumption_counts(self):
        # 'x' is written in workflow a and read only in workflow b —
        # system-scope linting must not flag it.
        assert by_rule(lint_specs(clean_pair()), "SPEC102") == []


class TestSpec104BranchContention:
    def test_branch_on_foreign_written_object(self):
        decider = (
            workflow("decider")
            .task("t1", reads=["shared"],
                  choose=lambda d: "yes" if d["shared"] else "no")
            .task("yes", compute=lambda d: {})
            .task("no", compute=lambda d: {})
            .edge("t1", "yes").edge("t1", "no")
            .build()
        )
        writer = (
            workflow("writer")
            .task("w1", writes=["shared"], compute=lambda d: {"shared": 1})
            .build()
        )
        diags = by_rule(lint_specs([decider, writer]), "SPEC104")
        assert len(diags) == 1
        assert "writer/w1" in diags[0].message
        assert diags[0].severity is Severity.WARN

    def test_own_workflow_writes_do_not_count(self):
        spec = (
            workflow("w")
            .task("t1", writes=["flag"], compute=lambda d: {"flag": 1})
            .task("t2", reads=["flag"],
                  choose=lambda d: "a" if d["flag"] else "b")
            .task("a", compute=lambda d: {})
            .task("b", compute=lambda d: {})
            .chain("t1", "t2")
            .edge("t2", "a").edge("t2", "b")
            .build()
        )
        assert by_rule(lint_specs([spec]), "SPEC104") == []


class TestSpec105UndoAmbiguity:
    def test_skippable_writer_with_reader(self):
        spec = (
            workflow("w")
            .task("t1", choose=lambda d: "opt")
            .task("opt", writes=["u"], compute=lambda d: {"u": 1})
            .task("join", reads=["u"], compute=lambda d: {})
            .edge("t1", "opt").edge("t1", "join").edge("opt", "join")
            .build()
        )
        diags = by_rule(lint_specs([spec]), "SPEC105")
        assert len(diags) == 1
        assert "'opt'" in diags[0].message
        assert "t1" in diags[0].message  # names the controlling branch

    def test_unavoidable_writer_clean(self):
        assert by_rule(lint_specs(clean_pair()), "SPEC105") == []


class TestSpec106BlastRadius:
    def _chained(self):
        return (
            workflow("w")
            .task("t1", writes=["x"], compute=lambda d: {"x": 1})
            .task("t2", reads=["x"], writes=["y"],
                  compute=lambda d: {"y": 1})
            .task("t3", reads=["y"], compute=lambda d: {})
            .chain("t1", "t2", "t3")
            .build()
        )

    def test_quiet_at_default_threshold_triggers_when_lowered(self):
        spec = self._chained()
        low = SpecLintConfig(blast_warn_fraction=0.5)
        diags = by_rule(lint_specs([spec], low), "SPEC106")
        assert diags  # t1's closure covers the whole chain
        assert all(d.severity is Severity.WARN for d in diags)
        assert by_rule(
            lint_specs([spec], SpecLintConfig(blast_warn_fraction=1.0)),
            "SPEC106",
        ) == []

    def test_escalates_to_error_past_error_fraction(self):
        config = SpecLintConfig(blast_warn_fraction=0.3,
                                blast_error_fraction=0.5)
        diags = by_rule(lint_specs([self._chained()], config), "SPEC106")
        assert any(d.severity is Severity.ERROR for d in diags)


class TestAllowlist:
    def test_allow_suppresses_rule(self):
        spec = (
            workflow("w")
            .task("t1", writes=["tmp"], compute=lambda d: {"tmp": 0})
            .build()
        )
        assert by_rule(lint_specs([spec]), "SPEC102")
        config = SpecLintConfig(allow=frozenset({"SPEC102"}))
        assert lint_specs([spec], config) == []


class TestDocuments:
    def _good_doc(self, **kw):
        return WorkflowDocument(
            workflow_id="order",
            tasks=(
                TaskDocument("price", writes={"total": "qty * 2"}),
                TaskDocument("ship", writes={"done": "total >= 0"}),
            ),
            edges=(("price", "ship"),),
            **kw,
        )

    def test_config_from_document(self):
        doc = self._good_doc(lint={
            "allow": ["SPEC102"],
            "blast_warn_fraction": 0.4,
            "blast_error_fraction": 0.9,
        })
        config = config_from_document(doc)
        assert config.allow == frozenset({"SPEC102"})
        assert config.blast_warn_fraction == 0.4
        assert config.blast_error_fraction == 0.9

    def test_document_allowlist_applies(self):
        doc = self._good_doc(lint={"allow": ["SPEC102", "SPEC103"]})
        assert lint_documents([doc]) == []
        noisy = self._good_doc()
        assert rules_of(lint_documents([noisy])) == ["SPEC102", "SPEC103"]

    def test_spec001_matches_constructor_problems(self):
        # Two structural defects at once: a branch node without a
        # choose function AND a cycle region unreachable from the
        # start — collect-then-raise reports both in one exception.
        doc = WorkflowDocument(
            workflow_id="broken",
            tasks=(
                TaskDocument("t1", writes={"x": "1"}),
                TaskDocument("t2", writes={"y": "2"}),
                TaskDocument("t3", writes={"z": "3"}),
                TaskDocument("t4", writes={"p": "4"}),
                TaskDocument("t5", writes={"q": "5"}),
            ),
            edges=(("t1", "t2"), ("t1", "t3"),
                   ("t4", "t5"), ("t5", "t4")),
        )
        with pytest.raises(WorkflowSpecError) as excinfo:
            doc.build()
        problems = excinfo.value.problems
        assert len(problems) > 1
        diags = by_rule(lint_documents([doc]), "SPEC001")
        assert [d.message for d in diags] == sorted(
            str(p) for p in problems
        ) or [d.message for d in diags] == [str(p) for p in problems]
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_unknown_edge_targets_all_reported(self):
        doc = WorkflowDocument(
            workflow_id="broken",
            tasks=(TaskDocument("t1", writes={"x": "1"}),),
            edges=(("t1", "ghost"), ("phantom", "t1")),
        )
        with pytest.raises(UnknownTaskError) as excinfo:
            doc.build()
        assert len(excinfo.value.problems) == 2
        diags = by_rule(lint_documents([doc]), "SPEC001")
        assert len(diags) == 2
        assert any("ghost" in d.message for d in diags)
        assert any("phantom" in d.message for d in diags)


class TestScenariosLintClean:
    @pytest.mark.parametrize("name", ["figure1", "banking", "travel",
                                      "supply-chain"])
    def test_no_error_findings(self, name):
        from repro.cli import _scenario_specs

        diags = lint_specs(_scenario_specs(name))
        assert not [d for d in diags if d.severity is Severity.ERROR]
