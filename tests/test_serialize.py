"""Tests for workflow documents (serializable specifications)."""

import pytest

from repro.errors import WorkflowSpecError
from repro.workflow.expr import ExprError
from repro.workflow.serialize import TaskDocument, WorkflowDocument


def order_document():
    return WorkflowDocument(
        workflow_id="order",
        tasks=(
            TaskDocument("price", writes={"total": "qty * unit"}),
            TaskDocument(
                "check",
                writes={"eligible": "total >= 100"},
                choose=(("apply", "eligible"), ("skip", "true")),
            ),
            TaskDocument("apply",
                         writes={"payable": "total - total // 10"}),
            TaskDocument("skip", writes={"payable": "total"}),
            TaskDocument("invoice", writes={"billed": "payable"}),
        ),
        edges=(
            ("price", "check"), ("check", "apply"), ("check", "skip"),
            ("apply", "invoice"), ("skip", "invoice"),
        ),
    )


class TestBuild:
    def test_builds_valid_spec(self):
        spec = order_document().build()
        assert spec.start == "price"
        assert spec.branch_nodes == frozenset({"check"})
        assert spec.task("price").reads == frozenset({"qty", "unit"})
        assert spec.task("price").writes == frozenset({"total"})

    def test_reads_inferred_from_expressions(self):
        spec = order_document().build()
        assert spec.task("check").reads == frozenset({"total"})
        # The choose condition reads 'eligible', but it is the task's
        # own output — not part of the read set.
        assert "eligible" not in spec.task("check").reads

    def test_extra_reads_added(self):
        doc = TaskDocument("t", writes={"x": "1"},
                           extra_reads=("audit_flag",))
        assert "audit_flag" in doc.inferred_reads()

    def test_execution_follows_conditions(self):
        from repro.workflow.data import DataStore
        from repro.workflow.engine import Engine
        from repro.workflow.log import SystemLog

        spec = order_document().build()
        for qty, expected_path, expected_billed in (
            (30, ["price", "check", "apply", "invoice"], 540),
            (2, ["price", "check", "skip", "invoice"], 40),
        ):
            store = DataStore({"qty": qty, "unit": 20, "total": 0,
                               "eligible": 0, "payable": 0, "billed": 0})
            log = SystemLog()
            engine = Engine(store, log)
            result = engine.run_to_completion(engine.new_run(spec, "r"))
            assert list(result.path) == expected_path
            assert store.read("billed") == expected_billed

    def test_branch_without_true_arm_raises_at_runtime(self):
        from repro.workflow.data import DataStore
        from repro.workflow.engine import Engine
        from repro.workflow.log import SystemLog

        doc = WorkflowDocument(
            workflow_id="w",
            tasks=(
                TaskDocument("a", writes={"x": "0"},
                             choose=(("b", "x > 0"), ("c", "x < 0"))),
                TaskDocument("b", writes={"y": "1"}),
                TaskDocument("c", writes={"y": "2"}),
            ),
            edges=(("a", "b"), ("a", "c")),
        )
        spec = doc.build()
        engine = Engine(DataStore({"x": 0, "y": 0}), SystemLog())
        with pytest.raises(ExprError, match="no choose condition"):
            engine.run_to_completion(engine.new_run(spec, "r"))

    def test_bad_expression_reported_with_task(self):
        doc = WorkflowDocument(
            workflow_id="w",
            tasks=(TaskDocument("broken", writes={"x": "1 +"}),),
            edges=(),
        )
        with pytest.raises(ExprError, match="broken"):
            doc.build()


class TestRoundTrip:
    def test_dict_round_trip(self):
        doc = order_document()
        again = WorkflowDocument.from_dict(doc.to_dict())
        assert again == doc

    def test_json_round_trip(self):
        doc = order_document()
        again = WorkflowDocument.from_json(doc.to_json())
        assert again == doc
        # And the rebuilt spec still executes identically.
        assert again.build().execution_paths() == (
            doc.build().execution_paths()
        )

    def test_invalid_json_rejected(self):
        with pytest.raises(WorkflowSpecError, match="invalid workflow"):
            WorkflowDocument.from_json("{not json")

    def test_missing_keys_rejected(self):
        with pytest.raises(WorkflowSpecError, match="workflow_id"):
            WorkflowDocument.from_dict({"tasks": [], "edges": []})
        with pytest.raises(WorkflowSpecError, match="'id'"):
            TaskDocument.from_dict({"writes": {}})


class TestLintMetadataRoundTrip:
    def _doc_with_lint(self):
        doc = order_document()
        import dataclasses

        return dataclasses.replace(doc, lint={
            "allow": ["SPEC102"],
            "blast_warn_fraction": 0.8,
            "note": "tuned for the order scenario",
        })

    def test_lint_mapping_survives_dict_round_trip(self):
        doc = self._doc_with_lint()
        again = WorkflowDocument.from_dict(doc.to_dict())
        assert again == doc
        assert again.lint["note"] == "tuned for the order scenario"

    def test_lint_mapping_survives_json_round_trip(self):
        doc = self._doc_with_lint()
        again = WorkflowDocument.from_json(doc.to_json())
        assert again == doc

    def test_empty_lint_mapping_omitted_from_serialization(self):
        doc = order_document()
        assert doc.lint == {}
        assert "lint" not in doc.to_dict()
        assert WorkflowDocument.from_dict(doc.to_dict()) == doc

    def test_lint_results_stable_across_round_trip(self):
        from repro.lint import lint_documents

        doc = self._doc_with_lint()
        again = WorkflowDocument.from_json(doc.to_json())
        assert lint_documents([doc]) == lint_documents([again])


class TestHealingSerializedWorkflows:
    def test_attack_and_heal_document_built_spec(self):
        """A serialized workflow behaves identically under recovery."""
        from repro.core.axioms import audit_strict_correctness
        from repro.core.healer import Healer
        from repro.ids.attacks import AttackCampaign
        from repro.workflow.data import DataStore
        from repro.workflow.engine import Engine
        from repro.workflow.log import SystemLog

        spec = WorkflowDocument.from_json(
            order_document().to_json()
        ).build()
        initial = {"qty": 2, "unit": 20, "total": 0, "eligible": 0,
                   "payable": 0, "billed": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        attack = AttackCampaign().corrupt_task("price", total=1000)
        engine.run_to_completion(engine.new_run(spec, "r"),
                                 tamper=attack)
        assert store.read("billed") == 900  # stolen discount applied

        healer = Healer(store, log, engine.specs_by_instance)
        report = healer.heal(attack.malicious_uids)
        assert store.read("billed") == 40
        assert any(u.endswith("/skip#1") for u in report.new_executions)
        audit = audit_strict_correctness(
            engine.specs_by_instance, initial, report.final_history,
            store.snapshot(),
        )
        assert audit.ok, audit.problems
