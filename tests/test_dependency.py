"""Unit tests for data and control dependency analysis (Definition 1)."""

import pytest

from repro.errors import RecoveryError
from repro.workflow.dependency import (
    ControlDependencies,
    DependencyAnalyzer,
    DependencyKind,
)
from repro.workflow.log import SystemLog
from repro.workflow.task import TaskInstance


def commit(log, wf, task, reads=None, writes=None, n=1):
    return log.commit(
        TaskInstance(wf, task, n),
        reads=reads or {},
        writes=writes or {},
    )


@pytest.fixture
def tx_tb_log():
    """The paper's Section II-C example: ``t_x: x = a + b`` then
    ``t_b: b = x - 1`` (adjacent in the log)."""
    log = SystemLog()
    commit(log, "w", "tx", reads={"a": 0, "b": 0}, writes={"x": 1})
    commit(log, "w", "tb", reads={"x": 1}, writes={"b": 1})
    return log


class TestDataDependencies:
    def test_paper_tx_tb_example(self, tx_tb_log):
        dep = DependencyAnalyzer(tx_tb_log)
        # t_x →f t_b: t_b reads x written by t_x.
        flows = dep.flow_dependents("w/tx#1")
        assert [(e.dst, e.kind) for e in flows] == [
            ("w/tb#1", DependencyKind.FLOW)
        ]
        assert flows[0].objects == frozenset({"x"})
        # t_x →a t_b: t_b overwrites b, which t_x read.
        antis = dep.anti_edges_from("w/tx#1")
        assert [(e.dst, e.objects) for e in antis] == [
            ("w/tb#1", frozenset({"b"}))
        ]

    def test_flow_sources_point_at_version_writers(self):
        log = SystemLog()
        commit(log, "w", "t1", writes={"x": 1})
        commit(log, "w", "t2", writes={"x": 2})
        commit(log, "w", "t3", reads={"x": 2}, writes={})
        dep = DependencyAnalyzer(log)
        srcs = dep.flow_sources("w/t3#1")
        assert [e.src for e in srcs] == ["w/t2#1"]  # not t1: overwritten

    def test_initial_version_has_no_flow_source(self):
        log = SystemLog()
        commit(log, "w", "t1", reads={"x": 0})
        dep = DependencyAnalyzer(log)
        assert dep.flow_sources("w/t1#1") == ()

    def test_anti_edge_only_first_later_writer(self):
        log = SystemLog()
        commit(log, "w", "r", reads={"x": 0})
        commit(log, "w", "w1", writes={"x": 1})
        commit(log, "w", "w2", writes={"x": 2})
        dep = DependencyAnalyzer(log)
        antis = dep.anti_edges_from("w/r#1")
        assert [e.dst for e in antis] == ["w/w1#1"]

    def test_output_edge_next_writer_only(self):
        log = SystemLog()
        commit(log, "w", "w1", writes={"x": 1})
        commit(log, "w", "w2", writes={"x": 2})
        commit(log, "w", "w3", writes={"x": 3})
        dep = DependencyAnalyzer(log)
        outs = dep.output_edges_from("w/w1#1")
        assert [e.dst for e in outs] == ["w/w2#1"]

    def test_cross_workflow_flow(self):
        log = SystemLog()
        commit(log, "wf1", "t1", writes={"x": 1})
        commit(log, "wf2", "t8", reads={"x": 1})
        dep = DependencyAnalyzer(log)
        assert [e.dst for e in dep.flow_dependents("wf1/t1#1")] == [
            "wf2/t8#1"
        ]

    def test_flow_closure_transitive(self):
        log = SystemLog()
        commit(log, "w", "t1", writes={"x": 1})
        commit(log, "w", "t2", reads={"x": 1}, writes={"y": 1})
        commit(log, "w", "t3", reads={"y": 1}, writes={"z": 1})
        commit(log, "w", "t4", reads={"q": 0})
        dep = DependencyAnalyzer(log)
        closure = dep.flow_closure(["w/t1#1"])
        assert closure == frozenset({"w/t2#1", "w/t3#1"})

    def test_unknown_uid_raises(self, tx_tb_log):
        dep = DependencyAnalyzer(tx_tb_log)
        with pytest.raises(RecoveryError):
            dep.record("w/ghost#1")

    def test_all_data_edges_cover_kinds(self, tx_tb_log):
        dep = DependencyAnalyzer(tx_tb_log)
        kinds = {e.kind for e in dep.all_data_edges()}
        assert DependencyKind.FLOW in kinds
        assert DependencyKind.ANTI in kinds


class TestLiteralDefinitionOne:
    def test_literal_flow_includes_interposed_writers(self):
        log = SystemLog()
        commit(log, "w", "t1", writes={"a": 1})
        commit(log, "w", "tk", writes={"x": 1})
        commit(log, "w", "t2", reads={"x": 1})
        dep = DependencyAnalyzer(log)
        # Literal form: W(t1) ∪ W(tk) intersects R(t2) via tk's write.
        assert dep.literal_flow("w/t1#1", "w/t2#1")
        # Version-based form correctly attributes the flow to tk only.
        assert [e.src for e in dep.flow_sources("w/t2#1")] == ["w/tk#1"]

    def test_literal_relations_require_log_order(self, tx_tb_log):
        dep = DependencyAnalyzer(tx_tb_log)
        assert not dep.literal_flow("w/tb#1", "w/tx#1")
        assert not dep.literal_anti("w/tb#1", "w/tx#1")
        assert not dep.literal_output("w/tb#1", "w/tx#1")

    def test_literal_anti_and_output(self, tx_tb_log):
        dep = DependencyAnalyzer(tx_tb_log)
        assert dep.literal_anti("w/tx#1", "w/tb#1")     # b rewritten
        assert not dep.literal_output("w/tx#1", "w/tb#1")

    def test_version_flow_implies_literal_flow(self):
        log = SystemLog()
        commit(log, "w", "t1", writes={"x": 1})
        commit(log, "w", "t2", reads={"x": 1}, writes={"y": 1})
        dep = DependencyAnalyzer(log)
        for edge in dep.flow_dependents("w/t1#1"):
            assert dep.literal_flow(edge.src, edge.dst)


class TestControlDependencies:
    def test_diamond(self, diamond_spec):
        cd = ControlDependencies(diamond_spec)
        assert cd.controllers_of("c") == frozenset({"b"})
        assert cd.controllers_of("d") == frozenset({"b"})
        assert cd.controllers_of("e") == frozenset()  # unavoidable
        assert cd.dependents_of("b") == frozenset({"c", "d"})
        assert cd.depends("b", "c") and not cd.depends("b", "e")

    def test_instance_level_control_dependents(self, diamond_spec):
        log = SystemLog()
        commit(log, "run", "a", writes={"ya": 1})
        commit(log, "run", "b", reads={"ya": 1}, writes={"yb": 1})
        commit(log, "run", "c", reads={"yb": 1}, writes={"yc": 1})
        dep = DependencyAnalyzer(log, {"run": diamond_spec})
        assert dep.control_dependents("run/b#1") == ("run/c#1",)
        assert dep.control_sources("run/c#1") == ("run/b#1",)
        assert dep.control_dependents("run/a#1") == ()

    def test_missing_spec_raises(self):
        log = SystemLog()
        commit(log, "run", "a")
        dep = DependencyAnalyzer(log)
        with pytest.raises(RecoveryError, match="no workflow spec"):
            dep.control_model("run")

    def test_nested_diamonds_transitive(self):
        from repro.workflow.spec import workflow

        spec = (
            workflow("nested")
            .task("s", choose=lambda d: "m1")
            .task("m1", choose=lambda d: "x")
            .task("x").task("y")
            .task("m2")
            .task("j")
            .edge("s", "m1").edge("s", "m2")
            .edge("m1", "x").edge("m1", "y")
            .edge("x", "j").edge("y", "j").edge("m2", "j")
            .build()
        )
        cd = ControlDependencies(spec)
        # x is controlled by both the inner and outer branch.
        assert cd.controllers_of("x") == frozenset({"s", "m1"})
        assert cd.controllers_of("j") == frozenset()
