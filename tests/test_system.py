"""Tests for the SelfHealingSystem architecture glue (Figure 2)."""

import pytest

from repro.core.strategies import RecoveryStrategy
from repro.errors import RecoveryError
from repro.scenarios.figure1 import build_figure1
from repro.system import SelfHealingSystem, SystemState


def make_system(**kwargs):
    sc = build_figure1(attacked=True)
    system = SelfHealingSystem(
        sc.store, sc.log, sc.specs_by_instance, **kwargs
    )
    return sc, system


class TestStates:
    def test_starts_normal(self):
        __, system = make_system()
        assert system.state is SystemState.NORMAL
        assert system.normal_task_admissible()

    def test_alert_moves_to_scan(self):
        sc, system = make_system()
        assert system.submit_alert(sc.malicious_uid)
        assert system.state is SystemState.SCAN
        assert not system.normal_task_admissible()

    def test_scan_moves_to_recovery(self):
        sc, system = make_system()
        system.submit_alert(sc.malicious_uid)
        plan = system.scan_step()
        assert plan is not None and plan.units == 1
        assert system.state is SystemState.RECOVERY
        assert not system.normal_task_admissible()

    def test_recovery_returns_to_normal(self):
        sc, system = make_system()
        system.submit_alert(sc.malicious_uid)
        system.scan_step()
        report = system.recovery_step()
        assert report is not None
        assert system.state is SystemState.NORMAL
        assert system.heal_reports == [report]

    def test_run_to_quiescence_heals(self):
        sc, system = make_system()
        system.submit_alert(sc.malicious_uid)
        assert system.run_to_quiescence() is SystemState.NORMAL
        assert len(system.heal_reports) == 1
        # The Figure 1 damage was actually repaired.
        report = system.heal_reports[0]
        assert len(report.undone) == 7 and len(report.redone) == 5


class TestQueueLimits:
    def test_alert_queue_overflow_loses_alerts(self):
        sc, system = make_system(alert_buffer=2)
        assert system.submit_alert("wf1/t1#1")
        assert system.submit_alert("wf1/t2#1")
        assert not system.submit_alert("wf1/t3#1")
        assert system.alerts_lost == 1
        assert system.alerts_queued == 2

    def test_scan_blocked_by_full_recovery_queue(self):
        sc, system = make_system(recovery_buffer=1)
        system.submit_alert("wf1/t1#1")
        system.submit_alert("wf1/t2#1")
        assert system.scan_step() is not None   # fills the single slot
        assert system.scan_step() is None       # analyzer blocked
        assert system.state is SystemState.SCAN
        assert system.recovery_units_queued == 1

    def test_quiescence_raises_on_blocked_analyzer(self):
        sc, system = make_system(recovery_buffer=1)
        system.submit_alert("wf1/t1#1")
        system.submit_alert("wf1/t2#1")
        with pytest.raises(RecoveryError, match="blocked"):
            system.run_to_quiescence()


class TestStrategies:
    def test_risk_strategies_admit_normal_tasks(self):
        sc, system = make_system(
            strategy=RecoveryStrategy.RISK_NORMAL_ONLY
        )
        system.submit_alert(sc.malicious_uid)
        assert system.normal_task_admissible()

    def test_strategy_properties(self):
        strict = RecoveryStrategy.STRICT
        assert strict.blocks_normal_tasks
        assert strict.recovery_guaranteed_terminating
        assert not strict.requires_multiversion_store

        risky = RecoveryStrategy.RISK_ALL
        assert not risky.blocks_normal_tasks
        assert not risky.recovery_guaranteed_terminating
        assert not risky.recovery_stays_correct

        mv = RecoveryStrategy.RISK_NORMAL_ONLY
        assert mv.requires_multiversion_store
        assert mv.recovery_stays_correct

    def test_describe_nonempty(self):
        for s in RecoveryStrategy:
            assert s.describe()


class TestNoAlerts:
    def test_recovery_step_outside_recovery_is_none(self):
        __, system = make_system()
        assert system.recovery_step() is None

    def test_scan_step_with_empty_queue_is_none(self):
        __, system = make_system()
        assert system.scan_step() is None

    def test_quiescence_trivial_when_normal(self):
        __, system = make_system()
        assert system.run_to_quiescence() is SystemState.NORMAL


def _chain_spec():
    from repro.workflow.spec import workflow

    return (
        workflow("w")
        .task("a", reads=["x"], writes=["y"],
              compute=lambda d: {"y": d["x"] + 1})
        .task("b", reads=["y"], writes=["z"],
              compute=lambda d: {"z": d["y"] * 2})
        .chain("a", "b")
        .build()
    )


class TestManagerMode:
    def make_managed(self, **kwargs):
        from repro.core.epochs import EpochManager
        from repro.workflow.data import DataStore

        initial = {"x": 1}
        manager = EpochManager(DataStore(initial), initial)
        return manager, SelfHealingSystem(manager=manager, **kwargs)

    def test_manager_excludes_explicit_world(self):
        from repro.core.epochs import EpochManager
        from repro.workflow.data import DataStore
        from repro.workflow.log import SystemLog

        store = DataStore({})
        manager = EpochManager(store, {})
        with pytest.raises(ValueError):
            SelfHealingSystem(store, SystemLog(), {}, manager=manager)

    def test_world_required_without_manager(self):
        with pytest.raises(ValueError):
            SelfHealingSystem()

    def test_heals_roll_epochs_across_attack_waves(self):
        from repro.ids.attacks import AttackCampaign

        manager, system = self.make_managed()
        spec = _chain_spec()
        for wave in range(3):
            campaign = AttackCampaign()
            campaign.corrupt_task("a", workflow_instance=f"v{wave}",
                                  y=999)
            manager.run_workflow_attacked(spec, campaign, f"v{wave}")
            assert system.submit_alert(campaign.malicious_uids[0])
            assert system.run_to_quiescence() is SystemState.NORMAL
        assert manager.epoch == 3
        assert len(system.heal_reports) == 3
        assert manager.audit().ok
        assert manager.store.read("z") == 4  # healed: (1 + 1) * 2

    def test_verify_mode_checks_plans_against_current_epoch(self):
        from repro.ids.attacks import AttackCampaign

        manager, system = self.make_managed(verify=True)
        spec = _chain_spec()
        for wave in range(2):
            campaign = AttackCampaign()
            campaign.corrupt_task("a", workflow_instance=f"n{wave}",
                                  y=777)
            manager.run_workflow_attacked(spec, campaign, f"n{wave}")
            system.submit_alert(campaign.malicious_uids[0])
            system.run_to_quiescence()
        assert manager.epoch == 2
        assert manager.audit().ok
