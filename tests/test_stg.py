"""Tests for the recovery-system STG (Figure 3 + Section IV-E)."""

import pytest

from repro.errors import ModelError
from repro.markov.degradation import constant, inverse_k
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State, StateCategory


class TestState:
    def test_categories(self):
        assert State(0, 0).category is StateCategory.NORMAL
        assert State(2, 1).category is StateCategory.SCAN
        assert State(0, 3).category is StateCategory.RECOVERY

    def test_str(self):
        assert str(State(0, 0)) == "N"
        assert str(State(2, 1)) == "S:2/1"
        assert str(State(0, 3)) == "R:3"

    def test_ordering_and_hash(self):
        assert State(0, 1) < State(1, 0)
        assert len({State(0, 1), State(0, 1), State(1, 1)}) == 2


class TestStructure:
    def test_state_space_is_square_by_default(self, small_stg):
        n = small_stg.recovery_buffer
        assert small_stg.alert_buffer == n
        assert len(small_stg.states) == (n + 1) ** 2

    def test_transitions(self, small_stg):
        rates = small_stg.transition_rates()
        lam = small_stg.arrival_rate
        # Arrival from NORMAL.
        assert rates[(State(0, 0), State(1, 0))] == lam
        # Scan: alert → recovery unit, at μ_a.
        assert rates[(State(2, 1), State(1, 2))] == pytest.approx(15 / 2)
        # Recovery only when the alert queue is empty...
        assert (State(0, 2), State(0, 1)) in rates
        assert (State(1, 2), State(1, 1)) not in rates
        # ...except when the recovery buffer is full (analyzer blocked).
        R = small_stg.recovery_buffer
        assert (State(1, R), State(1, R - 1)) in rates
        # No arrivals beyond the alert buffer.
        A = small_stg.alert_buffer
        assert not any(src.alerts == A and dst.alerts == A + 1
                       for (src, dst) in rates)
        # No scan when the recovery buffer is full.
        assert not any(
            src.units == R and dst.units == R + 1 for (src, dst) in rates
        )

    def test_no_absorbing_states(self, small_stg):
        """Every state can eventually reach NORMAL — the paper's
        termination claim ('the recovery will definitely be
        terminated')."""
        rates = small_stg.transition_rates()
        out = {}
        for (src, dst), rate in rates.items():
            out.setdefault(src, []).append(dst)
        # Reverse reachability from NORMAL.
        reach_normal = {small_stg.normal_state}
        changed = True
        while changed:
            changed = False
            for src, dsts in out.items():
                if src not in reach_normal and any(
                    d in reach_normal for d in dsts
                ):
                    reach_normal.add(src)
                    changed = True
        assert reach_normal == set(small_stg.states)

    def test_loss_states_are_full_alert_buffer(self, small_stg):
        A = small_stg.alert_buffer
        assert all(s.alerts == A for s in small_stg.loss_states())
        assert len(small_stg.loss_states()) == small_stg.recovery_buffer + 1

    def test_states_of_category(self, small_stg):
        normals = small_stg.states_of(StateCategory.NORMAL)
        assert normals == [State(0, 0)]
        scans = small_stg.states_of(StateCategory.SCAN)
        assert all(s.alerts > 0 for s in scans)

    def test_initial_distribution_defaults_to_normal(self, small_stg):
        pi0 = small_stg.initial_distribution()
        chain = small_stg.ctmc()
        assert pi0[chain.index_of(State(0, 0))] == 1.0

    def test_ctmc_is_cached(self, small_stg):
        assert small_stg.ctmc() is small_stg.ctmc()


class TestValidation:
    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(ModelError):
            RecoverySTG(-1.0, constant(1), constant(1), 4)

    def test_small_buffers_rejected(self):
        with pytest.raises(ModelError):
            RecoverySTG(1.0, constant(1), constant(1), 0)
        with pytest.raises(ModelError):
            RecoverySTG(1.0, constant(1), constant(1), 4, alert_buffer=0)

    def test_rectangular_buffers_allowed(self):
        stg = RecoverySTG(1.0, constant(5), constant(5), 3, alert_buffer=6)
        assert len(stg.states) == 7 * 4


class TestPaperDefault:
    def test_parameters(self, paper_stg):
        assert paper_stg.arrival_rate == 1.0
        assert paper_stg.recovery_buffer == 15
        assert paper_stg.alert_buffer == 15

    def test_good_system_mostly_normal(self, paper_stg):
        """Section V: for λ ≤ 1 the system stays NORMAL with
        probability > 0.8."""
        from repro.markov.metrics import category_probabilities

        pi = steady_state(paper_stg.ctmc())
        cats = category_probabilities(paper_stg, pi)
        assert cats[StateCategory.NORMAL] > 0.8

    def test_zero_arrivals_stay_normal(self):
        stg = RecoverySTG.paper_default(arrival_rate=0.0)
        pi = steady_state(stg.ctmc())
        chain = stg.ctmc()
        assert pi[chain.index_of(State(0, 0))] == pytest.approx(1.0)
