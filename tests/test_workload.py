"""Tests for the random workload generator."""

import random

import pytest

from repro.sim.workload import Workload, WorkloadConfig, WorkloadGenerator


def gen(seed=0, **overrides):
    defaults = dict(n_workflows=3, tasks_per_workflow=8,
                    branch_probability=0.5)
    defaults.update(overrides)
    return WorkloadGenerator(WorkloadConfig(**defaults), random.Random(seed))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_workflows=0)
        with pytest.raises(ValueError):
            WorkloadConfig(tasks_per_workflow=1)
        with pytest.raises(ValueError):
            WorkloadConfig(branch_probability=1.5)


class TestGeneration:
    def test_specs_are_valid_and_counted(self):
        wl = gen().generate()
        assert len(wl.specs) == 3
        for spec in wl.specs:
            assert spec.start  # validated by construction
            assert spec.ends

    def test_deterministic_per_seed(self):
        wl1, wl2 = gen(5).generate(), gen(5).generate()
        assert [s.workflow_id for s in wl1.specs] == [
            s.workflow_id for s in wl2.specs
        ]
        assert [sorted(s.tasks) for s in wl1.specs] == [
            sorted(s.tasks) for s in wl2.specs
        ]
        assert wl1.initial_data == wl2.initial_data

    def test_different_seeds_compute_differently(self):
        """Even when the graph shapes coincide, the generated task
        arithmetic must differ between seeds."""
        from repro.sim.recovery_sim import run_pipeline

        s1 = run_pipeline(gen(1).generate(), None, heal=False).store
        s2 = run_pipeline(gen(2).generate(), None, heal=False).store
        assert s1.snapshot() != s2.snapshot()

    def test_every_read_object_has_initial_value(self):
        wl = gen(3).generate()
        for spec in wl.specs:
            for task in spec.tasks.values():
                for name in task.reads:
                    assert name in wl.initial_data, name

    def test_branching_present_with_high_probability_config(self):
        wl = gen(4, branch_probability=1.0,
                 tasks_per_workflow=12).generate()
        assert any(spec.branch_nodes for spec in wl.specs)

    def test_no_branches_when_probability_zero(self):
        wl = gen(5, branch_probability=0.0).generate()
        assert all(not spec.branch_nodes for spec in wl.specs)

    def test_shared_objects_single_writer(self):
        """Each shared object is written by at most one workflow."""
        wl = gen(6, n_shared_objects=4).generate()
        writers = {}
        for spec in wl.specs:
            for task in spec.tasks.values():
                for name in task.writes:
                    if name.startswith("s"):
                        writers.setdefault(name, set()).add(
                            spec.workflow_id
                        )
        for name, wfs in writers.items():
            assert len(wfs) == 1, (name, wfs)

    def test_spec_named_lookup(self):
        wl = gen().generate()
        wid = wl.specs[0].workflow_id
        assert wl.spec_named(wid) is wl.specs[0]
        with pytest.raises(KeyError):
            wl.spec_named("nope")


class TestAttackSelection:
    def test_campaign_targets_requested_count(self):
        g = gen(7)
        wl = g.generate()
        campaign = g.pick_attacks(wl, n_attacks=3)
        assert len(campaign) == 3

    def test_attacks_actually_corrupt(self):
        from repro.sim.recovery_sim import run_pipeline

        g = gen(8)
        wl = g.generate()
        campaign = g.pick_attacks(wl, n_attacks=2)
        attacked = run_pipeline(wl, campaign, heal=False, seed=8)
        clean = run_pipeline(wl, None, heal=False, seed=8)
        assert attacked.malicious_ground_truth
        assert attacked.store.snapshot() != clean.store.snapshot()
