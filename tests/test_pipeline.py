"""Integration tests: the full pipeline (engine → IDS → analyzer →
healer → audit) over random workloads."""

import random

import pytest

from repro.ids.detector import DetectorConfig
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


def make(seed, **overrides):
    defaults = dict(n_workflows=3, tasks_per_workflow=10,
                    branch_probability=0.5)
    defaults.update(overrides)
    g = WorkloadGenerator(WorkloadConfig(**defaults), random.Random(seed))
    return g, g.generate()


class TestHealing:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_heal_strictly_correct(self, seed):
        g, wl = make(seed)
        campaign = g.pick_attacks(wl, n_attacks=2)
        result = run_pipeline(wl, campaign, seed=seed)
        assert result.healthy, result.audit.problems

    @pytest.mark.parametrize("policy", ["round_robin", "sequential",
                                        "random"])
    def test_all_policies_heal(self, policy):
        g, wl = make(42)
        campaign = g.pick_attacks(wl, n_attacks=2)
        result = run_pipeline(wl, campaign, policy=policy, seed=42)
        assert result.healthy, result.audit.problems

    def test_sequential_policy_matches_clean_oracle(self):
        """With sequential interleaving the healed store must equal the
        clean universe's store exactly."""
        for seed in range(6):
            g, wl = make(seed, branch_probability=0.7)
            campaign = g.pick_attacks(wl, n_attacks=3)
            healed = run_pipeline(wl, campaign, policy="sequential",
                                  seed=seed)
            clean = run_pipeline(wl, None, policy="sequential", seed=seed,
                                 heal=False)
            assert healed.store.snapshot() == clean.store.snapshot(), seed

    def test_no_attack_pipeline_keeps_everything(self):
        g, wl = make(3)
        result = run_pipeline(wl, None)
        assert result.healthy
        assert result.heal.undone == ()
        assert len(result.heal.kept) == len(result.log.normal_records())

    def test_heal_false_returns_attacked_state(self):
        # Several attacks so at least one lands on an executed path
        # (attacks on never-taken branch arms have no ground truth).
        g, wl = make(4)
        campaign = g.pick_attacks(wl, n_attacks=5)
        result = run_pipeline(wl, campaign, heal=False)
        assert result.heal is None and result.audit is None
        assert result.malicious_ground_truth


class TestDetectorIntegration:
    def test_missed_detections_covered_by_administrator(self):
        """detection_probability < 1: the admin reports the misses, so
        recovery input is complete and healing still succeeds."""
        g, wl = make(5)
        campaign = g.pick_attacks(wl, n_attacks=3)
        result = run_pipeline(
            wl,
            campaign,
            detector_config=DetectorConfig(detection_probability=0.3),
            seed=5,
        )
        assert result.healthy, result.audit.problems
        assert set(result.alert_uids) >= set(
            result.malicious_ground_truth
        ) & {u for u in result.alert_uids}
        # every ground-truth instance was ultimately reported
        assert set(result.malicious_ground_truth) <= set(result.alert_uids)

    def test_false_alarms_do_not_break_recovery(self):
        """Spurious alerts name innocent instances; recovery treats them
        as damage reports about correct tasks.  The healed system must
        still be strictly correct (redoing a correct task reproduces its
        values)."""
        g, wl = make(6)
        campaign = g.pick_attacks(wl, n_attacks=1)
        result = run_pipeline(
            wl,
            campaign,
            detector_config=DetectorConfig(false_alarm_rate=0.2),
            seed=6,
        )
        assert result.healthy, result.audit.problems

    def test_delayed_and_batched_detection_still_heals(self):
        """Detection delay plus periodic batching (the paper's
        'periodically reports intrusions'): recovery input arrives late
        but complete, and healing still succeeds."""
        g, wl = make(9)
        campaign = g.pick_attacks(wl, n_attacks=2)
        result = run_pipeline(
            wl,
            campaign,
            detector_config=DetectorConfig(
                mean_detection_delay=5.0, report_period=10.0
            ),
            seed=9,
        )
        assert result.healthy, result.audit.problems
        assert set(result.malicious_ground_truth) <= set(
            result.alert_uids
        )

    def test_plan_and_heal_agree_on_definite_undos(self):
        g, wl = make(7)
        campaign = g.pick_attacks(wl, n_attacks=2)
        result = run_pipeline(wl, campaign, seed=7)
        plan_undos = {a.uid for a in result.plan.undo_actions}
        assert plan_undos <= set(result.heal.undone)
