"""The Ancora-style web-application scenario.

A session hijack forges Bob's add-to-cart quantity; his checkout
drains the inventory, flipping Carol's legitimate checkout into a
rejection, while Dave's traffic races the repair.  Healing must undo
the hijack, re-decide Carol's branch, and keep every untouched commit.
"""

from repro.scenarios.web_app import PRICE, build_web_app


class TestAttackedState:
    def test_hijack_drains_inventory_and_rejects_carol(self):
        sc = build_web_app()
        # Alice bought 2, Bob's forged 90 drained the rest to 8, and
        # Dave still got his single unit.
        assert sc.store.read("inventory") == 7
        assert sc.store.read("rejected_c2") == 1
        assert sc.store.read("sess_carol") == 10  # never cleared
        assert sc.store.read("receipt_b2") == 90 * PRICE

    def test_hijacked_uid_is_logged(self):
        sc = build_web_app()
        assert sc.hijacked_uid in sc.log


class TestHealing:
    def test_heal_is_strictly_correct(self):
        sc = build_web_app()
        sc.heal_now()
        assert sc.audit is not None and sc.audit.ok, (
            sc.audit.problems[:3] if sc.audit else None
        )

    def test_heal_restores_the_genuine_day(self):
        sc = build_web_app()
        sc.heal_now()
        # Genuine quantities: Alice 2, Bob 1, Carol 10, Dave 1 = 14
        # units sold out of 100.
        assert sc.store.read("inventory") == 86
        assert sc.store.read("revenue") == 14 * PRICE
        # Carol's checkout is re-decided into an approval.
        assert sc.store.read("rejected_c2") == 0
        assert sc.store.read("ok_c2") == 1
        assert sc.store.read("receipt_c2") == 10 * PRICE
        # Every cart is cleared once all checkouts succeed.
        for user in ("alice", "bob", "carol", "dave"):
            assert sc.store.read(f"sess_{user}") == 0

    def test_untouched_requests_are_kept(self):
        sc = build_web_app()
        report = sc.heal_now()
        kept_instances = {
            sc.log.get(uid).instance.workflow_instance
            for uid in report.kept
        }
        # Alice's requests commit before the hijack touches anything
        # shared she depends on; they must survive untouched.
        assert "add_a1" in kept_instances

    def test_hijacked_run_is_undone_and_redone(self):
        sc = build_web_app()
        report = sc.heal_now()
        assert sc.hijacked_uid in report.undone
        # Bob's forged add is re-executed with the genuine quantity.
        assert sc.store.read("sess_bob") == 0
        assert sc.store.read("echo_b1") == 1

    def test_summary_reflects_state(self):
        sc = build_web_app()
        before = sc.summary()
        assert "inventory=7" in before
        sc.heal_now()
        after = sc.summary()
        assert "inventory=86" in after and "carol=0" in after
