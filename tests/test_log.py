"""Unit tests for the system log."""

import pytest

from repro.errors import LogError
from repro.workflow.log import RecordKind, SystemLog
from repro.workflow.task import TaskInstance


def commit(log, wf, task, n=1, reads=None, writes=None, chosen=None,
           kind=RecordKind.NORMAL):
    return log.commit(
        TaskInstance(wf, task, n),
        reads=reads or {},
        writes=writes or {},
        chosen=chosen,
        kind=kind,
    )


class TestCommit:
    def test_sequence_numbers_increase(self):
        log = SystemLog()
        r1 = commit(log, "w", "t1")
        r2 = commit(log, "w", "t2")
        assert (r1.seq, r2.seq) == (0, 1)
        assert len(log) == 2

    def test_duplicate_normal_commit_rejected(self):
        log = SystemLog()
        commit(log, "w", "t1")
        with pytest.raises(LogError, match="already committed"):
            commit(log, "w", "t1")

    def test_recovery_kinds_may_recur(self):
        log = SystemLog()
        commit(log, "w", "t1")
        commit(log, "w", "t1", kind=RecordKind.UNDO)
        commit(log, "w", "t1", kind=RecordKind.REDO)
        commit(log, "w", "t1", kind=RecordKind.UNDO)  # second pass
        assert len(log.records(RecordKind.UNDO)) == 2

    def test_unknown_kind_rejected(self):
        log = SystemLog()
        with pytest.raises(LogError, match="unknown record kind"):
            commit(log, "w", "t1", kind="banana")

    def test_contains_checks_normal_records_only(self):
        log = SystemLog()
        commit(log, "w", "t1", kind=RecordKind.UNDO)
        assert "w/t1#1" not in log
        commit(log, "w", "t1")
        assert "w/t1#1" in log


class TestQueries:
    def test_precedence_follows_commit_order(self):
        log = SystemLog()
        commit(log, "a", "t1")
        commit(log, "b", "t9")
        assert log.precedes("a/t1#1", "b/t9#1")
        assert not log.precedes("b/t9#1", "a/t1#1")

    def test_trace_filters_by_workflow_and_kind(self):
        log = SystemLog()
        commit(log, "a", "t1")
        commit(log, "b", "t7")
        commit(log, "a", "t2")
        commit(log, "a", "t1", kind=RecordKind.REDO)
        trace = log.trace("a")
        assert [str(r.instance) for r in trace] == ["t1", "t2"]

    def test_succ_is_within_own_trace(self):
        # Reproduces the paper: succ(t2) in L1 excludes other workflows.
        log = SystemLog()
        commit(log, "wf1", "t1")
        commit(log, "wf2", "t7")
        commit(log, "wf1", "t2")
        commit(log, "wf2", "t8")
        commit(log, "wf1", "t3")
        succ = log.succ("wf1/t2#1")
        assert [r.uid for r in succ] == ["wf1/t3#1"]

    def test_workflow_instances_in_first_appearance_order(self):
        log = SystemLog()
        commit(log, "b", "t1")
        commit(log, "a", "t1")
        commit(log, "b", "t2")
        assert log.workflow_instances() == ("b", "a")

    def test_writers_of_and_writer_of_version(self):
        log = SystemLog()
        commit(log, "w", "t1", writes={"x": 1})
        commit(log, "w", "t2", writes={"x": 2, "y": 0})
        assert [r.uid for r in log.writers_of("x")] == ["w/t1#1", "w/t2#1"]
        assert log.writer_of_version("x", 2).uid == "w/t2#1"
        assert log.writer_of_version("x", 0) is None  # pre-log version

    def test_get_missing_record_raises(self):
        log = SystemLog()
        with pytest.raises(LogError):
            log.get("w/t1#1")

    def test_records_filters_kind(self):
        log = SystemLog()
        commit(log, "w", "t1")
        commit(log, "w", "t1", kind=RecordKind.UNDO)
        assert len(log.records()) == 2
        assert len(log.normal_records()) == 1
        assert log.records(RecordKind.UNDO)[0].kind == RecordKind.UNDO
