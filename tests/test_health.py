"""Tests for the live SLO health monitor and model-conformance layer
(`repro.obs.health`): calibrated no-drift runs stay OK, an injected
λ step-change is flagged within a bounded number of events, merged
conformance verdicts are order-independent, and a flight log's verdict
stream replays bit for bit.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObsError
from repro.markov.stg import RecoverySTG
from repro.obs.events import (
    DriftDetected,
    EventBus,
    EventRecorder,
    QueueItemDropped,
    SloTransition,
)
from repro.obs.health import (
    ConformanceReport,
    HealthConfig,
    HealthMonitor,
    ModelPrediction,
    SloState,
    merge_conformance,
    replay_verdicts,
    wilson_interval,
)
from repro.sim.batch import run_gillespie_batch
from repro.sim.ctmc_sim import GillespieSimulator, run_replication


@pytest.fixture(scope="module")
def paper_stg():
    return RecoverySTG.paper_default()


@pytest.fixture(scope="module")
def paper_prediction(paper_stg):
    return ModelPrediction.from_stg(paper_stg)


class TestModelPrediction:
    def test_marginals_are_distributions(self, paper_prediction):
        assert sum(paper_prediction.alert_marginal) == pytest.approx(1.0)
        assert sum(paper_prediction.unit_marginal) == pytest.approx(1.0)

    def test_paper_loss_probability(self, paper_prediction):
        # Figure 4's calibrated point: lambda=1, buffer 15.
        assert paper_prediction.loss_probability == pytest.approx(
            0.00636, abs=2e-4
        )

    def test_occupancy_corr_time_positive(self, paper_prediction):
        assert paper_prediction.occupancy_corr_time > 0.0

    def test_as_dict_roundtrips_scalars(self, paper_prediction):
        d = paper_prediction.as_dict()
        assert d["loss_probability"] == paper_prediction.loss_probability
        assert d["occupancy_corr_time"] == (
            paper_prediction.occupancy_corr_time
        )


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(10, 100)
        assert low < 0.1 < high

    def test_zero_successes_has_positive_upper_bound(self):
        low, high = wilson_interval(0, 200)
        assert low == 0.0 and 0.0 < high < 0.05

    def test_no_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)


class TestConformantRuns:
    """The acceptance gate: on the calibrated Figure 4 workload the
    monitor reports OK with no drift alarms, and the CTMC-predicted
    loss lies inside the monitor's confidence interval."""

    def test_paper_workload_stays_ok(self, paper_stg, paper_prediction):
        for seed in range(3):
            result = run_replication(
                paper_stg, horizon=600.0, seed=seed,
                health=paper_prediction,
            )
            report = result.conformance
            assert report.drift_count == 0, report.drifts
            assert report.verdict is SloState.OK

    def test_predicted_loss_within_ci(self, paper_stg, paper_prediction):
        bus = EventBus()
        monitor = HealthMonitor(
            paper_prediction,
            config=HealthConfig(window=600.0),
        ).attach(bus)
        GillespieSimulator(paper_stg, random.Random(0), bus=bus).run(600.0)
        low, high = monitor.summary()["loss"]["ci"]
        assert low <= paper_prediction.loss_probability <= high

    def test_hot_workload_disarms_page_hinkley(self):
        # lambda=2 with buffer 8: the model's own marginal spans the
        # whole buffer, so depth carries no Page-Hinkley-separable
        # signal and arming it would false-alarm on conformant runs.
        hot = RecoverySTG.paper_default(arrival_rate=2.0, buffer_size=8)
        assert not HealthMonitor(ModelPrediction.from_stg(hot)).ph_armed

    def test_paper_workload_arms_page_hinkley(self, paper_prediction):
        assert HealthMonitor(paper_prediction).ph_armed


class TestStepChangeDetection:
    def test_lambda_step_flagged_within_bounded_time(
        self, paper_stg, paper_prediction
    ):
        """A mid-run arrival-rate step 1 -> 8 must be flagged as drift
        and breach the conformance SLO within 10 time units."""
        attack = RecoverySTG.paper_default(arrival_rate=8.0)
        for seed in range(3):
            monitor = HealthMonitor(paper_prediction).attach(EventBus())
            GillespieSimulator(
                paper_stg, random.Random(seed), bus=monitor.bus
            ).run(200.0)
            assert monitor.report().drift_count == 0
            bus = EventBus()
            recorder = EventRecorder().attach(bus)
            GillespieSimulator(
                attack, random.Random(seed + 500), bus=bus
            ).run(30.0)
            detected_at = None
            for event in recorder.events:
                monitor.handle(
                    dataclasses.replace(event, time=event.time + 200.0)
                )
                if monitor.report().drift_count and detected_at is None:
                    detected_at = event.time
            assert detected_at is not None and detected_at < 10.0
            assert monitor.report().verdict is SloState.BREACH

    def test_rate_decrease_also_detected(self, paper_stg,
                                         paper_prediction):
        quiet = RecoverySTG.paper_default(arrival_rate=0.2)
        monitor = HealthMonitor(paper_prediction).attach(EventBus())
        GillespieSimulator(
            paper_stg, random.Random(0), bus=monitor.bus
        ).run(200.0)
        bus = EventBus()
        recorder = EventRecorder().attach(bus)
        GillespieSimulator(quiet, random.Random(42), bus=bus).run(400.0)
        for event in recorder.events:
            monitor.handle(
                dataclasses.replace(event, time=event.time + 200.0)
            )
        drifts = monitor.report().drifts
        assert any(d[0] == "cusum-arrival" and d[3] == "rate-decrease"
                   for d in drifts)


def _synthetic_report(idx: int, state: str, drift: bool):
    return ConformanceReport(
        duration=100.0,
        arrivals=90 + idx,
        losses=idx,
        scans=80,
        recoveries=70,
        predicted_loss=0.00636,
        loss_objective=0.019,
        slo_states=(("loss", state), ("model-conformance", "OK")),
        slo_transitions=1 if state != "OK" else 0,
        drifts=(("cusum-arrival", 10.0 + idx, 25.0, "rate-increase"),)
        if drift else (),
    )


class TestMergeConformance:
    def test_empty_merge_rejected(self):
        with pytest.raises(ObsError):
            merge_conformance([])

    def test_counts_add_and_severity_wins(self):
        merged = merge_conformance([
            _synthetic_report(0, "OK", False),
            _synthetic_report(1, "BREACH", True),
            _synthetic_report(2, "WARN", False),
        ])
        assert merged.replications == 3
        assert merged.arrivals == 90 + 91 + 92
        assert merged.verdict is SloState.BREACH
        assert merged.drift_count == 1

    @settings(max_examples=50, deadline=None)
    @given(perm=st.permutations(list(range(6))))
    def test_merge_order_never_changes_verdict(self, perm):
        """The ISSUE's pinned property: merging per-replication windows
        in any order yields the identical verdict, drift set, and
        counters (the worker-count invariance of batch runs)."""
        reports = [
            _synthetic_report(i, ["OK", "WARN", "BREACH"][i % 3],
                              drift=(i % 2 == 0))
            for i in range(6)
        ]
        baseline = merge_conformance(reports)
        shuffled = merge_conformance([reports[i] for i in perm])
        assert shuffled.verdict is baseline.verdict
        assert shuffled.slo_states == baseline.slo_states
        assert shuffled.drifts == baseline.drifts
        assert shuffled.arrivals == baseline.arrivals
        assert shuffled.losses == baseline.losses
        assert shuffled.replications == baseline.replications


class TestBatchInvariance:
    def test_worker_count_preserves_conformance(self, paper_stg,
                                                paper_prediction):
        serial = run_gillespie_batch(
            paper_stg, horizon=100.0, replications=4, workers=1,
            seed=0, health=paper_prediction,
        )
        parallel = run_gillespie_batch(
            paper_stg, horizon=100.0, replications=4, workers=2,
            seed=0, health=paper_prediction,
        )
        assert serial.conformance == parallel.conformance


class TestReplayVerdicts:
    def test_gillespie_verdict_stream_replays_identically(self):
        # A lossy workload so SLO transitions and drifts actually
        # happen; the monitor is a pure function of the event stream,
        # so re-deriving from the recorded events must match exactly.
        stg = RecoverySTG.paper_default(arrival_rate=6.0, buffer_size=3)
        prediction = ModelPrediction.from_stg(stg)
        config = HealthConfig(loss_objective=0.01)  # far below reality
        bus = EventBus()
        recorder = EventRecorder().attach(bus)
        monitor = HealthMonitor(prediction, config=config).attach(bus)
        GillespieSimulator(stg, random.Random(2), bus=bus).run(150.0)
        recorded = [e for e in recorder.events
                    if isinstance(e, (SloTransition, DriftDetected))]
        assert recorded, "lossy run should produce verdict events"
        assert recorded == monitor.emitted
        replayed = replay_verdicts(recorder.events, prediction,
                                   config=config)
        assert replayed == recorded

    def test_fullstack_flight_log_replays_identically(self):
        from repro.obs.runner import run_fullstack_observed
        from repro.sim.fullstack import FullStackConfig

        cfg = FullStackConfig(arrival_rate=6.0, alert_buffer=3,
                              recovery_buffer=3)
        prediction = ModelPrediction.from_stg(cfg.stg())
        config = HealthConfig(loss_objective=0.01)
        run = run_fullstack_observed(
            cfg, horizon=80.0, seed=5, health=prediction,
            health_config=config,
        )
        recorded = list(run.monitor.emitted)
        assert recorded, "tight objective should force transitions"
        events = [e for e in run.events
                  if not isinstance(e, (SloTransition, DriftDetected))]
        assert replay_verdicts(events, prediction,
                               config=config) == recorded


class TestQueueDropEvents:
    def test_bounded_queue_publishes_typed_drop(self):
        from repro.ids.alerts import BoundedQueue

        bus = EventBus()
        recorder = EventRecorder().attach(bus)
        queue = BoundedQueue(capacity=2)
        queue.instrument("alert", bus, lambda: 3.5)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        drops = [e for e in recorder.events
                 if isinstance(e, QueueItemDropped)]
        assert len(drops) == 1
        drop = drops[0]
        assert drop.queue == "alert"
        assert drop.depth == 2
        assert drop.lost_total == 1
        assert drop.time == 3.5
