"""Unit tests for the generic CTMC class."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.markov.ctmc import CTMC


def two_state(a=2.0, b=3.0):
    """On ↔ off chain with rates a (on→off) and b (off→on)."""
    return CTMC.from_rates(["on", "off"], {("on", "off"): a,
                                           ("off", "on"): b})


class TestConstruction:
    def test_from_rates_builds_generator(self):
        chain = two_state()
        q = chain.generator
        assert q[chain.index_of("on"), chain.index_of("off")] == 2.0
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_rate_and_exit_rate(self):
        chain = two_state(a=2.0, b=3.0)
        assert chain.rate("on", "off") == 2.0
        assert chain.exit_rate("on") == 2.0
        assert chain.exit_rate("off") == 3.0

    def test_diagonal_query_rejected(self):
        with pytest.raises(ModelError):
            two_state().rate("on", "on")

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_rates(["a", "b"], {("a", "b"): -1.0})

    def test_self_transition_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_rates(["a"], {("a", "a"): 1.0})

    def test_unknown_state_in_rates_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_rates(["a"], {("a", "ghost"): 1.0})

    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelError):
            CTMC(["a", "a"], np.zeros((2, 2)))

    def test_bad_row_sum_rejected(self):
        q = np.array([[0.0, 1.0], [0.0, 0.0]])  # row 0 sums to 1
        with pytest.raises(ModelError, match="sum to 0"):
            CTMC(["a", "b"], q)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            CTMC(["a", "b"], np.zeros((3, 3)))

    def test_parallel_edges_accumulate(self):
        chain = CTMC.from_rates(
            ["a", "b"],
            {("a", "b"): 1.0},
        )
        assert chain.rate("a", "b") == 1.0


class TestDistributions:
    def test_point_distribution(self):
        chain = two_state()
        pi = chain.point_distribution("off")
        assert pi[chain.index_of("off")] == 1.0
        assert pi.sum() == 1.0

    def test_validate_distribution(self):
        chain = two_state()
        chain.validate_distribution(np.array([0.5, 0.5]))
        with pytest.raises(ModelError):
            chain.validate_distribution(np.array([0.9, 0.9]))
        with pytest.raises(ModelError):
            chain.validate_distribution(np.array([1.5, -0.5]))
        with pytest.raises(ModelError):
            chain.validate_distribution(np.array([1.0]))

    def test_uniformization_rate_dominates_diagonal(self):
        chain = two_state(a=2.0, b=7.0)
        assert chain.uniformization_rate() >= 7.0

    def test_len_and_states(self):
        chain = two_state()
        assert len(chain) == 2 and chain.n_states == 2
        assert chain.states == ["on", "off"]

    def test_index_of_unknown_state(self):
        with pytest.raises(ModelError):
            two_state().index_of("ghost")
