"""Acceptance tests for the flight recorder + provenance replay.

The contract under test (ISSUE 3): for the Figure 1 scenario and a
bursty full-stack run, ``replay(record(run))`` reproduces the recovery
plan, the Theorem 3/4 partial order, and the final metrics snapshot
**bit-for-bit** from the log alone; the exported Chrome-trace JSON is
schema-valid; and ``explain`` walks a real causal chain.
"""

import json

import pytest

from repro.errors import ObsError
from repro.obs.events import (
    ActionDispatched,
    OrderConstraint,
    RedoDecision,
    UndoDecision,
)
from repro.obs.export import render_prometheus, spans_to_chrome_trace
from repro.obs.provenance import build_span_tree, explain, replay
from repro.obs.recorder import FlightRecorder, read_flight_log
from repro.obs.runner import run_figure1_observed, run_fullstack_observed
from repro.sim.fullstack import FullStackConfig

BURSTY = FullStackConfig(arrival_rate=4.0, alert_buffer=3,
                         recovery_buffer=3)


def record_figure1():
    flight = FlightRecorder(label="figure1", meta={"false_alarms": 2})
    run = run_figure1_observed(flight=flight)
    flight.close()
    return read_flight_log(flight.text()), run


def record_fullstack(config=BURSTY, horizon=30.0, seed=3):
    flight = FlightRecorder(
        label="fullstack",
        meta={"seed": seed, "horizon": horizon},
    )
    run = run_fullstack_observed(config, horizon=horizon, seed=seed,
                                 flight=flight)
    flight.close()
    return read_flight_log(flight.text()), run


class TestRoundTrip:
    """replay(record(run)) == run, bit for bit."""

    @pytest.mark.parametrize("record", [record_figure1,
                                        record_fullstack],
                             ids=["figure1", "bursty-fullstack"])
    def test_metrics_snapshot_bit_for_bit(self, record):
        log, live = record()
        replayed = replay(log)
        assert render_prometheus(replayed.metrics.registry) == \
            render_prometheus(live.metrics.registry)
        assert replayed.metrics.summary_rows() == \
            live.metrics.summary_rows()

    @pytest.mark.parametrize("record", [record_figure1,
                                        record_fullstack],
                             ids=["figure1", "bursty-fullstack"])
    def test_plan_order_and_schedule_match_live_events(self, record):
        log, live = record()
        replayed = replay(log)
        # The replayed provenance equals what the live bus published.
        live_undo = [e for e in live.events
                     if isinstance(e, UndoDecision)]
        live_redo = [e for e in live.events
                     if isinstance(e, RedoDecision)]
        live_edges = {(e.rule, e.before, e.after) for e in live.events
                      if isinstance(e, OrderConstraint)}
        live_schedule = tuple(e.action for e in live.events
                              if isinstance(e, ActionDispatched))
        assert replayed.undo_decisions == live_undo
        assert replayed.redo_decisions == live_redo
        assert replayed.order_edges == live_edges
        assert replayed.schedule == live_schedule

    def test_figure1_plan_sets(self):
        log, _ = record_figure1()
        run = replay(log)
        assert run.plan_undo == {"wf1/t1#1", "wf1/t2#1", "wf1/t4#1",
                                 "wf2/t8#1", "wf2/t10#1"}
        assert run.undo_candidates == {"wf1/t3#1", "wf1/t6#1"}
        assert run.plan_redo == {"wf1/t1#1", "wf1/t2#1", "wf2/t8#1",
                                 "wf2/t10#1"}  # t4 not definitely redone
        assert run.order_edges and run.schedule
        # Definite undos were all executed; log and plan agree.
        assert run.plan_undo <= set(run.executed_undone)
        # Single heal, no task reuse: the realized schedule respects
        # every replayed Theorem 3/4 edge (across multiple heals the
        # same action string can recur, so this global check is only
        # sound here).
        position = {a: i for i, a in enumerate(run.schedule)}
        constrained = 0
        for _, before, after in run.order_edges:
            if before in position and after in position:
                assert position[before] < position[after]
                constrained += 1
        assert constrained > 0

    def test_recording_is_deterministic(self):
        (log_a, _), (log_b, _) = record_fullstack(), record_fullstack()
        text = lambda log: "\n".join(  # noqa: E731
            e.kind + repr(sorted(e.to_dict().items()))
            for e in log.events
        )
        assert text(log_a) == text(log_b)
        assert log_a.header == log_b.header


class TestChromeTrace:
    @pytest.mark.parametrize("record", [record_figure1,
                                        record_fullstack],
                             ids=["figure1", "bursty-fullstack"])
    def test_trace_json_is_schema_valid(self, record):
        log, _ = record()
        doc = json.loads(
            spans_to_chrome_trace(build_span_tree(log), log.events)
        )
        events = doc["traceEvents"]
        assert events
        for entry in events:
            assert entry["ph"] in {"X", "B", "i"}
            assert isinstance(entry["ts"], (int, float))
            assert isinstance(entry["pid"], int)
            if entry["ph"] == "X":
                assert entry["dur"] >= 0
        # One root "run" span plus at least one state dwell.
        names = [e["name"] for e in events]
        assert "run" in names
        assert any(n.startswith("state:") for n in names)

    def test_span_tree_covers_run_and_heals(self):
        log, live = record_figure1()
        (root,) = build_span_tree(log)
        assert root.name == "run" and root.finished
        heals = [s for s in root.children if s.name == "heal"]
        assert heals and all(s.finished for s in heals)
        assert all(root.start <= s.start and s.end <= root.end
                   for s in heals)


class TestExplain:
    def test_stale_read_chain(self):
        log, _ = record_figure1()
        text = explain(log, "wf1/t6#1")
        assert text.splitlines()[0] == "wf1/t6#1"
        assert "undo[T1.4]: stale-read candidate" in text
        assert "via" in text and "through objects" in text

    def test_directly_malicious_chain(self):
        log, _ = record_figure1()
        text = explain(log, "wf1/t1#1")
        assert "alert: reported malicious by the IDS" in text
        assert "undo[T1.1]: directly malicious" in text
        assert "executed: undone" in text

    def test_flow_infected_task_names_its_path(self):
        log, _ = record_figure1()
        text = explain(log, "wf1/t2#1")
        assert "undo[T1.3]: infected via data flow" in text
        assert "redo[" in text
        assert "scheduled: " in text

    def test_unknown_uid_raises(self):
        log, _ = record_figure1()
        with pytest.raises(ObsError, match="never mentions"):
            explain(log, "wf9/nope#1")
