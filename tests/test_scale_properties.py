"""Property-based tests (hypothesis) on the scale layer.

Random valid ``(λ, μ1, ξ1, buffer)`` configurations drive the sparse
solver path, checking the invariants that must hold for *every* chain,
not just the paper's presets:

- the sparse steady state is a probability vector (non-negative,
  sums to 1);
- the loss probability lies in ``[0, 1]``, and with constant service
  rates (the no-degradation limit of Figure 4(a)'s regime) it is
  monotone non-increasing in the buffer size — more buffer never hurts
  when service rates do not degrade;
- replication seed streams are pairwise distinct and
  order-independent (the seed of replication ``i`` depends only on
  ``(base, i)``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.markov.backend import sparse_available
from repro.markov.degradation import constant
from repro.markov.metrics import loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG
from repro.scenarios.generate import buffers, lambdas, service_rates
from repro.sim.batch import spawn_seeds

needs_scipy = pytest.mark.skipif(
    not sparse_available(), reason="scipy not available"
)


@needs_scipy
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lam=lambdas, mu1=service_rates, xi1=service_rates, buf=buffers)
def test_sparse_steady_state_is_probability_vector(
    lam: float, mu1: float, xi1: float, buf: int
) -> None:
    stg = RecoverySTG.paper_default(
        arrival_rate=lam, mu1=mu1, xi1=xi1, buffer_size=buf
    )
    pi = steady_state(stg.ctmc(), backend="sparse")
    assert (pi >= 0).all()
    assert pi.sum() == pytest.approx(1.0, abs=1e-9)
    lp = loss_probability(stg, pi)
    assert 0.0 <= lp <= 1.0


@needs_scipy
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lam=lambdas, mu1=service_rates, xi1=service_rates,
       buf=st.integers(min_value=1, max_value=8))
def test_loss_monotone_in_buffer_without_degradation(
    lam: float, mu1: float, xi1: float, buf: int
) -> None:
    """The limit of Figure 4(a)'s regime: with constant service rates
    (no degradation at all), a bigger buffer never increases the loss
    probability.  Any actual degradation — even ``1/k^0.05`` — breaks
    this under heavy load (the Figure 4(b) U-shape in embryo), so
    constant rates are the exact boundary of the property."""

    def loss_at(buffer_size: int) -> float:
        stg = RecoverySTG(
            arrival_rate=lam,
            scan=constant(mu1),
            recovery=constant(xi1),
            recovery_buffer=buffer_size,
        )
        return loss_probability(
            stg, steady_state(stg.ctmc(), backend="sparse")
        )

    smaller, larger = loss_at(buf), loss_at(buf + 1)
    assert larger <= smaller + 1e-9


@settings(max_examples=50, deadline=None)
@given(base=st.integers(min_value=0, max_value=2**31 - 1),
       n=st.integers(min_value=2, max_value=64))
def test_seed_streams_pairwise_distinct(base: int, n: int) -> None:
    seeds = spawn_seeds(base, n)
    assert len(set(seeds)) == n


@settings(max_examples=50, deadline=None)
@given(base=st.integers(min_value=0, max_value=2**31 - 1),
       m=st.integers(min_value=1, max_value=16),
       extra=st.integers(min_value=1, max_value=16))
def test_seed_streams_order_independent(
    base: int, m: int, extra: int
) -> None:
    """Growing the replication count never changes earlier seeds."""
    assert spawn_seeds(base, m) == spawn_seeds(base, m + extra)[:m]


class TestObservedBatchWorkerInvariance:
    """Worker-count invariance must extend to the observability
    outputs: flight-recorder files and merged metrics, not just the
    numeric results, have to be identical for ``workers=K`` and
    ``workers=1``."""

    REPLICATIONS = 3
    HORIZON = 20.0
    SEED = 7

    def _run(self, tmp_path, workers: int, tag: str):
        from repro.sim.batch import run_fullstack_batch
        from repro.sim.fullstack import FullStackConfig

        record_dir = str(tmp_path / f"rec-{tag}")
        batch = run_fullstack_batch(
            FullStackConfig(arrival_rate=2.0, alert_buffer=3,
                            recovery_buffer=3),
            horizon=self.HORIZON, replications=self.REPLICATIONS,
            workers=workers, seed=self.SEED, record_dir=record_dir,
        )
        logs = {
            p.name: p.read_bytes()
            for p in sorted((tmp_path / f"rec-{tag}").iterdir())
        }
        return batch, logs

    def test_recorder_files_and_metrics_identical(self, tmp_path) -> None:
        from repro.obs.export import render_prometheus
        from repro.obs.metrics import PipelineMetrics
        from repro.obs.provenance import replay
        from repro.obs.recorder import read_flight_log

        serial, serial_logs = self._run(tmp_path, 1, "serial")
        parallel, parallel_logs = self._run(tmp_path, 2, "parallel")

        assert serial.seeds == parallel.seeds
        assert [r.attacks for r in serial.results] == \
            [r.attacks for r in parallel.results]
        assert sorted(serial_logs) == \
            [f"rep-{i:04d}.jsonl" for i in range(self.REPLICATIONS)]
        # The flight logs carry only simulated time, so parallelism
        # must not change a single byte.
        assert serial_logs == parallel_logs

        def merged(logs) -> str:
            metrics = PipelineMetrics()
            for name in sorted(logs):
                run = replay(read_flight_log(logs[name].decode()))
                for state in run.metrics.dwell_states():
                    metrics.observe_dwell(
                        state, run.metrics.time_in_state(state)
                    )
                metrics.alerts_enqueued.inc(
                    run.metrics.alerts_enqueued.value
                )
                metrics.alerts_lost.inc(run.metrics.alerts_lost.value)
            return render_prometheus(metrics.registry)

        assert merged(serial_logs) == merged(parallel_logs)
