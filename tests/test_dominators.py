"""Unit tests for dominator analysis and unavoidable nodes."""

from repro.workflow.dominators import branch_nodes, dominators, unavoidable_nodes
from repro.workflow.spec import workflow


def figure1_wf1():
    """Graph shape of the paper's workflow 1 (bodies irrelevant here)."""
    return (
        workflow("wf1")
        .task("t1").task("t2", choose=lambda d: "t3")
        .task("t3").task("t4").task("t5").task("t6")
        .edge("t1", "t2").edge("t2", "t3").edge("t3", "t4")
        .edge("t4", "t6").edge("t2", "t5").edge("t5", "t6")
        .build()
    )


class TestDominators:
    def test_linear_chain_everything_dominates_downstream(self):
        spec = (workflow("w").task("a").task("b").task("c")
                .chain("a", "b", "c").build())
        dom = dominators(spec)
        assert dom["c"] == frozenset({"a", "b", "c"})
        assert dom["a"] == frozenset({"a"})

    def test_diamond_arms_not_dominators_of_join(self, diamond_spec):
        dom = dominators(diamond_spec)
        assert dom["e"] == frozenset({"a", "b", "e"})
        assert dom["c"] == frozenset({"a", "b", "c"})

    def test_figure1_branch_dominates_arms(self):
        dom = dominators(figure1_wf1())
        for node in ("t3", "t4", "t5"):
            assert "t2" in dom[node]
        assert dom["t6"] >= frozenset({"t1", "t2", "t6"})
        assert "t3" not in dom["t6"]

    def test_cyclic_graph_converges(self):
        spec = (
            workflow("loop")
            .task("s")
            .task("b", choose=lambda d: "b")
            .task("e")
            .edge("s", "b").edge("b", "b").edge("b", "e")
            .build()
        )
        dom = dominators(spec)
        assert dom["e"] == frozenset({"s", "b", "e"})


class TestUnavoidable:
    def test_linear_chain_all_unavoidable(self):
        spec = (workflow("w").task("a").task("b").task("c")
                .chain("a", "b", "c").build())
        assert unavoidable_nodes(spec) == frozenset({"a", "b", "c"})

    def test_diamond_arms_avoidable(self, diamond_spec):
        assert unavoidable_nodes(diamond_spec) == frozenset({"a", "b", "e"})

    def test_figure1_wf1(self):
        ua = unavoidable_nodes(figure1_wf1())
        assert ua == frozenset({"t1", "t2", "t6"})

    def test_multiple_end_nodes(self):
        spec = (
            workflow("w")
            .task("a", choose=lambda d: "b")
            .task("b").task("c")
            .edge("a", "b").edge("a", "c")
            .build()
        )
        # Neither end is on all paths; only the start is unavoidable.
        assert unavoidable_nodes(spec) == frozenset({"a"})


class TestBranchNodes:
    def test_matches_spec_property(self, diamond_spec):
        assert branch_nodes(diamond_spec) == diamond_spec.branch_nodes == (
            frozenset({"b"})
        )
