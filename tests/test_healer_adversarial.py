"""Adversarial healer tests: crafted dependency patterns.

Each test builds a log shaped to stress one rule of the recovery
theory — anti-dependences, output-dependences, malicious branch nodes,
re-converging diamonds, read-your-write chains, multiple malicious
tasks — and checks both the exact recovery outcome and Definition 2.
"""

import pytest

from repro.core.axioms import audit_strict_correctness
from repro.core.healer import Healer
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import workflow


def heal_and_audit(store, log, engine, malicious, initial,
                   forged_runs=()):
    healer = Healer(store, log, engine.specs_by_instance)
    report = healer.heal(malicious, forged_runs=forged_runs)
    audit = audit_strict_correctness(
        {
            wf: spec
            for wf, spec in engine.specs_by_instance.items()
            if wf not in set(forged_runs)
        },
        initial, report.final_history, store.snapshot(),
    )
    assert audit.ok, audit.problems
    return report


class TestAntiDependence:
    def test_reader_before_corrupt_overwriter_kept(self):
        """r reads x; later the attacker's task overwrites x.  The
        reader's work is untouched (it read the pre-attack value); only
        the overwrite is repaired (rule T3.4's scenario)."""
        reader = (
            workflow("reader")
            .task("use", reads=["x"], writes=["a"],
                  compute=lambda d: {"a": d["x"] + 1})
            .build()
        )
        writer = (
            workflow("writer")
            .task("bump", reads=["x"], writes=["x"],
                  compute=lambda d: {"x": d["x"] * 2})
            .build()
        )
        initial = {"x": 10, "a": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        engine.run_to_completion(engine.new_run(reader, "R"))
        campaign = AttackCampaign().corrupt_task("bump", x=-999)
        engine.run_to_completion(engine.new_run(writer, "W"),
                                 tamper=campaign)
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert "R/use#1" in report.kept
        assert "W/bump#1" in report.redone
        assert store.read("x") == 20 and store.read("a") == 11

    def test_redo_reads_pre_attack_value_not_later_write(self):
        """The malicious task's redo must read what it originally read
        (the settled view), not a value written after it."""
        first = (
            workflow("first")
            .task("f", reads=["x"], writes=["y"],
                  compute=lambda d: {"y": d["x"] + 1})
            .build()
        )
        second = (
            workflow("second")
            .task("s", reads=[], writes=["x"],
                  compute=lambda d: {"x": 1000})
            .build()
        )
        initial = {"x": 5, "y": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = AttackCampaign().corrupt_task("f", y=-1)
        engine.run_to_completion(engine.new_run(first, "F"),
                                 tamper=campaign)
        engine.run_to_completion(engine.new_run(second, "S"))
        assert store.read("x") == 1000
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        # redo(f) must have used x=5 (its position), not x=1000.
        assert store.read("y") == 6
        assert "S/s#1" in report.kept
        assert store.read("x") == 1000


class TestOutputDependence:
    def test_two_malicious_writers_same_object(self):
        """Both writers of x are malicious; after healing, x must hold
        the second redo's (correct) value — rule T3.5's ordering,
        realized through settle order."""
        w1 = (
            workflow("w1")
            .task("a", reads=["base"], writes=["x"],
                  compute=lambda d: {"x": d["base"] + 1})
            .build()
        )
        w2 = (
            workflow("w2")
            .task("b", reads=["base"], writes=["x"],
                  compute=lambda d: {"x": d["base"] + 2})
            .build()
        )
        initial = {"base": 10, "x": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = (
            AttackCampaign()
            .corrupt_task("a", x=-111)
            .corrupt_task("b", x=-222)
        )
        engine.run_to_completion(engine.new_run(w1, "W1"),
                                 tamper=campaign)
        engine.run_to_completion(engine.new_run(w2, "W2"),
                                 tamper=campaign)
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert store.read("x") == 12   # the later (clean) write wins
        assert set(report.redone) == {"W1/a#1", "W2/b#1"}

    def test_clean_overwrite_survives_undo(self):
        """bad writes x, then a clean independent task overwrites x:
        undoing the bad write must not clobber the clean value."""
        bad = (
            workflow("bad")
            .task("evil", reads=[], writes=["x"],
                  compute=lambda d: {"x": 1})
            .build()
        )
        good = (
            workflow("good")
            .task("fix", reads=["base"], writes=["x"],
                  compute=lambda d: {"x": d["base"] * 5})
            .build()
        )
        initial = {"base": 4, "x": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = AttackCampaign().corrupt_task("evil", x=-7)
        engine.run_to_completion(engine.new_run(bad, "B"),
                                 tamper=campaign)
        engine.run_to_completion(engine.new_run(good, "G"))
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert store.read("x") == 20
        assert "G/fix#1" in report.kept


class TestMaliciousBranchNode:
    def test_attacked_decision_maker_flips_path(self):
        """The branch node itself is the malicious task — recovery must
        redo it and follow the corrected decision."""
        spec = (
            workflow("gate")
            .task("decide", reads=["score"], writes=["grade"],
                  compute=lambda d: {"grade": 1 if d["score"] > 50
                                     else 0},
                  choose=lambda d: "accept" if d["grade"] else "reject")
            .task("accept", reads=[], writes=["result"],
                  compute=lambda d: {"result": 1})
            .task("reject", reads=[], writes=["result"],
                  compute=lambda d: {"result": -1})
            .edge("decide", "accept").edge("decide", "reject")
            .build()
        )
        initial = {"score": 30, "grade": 0, "result": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = AttackCampaign().corrupt_task("decide", grade=1)
        engine.run_to_completion(engine.new_run(spec, "G"),
                                 tamper=campaign)
        assert store.read("result") == 1  # wrongly accepted
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert store.read("result") == -1
        assert "G/accept#1" in report.abandoned
        assert "G/reject#1" in report.new_executions


class TestDiamondRejoin:
    def test_rejoin_task_redone_once_at_its_position(self):
        """Path flips from one arm to the other; the join task (present
        in the original trace) must be redone exactly once, not
        duplicated inline."""
        spec = (
            workflow("d")
            .task("split", reads=["v"], writes=["w"],
                  compute=lambda d: {"w": d["v"]},
                  choose=lambda d: "left" if d["w"] % 2 == 0 else "right")
            .task("left", reads=[], writes=["arm"],
                  compute=lambda d: {"arm": 100})
            .task("right", reads=[], writes=["arm"],
                  compute=lambda d: {"arm": 200})
            .task("join", reads=["arm"], writes=["total"],
                  compute=lambda d: {"total": d["arm"] + 1})
            .edge("split", "left").edge("split", "right")
            .edge("left", "join").edge("right", "join")
            .build()
        )
        initial = {"v": 3, "w": 0, "arm": 0, "total": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = AttackCampaign().corrupt_task("split", w=2)
        engine.run_to_completion(engine.new_run(spec, "D"),
                                 tamper=campaign)
        assert store.read("arm") == 100  # wrong arm
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert store.read("arm") == 200 and store.read("total") == 201
        assert report.redone.count("D/join#1") == 1
        assert "D/join#1" not in report.new_executions
        assert "D/left#1" in report.abandoned


class TestDeepChains:
    def test_ten_stage_contamination_chain(self):
        """A 10-deep read chain: corruption at the head must propagate
        to a full-redo of the chain, nothing more, nothing less."""
        builder = workflow("chain")
        builder.task("t0", reads=["seed"], writes=["v0"],
                     compute=lambda d: {"v0": d["seed"]})
        for i in range(1, 10):
            builder.task(
                f"t{i}", reads=[f"v{i-1}"], writes=[f"v{i}"],
                compute=lambda d, _i=i: {f"v{_i}": d[f"v{_i-1}"] + 1},
            )
        builder.chain(*[f"t{i}" for i in range(10)])
        spec = builder.build()
        initial = {"seed": 1}
        initial.update({f"v{i}": 0 for i in range(10)})
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = AttackCampaign().corrupt_task("t0", v0=500)
        engine.run_to_completion(engine.new_run(spec, "C"),
                                 tamper=campaign)
        assert store.read("v9") == 509
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert store.read("v9") == 10
        assert len(report.redone) == 10
        assert report.kept == ()


class TestMultipleMaliciousSameWorkflow:
    def test_two_attacks_one_trace(self):
        spec = (
            workflow("w")
            .task("a", reads=["s"], writes=["p"],
                  compute=lambda d: {"p": d["s"] + 1})
            .task("b", reads=["p"], writes=["q"],
                  compute=lambda d: {"q": d["p"] * 2})
            .task("c", reads=["q"], writes=["r"],
                  compute=lambda d: {"r": d["q"] - 3})
            .chain("a", "b", "c")
            .build()
        )
        initial = {"s": 4, "p": 0, "q": 0, "r": 0}
        store, log = DataStore(initial), SystemLog()
        engine = Engine(store, log)
        campaign = (
            AttackCampaign()
            .corrupt_task("a", p=70)
            .corrupt_task("c", r=80)
        )
        engine.run_to_completion(engine.new_run(spec, "W"),
                                 tamper=campaign)
        report = heal_and_audit(store, log, engine,
                                campaign.malicious_uids, initial)
        assert store.read("r") == (4 + 1) * 2 - 3
        assert set(report.redone) == {"W/a#1", "W/b#1", "W/c#1"}
