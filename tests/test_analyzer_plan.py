"""Tests for the recovery analyzer and recovery plans."""

import random

import pytest

from repro.core.actions import Action, ActionKind
from repro.core.analyzer import RecoveryAnalyzer
from repro.ids.alerts import Alert


@pytest.fixture
def fig1_plan(figure1):
    analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
    plan = analyzer.analyze([Alert(0.0, figure1.malicious_uid)])
    return figure1, analyzer, plan


class TestRecoveryAnalyzer:
    def test_plan_covers_definite_damage(self, fig1_plan):
        figure1, analyzer, plan = fig1_plan
        undo_uids = {a.uid for a in plan.undo_actions}
        assert undo_uids == {
            "wf1/t1#1", "wf1/t2#1", "wf1/t4#1", "wf2/t8#1", "wf2/t10#1"
        }

    def test_plan_redo_actions_definite_only(self, fig1_plan):
        figure1, analyzer, plan = fig1_plan
        redo_uids = {a.uid for a in plan.redo_actions}
        # t4 is a candidate redo (control dependent on bad t2), so it is
        # not in the definite schedule.
        assert redo_uids == {
            "wf1/t1#1", "wf1/t2#1", "wf2/t8#1", "wf2/t10#1"
        }

    def test_units_count_alerts(self, figure1):
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        plan = analyzer.analyze(
            [Alert(0.0, figure1.malicious_uid), Alert(1.0, "wf2/t7#1")]
        )
        assert plan.units == 2
        assert plan.alert_uids == (figure1.malicious_uid, "wf2/t7#1")

    def test_accepts_bare_uids(self, figure1):
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        plan = analyzer.analyze([figure1.malicious_uid])
        assert plan.units == 1

    def test_analysis_cost_grows_with_queue(self, figure1):
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        assert analyzer.analysis_cost(4) > analyzer.analysis_cost(1)

    def test_cross_unit_constraints_on_conflicts(self, figure1):
        """A new unit touching the same instances/objects as a queued
        unit is ordered after it (Section V-A's cross-checking work)."""
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        first = analyzer.analyze([figure1.malicious_uid])
        # The same alert again: total overlap ⇒ many constraints, all
        # pointing from the outstanding unit to the new one.
        second = analyzer.analyze(
            [figure1.malicious_uid], outstanding=[first]
        )
        assert second.cross_unit_constraints
        firsts = first.order.elements()
        seconds = second.order.elements()
        for prior, new in second.cross_unit_constraints:
            assert prior in firsts
            assert new in seconds

    def test_no_cross_unit_constraints_without_outstanding(self, figure1):
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        plan = analyzer.analyze([figure1.malicious_uid])
        assert plan.cross_unit_constraints == ()

    def test_disjoint_units_unconstrained(self, figure1):
        """Units about non-conflicting tasks need no cross ordering."""
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        # t7 writes only p; t3 reads c and writes u — no shared objects.
        first = analyzer.analyze(["wf2/t7#1"])
        second = analyzer.analyze(["wf1/t3#1"], outstanding=[first])
        shared_object_conflicts = [
            (p, n) for p, n in second.cross_unit_constraints
        ]
        assert not shared_object_conflicts

    def test_analyzer_never_mutates(self, figure1):
        snapshot = figure1.store.snapshot()
        n_records = len(figure1.log)
        analyzer = RecoveryAnalyzer(figure1.log, figure1.specs_by_instance)
        analyzer.analyze([figure1.malicious_uid])
        assert figure1.store.snapshot() == snapshot
        assert len(figure1.log) == n_records


class TestRecoveryPlan:
    def test_schedule_is_linear_extension(self, fig1_plan):
        figure1, analyzer, plan = fig1_plan
        schedule = plan.schedule()
        assert set(schedule) == set(plan.order.elements())
        for before, after in plan.order.edges():
            assert schedule.index(before) < schedule.index(after)

    def test_schedule_random_tiebreak_still_valid(self, fig1_plan):
        figure1, analyzer, plan = fig1_plan
        for seed in range(5):
            schedule = plan.schedule(rng=random.Random(seed))
            for before, after in plan.order.edges():
                assert schedule.index(before) < schedule.index(after)

    def test_total_actions_and_summary(self, fig1_plan):
        figure1, analyzer, plan = fig1_plan
        assert plan.total_actions == len(plan.undo_actions) + len(
            plan.redo_actions
        )
        text = plan.summary()
        assert "1 alerts" in text and "definite undo" in text
