"""The oracle-checked fuzzing harness.

Three concerns:

- **clean runs**: generated campaigns (single-tenant episodes and
  fleet campaigns alike) pass the composite oracle — the acceptance
  bar the CI smoke job enforces at larger scale;
- **fault injection**: a mutated analyzer is *caught* by the
  plan-verifier oracle, and the counterexample shrinks to a small
  campaign that is persisted as a replayable corpus file;
- **mechanics**: determinism of outcomes, shrinking semantics, and
  the report's machine-parseable summary line.
"""

import os

import pytest

from repro.errors import GenerationError
from repro.scenarios.fuzz import (
    fuzz,
    inject_mutation,
    load_campaign,
    run_campaign,
    shrink_campaign,
)
from repro.scenarios.generate import (
    AttackStep,
    CampaignSpec,
    SpecShape,
    generate_campaign,
)


# --------------------------------------------------------------------------
# Clean runs
# --------------------------------------------------------------------------


@pytest.mark.parametrize("index", range(8))
def test_generated_campaigns_pass_the_oracle(index):
    campaign = generate_campaign(0, index=index)
    outcome = run_campaign(campaign)
    assert outcome.ok, [v.render() for v in outcome.violations]


def test_campaign_outcomes_are_deterministic():
    campaign = generate_campaign(3, index=1)
    first = run_campaign(campaign)
    second = run_campaign(campaign)
    assert first.plans_checked == second.plans_checked
    assert first.heals == second.heals
    assert first.alerts == second.alerts


def test_fleet_campaign_runs_through_the_control_plane():
    campaign = generate_campaign(0, index=7)  # every 8th is fleet
    assert campaign.tenants > 1
    outcome = run_campaign(campaign)
    assert outcome.ok, [v.render() for v in outcome.violations]
    assert outcome.fleet is not None
    assert outcome.verdict


def test_fleet_campaign_rejects_plan_mutation():
    campaign = generate_campaign(0, index=7)
    with pytest.raises(GenerationError):
        run_campaign(campaign, mutation="drop-undo")


def test_small_fuzz_run_is_clean(tmp_path):
    report = fuzz(seed=0, max_campaigns=12,
                  corpus_dir=str(tmp_path / "corpus"))
    assert report.campaigns == 12
    assert report.violations == 0
    assert report.plans_checked > 0
    assert report.heals > 0
    assert report.corpus_files == []
    line = report.summary()
    assert "violations=0" in line and "campaigns=12" in line


# --------------------------------------------------------------------------
# Fault injection: the harness must catch a broken analyzer
# --------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["drop-undo", "extra-redo",
                                  "reverse-edge"])
def test_injected_mutation_is_caught(kind):
    campaign = generate_campaign(1, index=0)
    outcome = run_campaign(campaign, mutation=kind)
    assert outcome.mutated_plans > 0
    assert any(v.oracle == "plan-verifier" for v in outcome.violations)


def test_injected_mutation_shrinks_to_corpus_file(tmp_path):
    corpus = tmp_path / "corpus"
    report = fuzz(seed=0, max_campaigns=3, inject="drop-undo",
                  corpus_dir=str(corpus))
    assert report.caught == 3
    assert report.missed == 0
    assert report.violations == 3
    assert report.corpus_files
    # The shrunk counterexample is small and itself replayable.
    shrunk = load_campaign(report.corpus_files[0])
    assert shrunk.tenants == 1
    assert len(shrunk.steps) <= 2
    assert shrunk.shape.tasks_per_workflow <= 4
    replayed = run_campaign(shrunk, mutation="drop-undo")
    assert not replayed.ok
    # Without the fault, the same campaign is clean.
    assert run_campaign(shrunk).ok


def test_inject_mutation_restores_the_analyzer():
    from repro.core.analyzer import RecoveryAnalyzer

    original = RecoveryAnalyzer.analyze
    with inject_mutation("drop-undo"):
        assert RecoveryAnalyzer.analyze is not original
    assert RecoveryAnalyzer.analyze is original
    with pytest.raises(GenerationError):
        with inject_mutation("unknown-kind"):
            pass  # pragma: no cover
    assert RecoveryAnalyzer.analyze is original


def test_fuzz_rejects_unknown_mutation():
    with pytest.raises(GenerationError):
        fuzz(max_campaigns=1, inject="meltdown")


# --------------------------------------------------------------------------
# Shrinking
# --------------------------------------------------------------------------


def test_shrink_reaches_a_fixpoint_on_always_failing():
    campaign = CampaignSpec(
        seed=5,
        shape=SpecShape(n_workflows=3, tasks_per_workflow=7,
                        branch_probability=0.7, loop_probability=0.4,
                        n_shared_objects=3),
        stages=(
            (AttackStep(kind="corrupt", target=4, delta=9001),
             AttackStep(kind="false-alarm", target=1, count=3)),
            (AttackStep(kind="corrupt", target=2, delta=4242,
                        trigger="scan"),),
        ),
        tenants=1,
    )
    shrunk = shrink_campaign(campaign, lambda c: True)
    assert shrunk.shape.n_workflows == 1
    assert len(shrunk.stages) == 1
    assert len(shrunk.steps) == 1
    # Fully minimized: no further candidate fails either.
    again = shrink_campaign(shrunk, lambda c: True)
    assert again == shrunk


def test_shrink_preserves_the_failure_predicate():
    campaign = generate_campaign(2, index=0)
    wanted = campaign.steps[0].kind
    shrunk = shrink_campaign(
        campaign,
        lambda c: any(s.kind == wanted for s in c.steps),
    )
    assert any(s.kind == wanted for s in shrunk.steps)


def test_shrink_keeps_original_when_nothing_smaller_fails():
    campaign = generate_campaign(2, index=1)
    assert shrink_campaign(campaign, lambda c: c == campaign) == campaign


# --------------------------------------------------------------------------
# Budget plumbing
# --------------------------------------------------------------------------


def test_budget_mode_stops_on_time(tmp_path):
    report = fuzz(seed=1, budget_seconds=2.0,
                  corpus_dir=str(tmp_path / "corpus"))
    assert report.campaigns >= 1
    assert report.violations == 0
    assert report.elapsed <= 30.0  # sanity: budget was honoured


def test_progress_callback_fires():
    seen = []
    fuzz(seed=0, max_campaigns=25, multi_tenant_every=0,
         progress=seen.append)
    assert seen and seen[-1].campaigns == 25
