"""Tests for the static lockset / lock-order race analysis.

Each rule gets a minimal synthetic program that triggers it and a
near-identical program that does not; the mutation canary proves the
analysis catches a deleted registry lock in the *real* metrics module
(the dynamic twin of that canary lives in test_sanitizer.py).
"""

import pytest

from repro.lint.diagnostics import LintReport
from repro.lint.races import analyze_paths, analyze_sources, lint_races

THREADED_PREAMBLE = """\
import threading
"""


def rules_of(result):
    return sorted(d.rule for d in result.diagnostics)


def analyze(source, name="mod"):
    return analyze_sources({name: THREADED_PREAMBLE + source})


class TestRace001UnguardedWrite:
    SOURCE = """
class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        self._value += 1
"""

    def test_unguarded_write_flagged(self):
        result = analyze(self.SOURCE)
        assert "RACE001" in rules_of(result)
        (diag,) = [d for d in result.diagnostics if d.rule == "RACE001"]
        assert "_value" in diag.message

    def test_guarded_write_clean(self):
        fixed = self.SOURCE.replace(
            "        self._value += 1",
            "        with self._lock:\n            self._value += 1")
        assert rules_of(analyze(fixed)) == []

    def test_init_writes_exempt(self):
        # __init__ publishes before any thread can see the object.
        result = analyze(self.SOURCE)
        assert not any(d.rule == "RACE001" and "__init__" in (d.where or "")
                       for d in result.diagnostics)

    def test_lockless_class_not_in_scope(self):
        # No lock attr -> phase-confined by design; the static pass
        # leaves it to the dynamic sanitizer instead of crying wolf.
        source = """
class Bag:
    def __init__(self):
        self._value = 0

    def inc(self):
        self._value += 1
"""
        assert rules_of(analyze(source)) == []

    def test_helper_called_under_lock_clean(self):
        # Private helpers inherit the caller's lockset (must-hold
        # intersection over call sites) — the Gauge._set_locked shape.
        source = """
class Gauge:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value):
        with self._lock:
            self._set_locked(value)

    def _set_locked(self, value):
        self._value = value
"""
        assert rules_of(analyze(source)) == []


class TestRace002InconsistentGuard:
    SOURCE = """
class Split:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._v = 0

    def via_a(self):
        with self._a:
            self._v += 1

    def via_b(self):
        with self._b:
            self._v += 1
"""

    def test_two_different_locks_flagged(self):
        result = analyze(self.SOURCE)
        assert "RACE002" in rules_of(result)

    def test_consistent_lock_clean(self):
        fixed = self.SOURCE.replace("with self._b:", "with self._a:")
        assert rules_of(analyze(fixed)) == []


class TestRace003LockOrderInversion:
    SOURCE = """
class AB:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def ba(self):
        with self._b:
            with self._a:
                pass
"""

    def test_inverted_orders_flagged(self):
        result = analyze(self.SOURCE)
        assert "RACE003" in rules_of(result)

    def test_consistent_order_clean(self):
        fixed = self.SOURCE.replace(
            "        with self._b:\n            with self._a:\n",
            "        with self._a:\n            with self._b:\n")
        assert "RACE003" not in rules_of(analyze(fixed))

    def test_interprocedural_inversion(self):
        # a->b lexically, b->a through a call edge.
        source = """
class AB:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def outer(self):
        with self._b:
            self._grab_a()

    def _grab_a(self):
        with self._a:
            pass
"""
        assert "RACE003" in rules_of(analyze(source))


class TestRace004BlockingUnderLock:
    def test_wait_under_lock_flagged(self):
        source = """
class S:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Event()

    def stall(self):
        with self._lock:
            self._ready.wait()
"""
        assert "RACE004" in rules_of(analyze(source))

    def test_wait_outside_lock_clean(self):
        source = """
class S:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Event()

    def stall(self):
        with self._lock:
            pass
        self._ready.wait()
"""
        assert "RACE004" not in rules_of(analyze(source))


class TestRace005EscapeToThread:
    def test_bound_method_escape_flagged(self):
        source = """
class Spawner:
    def __init__(self):
        self.data = []

    def go(self):
        t = threading.Thread(target=self.handle)
        t.start()

    def handle(self):
        self.data.append(1)
"""
        assert "RACE005" in rules_of(analyze(source))

    def test_spawned_method_becomes_root(self):
        source = """
class Spawner:
    def __init__(self):
        self.data = []

    def go(self):
        t = threading.Thread(target=self.handle)
        t.start()

    def handle(self):
        self.data.append(1)
"""
        result = analyze(source)
        assert any("handle" in root.key for root in result.roots)


class TestPragmas:
    SOURCE = """
class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        self._value += 1{pragma}
"""

    def test_pragma_suppresses(self):
        noisy = self.SOURCE.format(pragma="")
        quiet = self.SOURCE.format(
            pragma="  # lint: allow[RACE001] owner-confined")
        assert "RACE001" in rules_of(analyze(noisy))
        assert rules_of(analyze(quiet)) == []

    def test_pragma_is_rule_specific(self):
        wrong = self.SOURCE.format(
            pragma="  # lint: allow[RACE003] unrelated rule")
        assert "RACE001" in rules_of(analyze(wrong))


class TestRealTree:
    def test_src_repro_is_clean(self):
        # Every intentional site carries a pragma; anything new that
        # fires here is a regression (or a new pragma decision).
        diags = lint_races(["src/repro"])
        assert diags == [], LintReport(diags).render_text()

    def test_roots_cover_fleet_and_server(self):
        result = analyze_paths(["src/repro"])
        keys = " ".join(root.key for root in result.roots)
        assert "serve" in keys       # fleet pool target
        assert "do_GET" in keys      # HTTP handler


class TestMutationCanary:
    """Deleting the registry lock must be caught statically (RACE001).

    The mutation rewrites every ``with self._lock:`` in the real
    metrics module to ``if True:`` — same indentation, same AST shape,
    no lock.  The class still *owns* the lock attribute, so the
    lock-discipline scoping keeps it in RACE001 scope.
    """

    def _metrics_source(self):
        with open("src/repro/obs/metrics.py", encoding="utf-8") as fh:
            return fh.read()

    def test_pristine_metrics_clean(self):
        result = analyze_sources(
            {"repro.obs.metrics": self._metrics_source()})
        assert rules_of(result) == []

    def test_deleted_registry_lock_flagged(self):
        mutated = self._metrics_source().replace(
            "with self._lock:", "if True:")
        assert "if True:" in mutated  # the mutation applied
        result = analyze_sources({"repro.obs.metrics": mutated})
        race1 = [d for d in result.diagnostics if d.rule == "RACE001"]
        assert race1, "deleted lock not caught"
        assert any("_metrics" in d.message for d in race1), (
            "registry._metrics writes not flagged: "
            + LintReport(result.diagnostics).render_text())


class TestSharedInventory:
    def test_shared_state_reported(self):
        result = analyze_paths(["src/repro/obs", "src/repro/fleet"])
        names = {entry for entry in result.shared}
        assert any("MetricsRegistry._metrics" in n for n in names)

    def test_lock_attrs_not_inventory(self):
        result = analyze_paths(["src/repro/obs"])
        assert not any(n.endswith("._lock") for n in result.shared)


class TestDiagnosticsPlumbing:
    def test_report_exit_code(self):
        source = """
class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        self._value += 1
"""
        result = analyze(source)
        report = LintReport(result.diagnostics)
        assert report.exit_code == 2  # RACE001 is ERROR

    def test_sarif_rule_metadata(self):
        source = """
class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        self._value += 1
"""
        result = analyze(source)
        sarif = LintReport(result.diagnostics).to_sarif(
            tool_name="repro-lint-races")
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint-races"
        assert any(r["id"] == "RACE001"
                   for r in run["tool"]["driver"]["rules"])
