"""Tests for CTMC calibration from measured analyzer/healer timings."""

import pytest

from repro.errors import ModelError
from repro.markov.calibration import (
    PowerLawFit,
    fit_power_law,
    measure_recovery_rates,
    measure_scan_rates,
)


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        rates = {k: 12.0 / k ** 0.7 for k in (1, 2, 4, 8, 16)}
        fit = fit_power_law(rates)
        assert fit.base == pytest.approx(12.0, rel=1e-6)
        assert fit.alpha == pytest.approx(0.7, abs=1e-6)
        assert fit.residual < 1e-9

    def test_constant_rates_give_zero_alpha(self):
        fit = fit_power_law({k: 5.0 for k in (1, 2, 4)})
        assert fit.alpha == pytest.approx(0.0, abs=1e-9)
        assert fit.base == pytest.approx(5.0)

    def test_noisy_rates_still_fit(self):
        rates = {1: 10.0, 2: 5.4, 4: 2.4, 8: 1.3}
        fit = fit_power_law(rates)
        assert 0.8 <= fit.alpha <= 1.2
        assert fit.residual < 0.2

    def test_as_rate_function(self):
        fit = PowerLawFit(base=10.0, alpha=1.0, residual=0.0)
        fn = fit.as_rate_function()
        assert fn(1) == 10.0
        assert fn(5) == pytest.approx(2.0)

    def test_negative_alpha_clamped_in_rate_function(self):
        # A (noisy) fit could come out slightly negative; the schedule
        # must stay non-increasing.
        fit = PowerLawFit(base=10.0, alpha=-0.05, residual=0.1)
        fn = fit.as_rate_function()
        assert fn(10) == fn(1)

    def test_validation(self):
        with pytest.raises(ModelError):
            fit_power_law({1: 5.0})
        with pytest.raises(ModelError):
            fit_power_law({1: 5.0, 2: 0.0})


class TestMeasurements:
    def test_scan_rates_measured_and_positive(self):
        rates = measure_scan_rates(batch_sizes=(1, 4), repeats=1)
        assert set(rates) == {1, 4}
        assert all(r > 0 for r in rates.values())

    def test_recovery_rates_measured_and_positive(self):
        rates = measure_recovery_rates(unit_counts=(1, 2), repeats=1)
        assert set(rates) == {1, 2}
        assert all(r > 0 for r in rates.values())
