"""Unit tests for the partial-order scheduler."""

import random

import pytest

from repro.errors import CyclicOrderError
from repro.workflow.precedence import PartialOrder
from repro.workflow.scheduler import PartialOrderScheduler


def diamond_order():
    po = PartialOrder()
    po.add_edge("a", "b")
    po.add_edge("a", "c")
    po.add_edge("b", "d")
    po.add_edge("c", "d")
    return po


class TestPartialOrderScheduler:
    def test_runs_everything_in_a_linear_extension(self):
        po = diamond_order()
        executed = []
        sched = PartialOrderScheduler(po, executed.append)
        order = sched.run()
        assert order == executed
        assert set(order) == {"a", "b", "c", "d"}
        for before, after in po.edges():
            assert order.index(before) < order.index(after)

    def test_step_returns_none_when_done(self):
        po = PartialOrder(elements=["only"])
        sched = PartialOrderScheduler(po, lambda x: None)
        assert sched.step() == "only"
        assert sched.step() is None

    def test_pending_shrinks(self):
        sched = PartialOrderScheduler(diamond_order(), lambda x: None)
        assert len(sched.pending) == 4
        sched.step()
        assert len(sched.pending) == 3

    def test_cyclic_order_rejected_upfront(self):
        po = PartialOrder()
        po.add_edge("a", "b")
        po.add_edge("b", "a")
        with pytest.raises(CyclicOrderError):
            PartialOrderScheduler(po, lambda x: None)

    def test_rng_randomizes_ties(self):
        po = PartialOrder(elements=[f"e{i}" for i in range(6)])
        orders = set()
        for seed in range(15):
            sched = PartialOrderScheduler(
                po, lambda x: None, rng=random.Random(seed)
            )
            orders.add(tuple(sched.run()))
        assert len(orders) > 1

    def test_executor_exception_preserves_progress(self):
        def boom(x):
            if x == "b":
                raise RuntimeError("executor failed")

        po = PartialOrder()
        po.add_edge("a", "b")
        sched = PartialOrderScheduler(po, boom)
        assert sched.step() == "a"
        with pytest.raises(RuntimeError):
            sched.step()
        assert sched.executed == ["a"]

    def test_deterministic_without_rng(self):
        po = diamond_order()
        runs = [
            PartialOrderScheduler(po, lambda x: None).run()
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]
