"""Property tests: the independent plan verifier vs the real analyzer.

Two directions, both over random workflow systems and attack sets:

- **soundness of the pair**: every plan the analyzer produces is
  accepted by the verifier (two independent derivations of Theorems
  1-3 agree on arbitrary inputs);
- **sensitivity**: seeded mutations of those same plans (dropped undo,
  extra redo, reversed Theorem 3 edge) are always rejected.
"""

import random
from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.analyzer import RecoveryAnalyzer
from repro.lint import verify_plan
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator
from repro.workflow.precedence import PartialOrder


def random_case(seed, n_attacks, branchiness, loopiness):
    """(log, specs, plan) for a random attacked workload, unhealed."""
    gen = WorkloadGenerator(
        WorkloadConfig(
            n_workflows=3,
            tasks_per_workflow=8,
            branch_probability=branchiness,
            loop_probability=loopiness,
        ),
        random.Random(seed),
    )
    workload = gen.generate()
    campaign = gen.pick_attacks(workload, n_attacks=n_attacks)
    result = run_pipeline(workload, campaign, seed=seed, heal=False)
    alerts = [u for u in result.malicious_ground_truth if u in result.log]
    if not alerts:
        return None
    plan = RecoveryAnalyzer(
        result.log, result.specs_by_instance
    ).analyze(alerts)
    return result.log, result.specs_by_instance, plan


CASE = dict(
    seed=st.integers(min_value=0, max_value=10_000),
    n_attacks=st.integers(min_value=1, max_value=3),
    branchiness=st.sampled_from([0.0, 0.3, 0.7]),
    loopiness=st.sampled_from([0.0, 0.4]),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_accepts_every_analyzer_plan(seed, n_attacks,
                                              branchiness, loopiness):
    case = random_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    diags = verify_plan(log, specs, plan)
    assert diags == [], [d.render() for d in diags[:5]]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_rejects_dropped_undo(seed, n_attacks, branchiness,
                                       loopiness):
    case = random_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    ua = plan.undo_analysis
    victim = sorted(ua.definite)[-1]
    mutated = replace(plan, undo_analysis=replace(
        ua,
        malicious=ua.malicious - {victim},
        infected=ua.infected - {victim},
    ))
    rules = {d.rule for d in verify_plan(log, specs, mutated)}
    assert "PLAN001" in rules


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_rejects_extra_redo(seed, n_attacks, branchiness,
                                     loopiness):
    case = random_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    outsiders = sorted(
        {r.uid for r in log.normal_records()}
        - plan.undo_analysis.definite
    )
    if not outsiders:
        return  # everything was infected; no clean instance to inject
    ra = plan.redo_analysis
    mutated = replace(plan, redo_analysis=replace(
        ra, definite=ra.definite | {outsiders[0]}
    ))
    rules = {d.rule for d in verify_plan(log, specs, mutated)}
    assert "PLAN004" in rules


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_rejects_reversed_t33_edge(seed, n_attacks,
                                            branchiness, loopiness):
    case = random_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    redos = sorted(plan.redo_analysis.definite)
    if not redos:
        return
    uid = redos[0]
    target = (Action.undo(uid), Action.redo(uid))
    order = PartialOrder()
    for element in plan.order.elements():
        order.add_element(element)
    for before, after in plan.order.edges():
        if (before, after) == target:
            order.add_edge(after, before)
        else:
            order.add_edge(before, after)
    mutated = replace(plan, order=order)
    rules = {d.rule for d in verify_plan(log, specs, mutated)}
    assert "PLAN005" in rules and "PLAN006" in rules
