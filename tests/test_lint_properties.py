"""Property tests: the independent plan verifier vs the real analyzer.

Two directions, both over random workflow systems and attack sets
(drawn through the shared strategy library in
:mod:`repro.scenarios.generate`):

- **soundness of the pair**: every plan the analyzer produces is
  accepted by the verifier (two independent derivations of Theorems
  1-3 agree on arbitrary inputs);
- **sensitivity**: seeded mutations of those same plans (dropped undo,
  extra redo, reversed Theorem 3 edge) are always rejected.
"""

from hypothesis import HealthCheck, given, settings

from repro.lint import verify_plan
from repro.scenarios.generate import CASE, mutate_plan, random_attacked_case


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_accepts_every_analyzer_plan(seed, n_attacks,
                                              branchiness, loopiness):
    case = random_attacked_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    diags = verify_plan(log, specs, plan)
    assert diags == [], [d.render() for d in diags[:5]]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_rejects_dropped_undo(seed, n_attacks, branchiness,
                                       loopiness):
    case = random_attacked_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    mutated = mutate_plan(plan, "drop-undo", log)
    if mutated is None:
        return  # nothing to drop
    rules = {d.rule for d in verify_plan(log, specs, mutated)}
    assert "PLAN001" in rules


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_rejects_extra_redo(seed, n_attacks, branchiness,
                                     loopiness):
    case = random_attacked_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    mutated = mutate_plan(plan, "extra-redo", log)
    if mutated is None:
        return  # everything was infected; no clean instance to inject
    rules = {d.rule for d in verify_plan(log, specs, mutated)}
    assert "PLAN004" in rules


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**CASE)
def test_verifier_rejects_reversed_t33_edge(seed, n_attacks,
                                            branchiness, loopiness):
    case = random_attacked_case(seed, n_attacks, branchiness, loopiness)
    if case is None:
        return
    log, specs, plan = case
    mutated = mutate_plan(plan, "reverse-edge", log)
    if mutated is None:
        return  # no redo edge to flip
    rules = {d.rule for d in verify_plan(log, specs, mutated)}
    assert "PLAN005" in rules and "PLAN006" in rules
