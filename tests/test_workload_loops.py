"""Tests for loop segments in the random workload generator."""

import random

import pytest

from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


def gen(seed=0, **overrides):
    defaults = dict(n_workflows=2, tasks_per_workflow=10,
                    branch_probability=0.0, loop_probability=1.0)
    defaults.update(overrides)
    return WorkloadGenerator(WorkloadConfig(**defaults),
                             random.Random(seed))


class TestLoopGeneration:
    def test_loops_generated(self):
        wl = gen(1).generate()
        assert any(not spec.is_acyclic() for spec in wl.specs)

    def test_loop_body_is_self_branching(self):
        wl = gen(2).generate()
        for spec in wl.specs:
            for task_id in spec.branch_nodes:
                succs = set(spec.successors(task_id))
                if task_id in succs:  # a loop body
                    assert len(succs) == 2  # itself + exit

    def test_no_loops_when_probability_zero(self):
        wl = gen(3, loop_probability=0.0).generate()
        assert all(spec.is_acyclic() for spec in wl.specs)

    def test_specs_execute_with_repeated_instances(self):
        wl = gen(4).generate()
        result = run_pipeline(wl, None, heal=False, seed=4)
        numbers = [
            r.instance.number for r in result.log.normal_records()
        ]
        assert max(numbers) >= 2  # some task actually looped


class TestLoopHealing:
    @pytest.mark.parametrize("seed", range(6))
    def test_attacked_cyclic_workloads_heal(self, seed):
        g = gen(seed, n_workflows=3, branch_probability=0.3,
                loop_probability=0.5)
        wl = g.generate()
        campaign = g.pick_attacks(wl, n_attacks=2)
        result = run_pipeline(wl, campaign, seed=seed)
        assert result.healthy, result.audit.problems[:3]

    def test_loop_count_change_during_heal(self):
        """Find a seed where recovery changes the iteration count —
        abandoned or newly executed body instances — and verify it."""
        observed = False
        for seed in range(25):
            g = gen(seed, n_workflows=2, loop_probability=1.0)
            wl = g.generate()
            campaign = g.pick_attacks(wl, n_attacks=2)
            result = run_pipeline(wl, campaign, seed=seed)
            assert result.healthy, (seed, result.audit.problems[:3])
            body_changed = any(
                "#"  in u and int(u.split("#")[1]) >= 2
                for u in (tuple(result.heal.new_executions)
                          + tuple(result.heal.abandoned))
            )
            if body_changed:
                observed = True
                break
        assert observed, "no seed produced a loop-count change"
