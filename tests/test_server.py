"""Tests for the HTTP telemetry endpoint (`repro.obs.server`).

Each test binds an ephemeral port on 127.0.0.1 and talks to the
server over real HTTP with the stdlib client — the same way the CI
smoke job and a Prometheus scraper would.
"""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.errors import ObsError
from repro.markov.stg import RecoverySTG
from repro.obs.events import EventBus
from repro.obs.health import HealthConfig, HealthMonitor, ModelPrediction
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer
from repro.sim.ctmc_sim import GillespieSimulator


def _get(url):
    """(status, content_type, body_bytes) for a GET, including errors."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read()


@pytest.fixture()
def monitored_server():
    """A server over a short conformant paper-workload run."""
    stg = RecoverySTG.paper_default()
    registry = MetricsRegistry()
    monitor = HealthMonitor(
        ModelPrediction.from_stg(stg), registry=registry
    ).attach(EventBus())
    GillespieSimulator(stg, random.Random(0), bus=monitor.bus).run(150.0)
    with TelemetryServer(registry=registry, monitor=monitor) as server:
        yield server, monitor


class TestLifecycle:
    def test_ephemeral_port_is_bound(self):
        server = TelemetryServer().start()
        try:
            assert server.running and server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.stop()
        assert not server.running

    def test_double_start_rejected(self):
        with TelemetryServer() as server:
            with pytest.raises(ObsError):
                server.start()

    def test_stop_is_idempotent(self):
        server = TelemetryServer().start()
        server.stop()
        server.stop()

    def test_unbindable_port_raises(self):
        with TelemetryServer() as server:
            with pytest.raises(ObsError):
                TelemetryServer(port=server.port).start()


class TestBareServer:
    """No registry, no monitor: degrade, never 500."""

    def test_healthz_reports_unmonitored_ok(self):
        with TelemetryServer() as server:
            status, ctype, body = _get(server.url + "/healthz")
        assert status == 200 and "json" in ctype
        assert json.loads(body) == {"status": "ok", "monitored": False}

    def test_slo_is_404_without_monitor(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/slo")
        assert status == 404
        assert "error" in json.loads(body)

    def test_metrics_empty_exposition(self):
        with TelemetryServer() as server:
            status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert body == b""

    def test_unknown_path_lists_routes(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert json.loads(body)["paths"] == [
            "/metrics", "/healthz", "/slo", "/profile",
        ]


class TestMonitoredEndpoints:
    def test_healthz_ok_on_conformant_run(self, monitored_server):
        server, _ = monitored_server
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["monitored"] is True
        assert payload["drifts"] == 0
        assert payload["time"] > 0

    def test_slo_payload_schema(self, monitored_server):
        server, monitor = monitored_server
        status, _, body = _get(server.url + "/slo")
        payload = json.loads(body)
        assert status == 200
        assert payload["verdict"] == "OK"
        assert set(payload["slos"]) == {
            "loss", "model-conformance", "conformance",
        }
        low, high = payload["loss"]["ci"]
        assert 0.0 <= low <= high <= 1.0
        assert payload["prediction"]["loss_probability"] == (
            monitor.prediction.loss_probability
        )

    def test_metrics_exposes_health_gauges(self, monitored_server):
        server, _ = monitored_server
        status, ctype, body = _get(server.url + "/metrics")
        text = body.decode("utf-8")
        assert status == 200
        assert "version=0.0.4" in ctype
        assert "repro_health_arrival_rate" in text
        assert 'repro_health_slo_state{slo="loss"}' in text

    def test_healthz_503_on_breach(self):
        # An impossible loss objective over a lossy calibrated run:
        # the loss SLO breaches, and the probe must go unhealthy.
        stg = RecoverySTG.paper_default(arrival_rate=6.0, buffer_size=3)
        monitor = HealthMonitor(
            ModelPrediction.from_stg(stg),
            config=HealthConfig(loss_objective=1e-6),
        ).attach(EventBus())
        GillespieSimulator(stg, random.Random(1),
                           bus=monitor.bus).run(150.0)
        assert monitor.verdict.value == "BREACH"
        with TelemetryServer(monitor=monitor) as server:
            status, _, body = _get(server.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "breach"


@pytest.fixture(scope="module")
def fleet_server():
    """A server over a finished small fleet run, in fleet mode."""
    from repro.fleet import FleetConfig, FleetControlPlane

    plane = FleetControlPlane(
        FleetConfig(tenants=4, duration=30.0, seed=3)
    )
    plane.run()
    with TelemetryServer(registry=plane.registry, fleet=plane) as server:
        yield server, plane


class TestFleetEndpoints:
    def test_healthz_probes_worst_of_rollup(self, fleet_server):
        server, plane = fleet_server
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["fleet"] is True
        assert payload["tenants"] == 4
        assert payload["status"] == plane.health().verdict.value.lower()
        assert sum(payload["by_state"].values()) == 4

    def test_slo_serves_the_fleet_rollup(self, fleet_server):
        server, plane = fleet_server
        status, _, body = _get(server.url + "/slo")
        payload = json.loads(body)
        assert status == 200
        assert payload["fleet"] is True
        assert payload["tenants"] == 4
        assert payload["verdict"] == plane.health().verdict.value
        assert payload["latency"]["samples"] > 0
        assert payload["latency"]["p50"] <= payload["latency"]["p99"]
        assert len(payload["worst_tenants"]) == 4
        assert payload["audits_ok"] is True

    def test_slo_tenant_drilldown(self, fleet_server):
        server, plane = fleet_server
        tenant = plane.shards[0].tenant
        status, _, body = _get(server.url + f"/slo?tenant={tenant}")
        payload = json.loads(body)
        assert status == 200
        assert payload["tenant"] == tenant
        assert payload["profile"] == plane.shards[0].profile.name
        assert "slos" in payload and "rates" in payload

    def test_unknown_tenant_is_404(self, fleet_server):
        server, _ = fleet_server
        status, _, body = _get(server.url + "/slo?tenant=zz")
        assert status == 404
        assert "unknown tenant" in json.loads(body)["error"]

    def test_tenant_param_without_fleet_is_404(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/slo?tenant=t0")
        assert status == 404
        assert "requires a fleet" in json.loads(body)["error"]

    def test_fleet_breach_fails_the_probe(self):
        import dataclasses

        from repro.fleet import FleetConfig, FleetControlPlane
        from repro.fleet.workload import PROFILES

        hot = dataclasses.replace(
            PROFILES["banking"], arrival_rate=3.0,
            alert_buffer=3, recovery_buffer=3,
        )
        plane = FleetControlPlane(
            FleetConfig(tenants=2, duration=30.0, seed=1,
                        central_capacity=4),
            profiles=[hot],
        )
        plane.run()
        assert plane.health().verdict.value == "BREACH"
        with TelemetryServer(fleet=plane) as server:
            status, _, body = _get(server.url + "/healthz")
            slo_status, _, slo_body = _get(server.url + "/slo")
        assert status == 503
        assert json.loads(body)["status"] == "breach"
        assert slo_status == 200  # the verdict is payload, not status
        assert json.loads(slo_body)["verdict"] == "BREACH"

    def test_fleet_metrics_exposition(self, fleet_server):
        server, _ = fleet_server
        status, _, body = _get(server.url + "/metrics")
        text = body.decode("utf-8")
        assert status == 200
        assert "repro_fleet_attacks_total" in text
        assert "repro_fleet_detect_heal_latency" in text


class TestProfileEndpoint:
    def _profiler(self):
        from repro.obs.perf import PhaseProfiler

        prof = PhaseProfiler().start()
        with prof.phase("detect"):
            pass
        with prof.phase("analyze"):
            with prof.phase("analyze.closure"):
                pass
        prof.stop()
        return prof

    def test_profile_404_without_profiler(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/profile")
        assert status == 404
        assert "no profiler" in json.loads(body)["error"]

    def test_profile_json_payload(self):
        with TelemetryServer(profiler=self._profiler()) as server:
            status, ctype, body = _get(server.url + "/profile")
        payload = json.loads(body)
        assert status == 200 and "json" in ctype
        paths = [r["path"] for r in payload["phases"]]
        assert paths == ["detect", "analyze", "analyze;analyze.closure"]
        assert 0.0 <= payload["attribution"] <= 1.0
        assert len(payload["structure_digest"]) == 64

    def test_profile_collapsed_rendering(self):
        with TelemetryServer(profiler=self._profiler()) as server:
            status, ctype, body = _get(
                server.url + "/profile?format=collapsed")
        assert status == 200
        assert ctype.startswith("text/plain")
        lines = body.decode("utf-8").splitlines()
        assert all(line.startswith("repro;") for line in lines)
        assert any(line.startswith("repro;analyze;analyze.closure ")
                   for line in lines)

    def test_fleet_profile_serves_the_snapshot(self):
        from repro.fleet import FleetConfig, FleetControlPlane
        from repro.obs.perf import PhaseProfiler

        prof = PhaseProfiler()
        plane = FleetControlPlane(
            FleetConfig(tenants=2, duration=10.0, seed=5),
            profiler=prof,
        )
        prof.start()
        plane.run()
        prof.stop()
        with TelemetryServer(registry=plane.registry,
                             fleet=plane) as server:
            status, _, body = _get(server.url + "/profile")
        payload = json.loads(body)
        assert status == 200
        assert set(payload) == {"fleet", "tenants", "ticks"}
        assert len(payload["tenants"]) == 2

    def test_unprofiled_fleet_profile_is_404(self, fleet_server):
        server, _ = fleet_server
        status, _, body = _get(server.url + "/profile")
        assert status == 404
        assert "without a profiler" in json.loads(body)["error"]


class TestProfileHammer:
    """Satellite: /metrics + /slo + /profile scraped concurrently
    while the fleet is mid-run.

    The server contract is that a driver mutating shared state wraps
    each mutation in ``server.lock`` — so the test drives the tick
    loop by hand under the lock while four scraper threads hammer
    every endpoint.  Every response must be a well-formed 200; a
    torn read would surface as a 500 or a JSON parse error.
    """

    def test_concurrent_scrapes_during_fleet_ticks(self):
        import threading

        from repro.fleet import FleetConfig, FleetControlPlane, WorkerPool
        from repro.obs.perf import PhaseProfiler

        prof = PhaseProfiler()
        config = FleetConfig(tenants=3, duration=20.0, workers=2, seed=4)
        plane = FleetControlPlane(config, profiler=prof)
        prof.start()
        failures = []
        counts = {}
        stop = threading.Event()

        def scrape(path):
            while not stop.is_set():
                status, _, body = _get(server.url + path)
                if status != 200:
                    failures.append((path, status, body[:200]))
                    return
                if "json" in path or path in ("/slo", "/profile"):
                    payload = json.loads(body)
                    if path == "/profile":
                        # Live snapshot: provisional but consistent.
                        assert payload["fleet"]["total_wall"] > 0.0
                counts[path] = counts.get(path, 0) + 1

        paths = ("/metrics", "/slo", "/profile",
                 "/profile?format=collapsed")
        with TelemetryServer(registry=plane.registry,
                             fleet=plane) as server:
            threads = [threading.Thread(target=scrape, args=(p,))
                       for p in paths]
            for t in threads:
                t.start()
            ticks = int(round(config.duration / config.tick))
            with WorkerPool(config.workers) as pool:
                for _ in range(ticks):
                    with server.lock:
                        plane.run_tick(pool)
            stop.set()
            for t in threads:
                t.join()
        prof.stop()
        assert not failures, failures
        assert all(counts.get(p, 0) > 0 for p in paths), counts
        assert plane.profile_report().attribution > 0.0
