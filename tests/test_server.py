"""Tests for the HTTP telemetry endpoint (`repro.obs.server`).

Each test binds an ephemeral port on 127.0.0.1 and talks to the
server over real HTTP with the stdlib client — the same way the CI
smoke job and a Prometheus scraper would.
"""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.errors import ObsError
from repro.markov.stg import RecoverySTG
from repro.obs.events import EventBus
from repro.obs.health import HealthConfig, HealthMonitor, ModelPrediction
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer
from repro.sim.ctmc_sim import GillespieSimulator


def _get(url):
    """(status, content_type, body_bytes) for a GET, including errors."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read()


@pytest.fixture()
def monitored_server():
    """A server over a short conformant paper-workload run."""
    stg = RecoverySTG.paper_default()
    registry = MetricsRegistry()
    monitor = HealthMonitor(
        ModelPrediction.from_stg(stg), registry=registry
    ).attach(EventBus())
    GillespieSimulator(stg, random.Random(0), bus=monitor.bus).run(150.0)
    with TelemetryServer(registry=registry, monitor=monitor) as server:
        yield server, monitor


class TestLifecycle:
    def test_ephemeral_port_is_bound(self):
        server = TelemetryServer().start()
        try:
            assert server.running and server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.stop()
        assert not server.running

    def test_double_start_rejected(self):
        with TelemetryServer() as server:
            with pytest.raises(ObsError):
                server.start()

    def test_stop_is_idempotent(self):
        server = TelemetryServer().start()
        server.stop()
        server.stop()

    def test_unbindable_port_raises(self):
        with TelemetryServer() as server:
            with pytest.raises(ObsError):
                TelemetryServer(port=server.port).start()


class TestBareServer:
    """No registry, no monitor: degrade, never 500."""

    def test_healthz_reports_unmonitored_ok(self):
        with TelemetryServer() as server:
            status, ctype, body = _get(server.url + "/healthz")
        assert status == 200 and "json" in ctype
        assert json.loads(body) == {"status": "ok", "monitored": False}

    def test_slo_is_404_without_monitor(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/slo")
        assert status == 404
        assert "error" in json.loads(body)

    def test_metrics_empty_exposition(self):
        with TelemetryServer() as server:
            status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert body == b""

    def test_unknown_path_lists_routes(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert json.loads(body)["paths"] == ["/metrics", "/healthz", "/slo"]


class TestMonitoredEndpoints:
    def test_healthz_ok_on_conformant_run(self, monitored_server):
        server, _ = monitored_server
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["monitored"] is True
        assert payload["drifts"] == 0
        assert payload["time"] > 0

    def test_slo_payload_schema(self, monitored_server):
        server, monitor = monitored_server
        status, _, body = _get(server.url + "/slo")
        payload = json.loads(body)
        assert status == 200
        assert payload["verdict"] == "OK"
        assert set(payload["slos"]) == {"loss", "model-conformance"}
        low, high = payload["loss"]["ci"]
        assert 0.0 <= low <= high <= 1.0
        assert payload["prediction"]["loss_probability"] == (
            monitor.prediction.loss_probability
        )

    def test_metrics_exposes_health_gauges(self, monitored_server):
        server, _ = monitored_server
        status, ctype, body = _get(server.url + "/metrics")
        text = body.decode("utf-8")
        assert status == 200
        assert "version=0.0.4" in ctype
        assert "repro_health_arrival_rate" in text
        assert 'repro_health_slo_state{slo="loss"}' in text

    def test_healthz_503_on_breach(self):
        # An impossible loss objective over a lossy calibrated run:
        # the loss SLO breaches, and the probe must go unhealthy.
        stg = RecoverySTG.paper_default(arrival_rate=6.0, buffer_size=3)
        monitor = HealthMonitor(
            ModelPrediction.from_stg(stg),
            config=HealthConfig(loss_objective=1e-6),
        ).attach(EventBus())
        GillespieSimulator(stg, random.Random(1),
                           bus=monitor.bus).run(150.0)
        assert monitor.verdict.value == "BREACH"
        with TelemetryServer(monitor=monitor) as server:
            status, _, body = _get(server.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "breach"
