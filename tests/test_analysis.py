"""Tests for static damage-radius analysis."""

import pytest

from repro.errors import UnknownTaskError
from repro.scenarios.figure1 import build_figure1
from repro.workflow.analysis import (
    critical_tasks,
    damage_radius,
    potential_flow_edges,
)
from repro.workflow.spec import workflow


def figure1_specs():
    sc = build_figure1(attacked=False)
    return [sc.specs_by_instance["wf1"], sc.specs_by_instance["wf2"]]


class TestPotentialFlow:
    def test_cross_workflow_edges_via_shared_objects(self):
        specs = figure1_specs()
        edges = potential_flow_edges(specs)
        # t1 writes x; t8 (other workflow) reads x.
        assert ("wf2", "t8") in edges[("wf1", "t1")]
        assert ("wf1", "t2") in edges[("wf1", "t1")]

    def test_no_self_edges(self):
        spec = (
            workflow("w")
            .task("a", reads=["x"], writes=["x"],
                  compute=lambda d: {"x": d["x"] + 1})
            .build()
        )
        edges = potential_flow_edges([spec])
        assert edges[("w", "a")] == frozenset()

    def test_chain_structure(self):
        spec = (
            workflow("w")
            .task("a", writes=["p"], compute=lambda d: {"p": 1})
            .task("b", reads=["p"], writes=["q"],
                  compute=lambda d: {"q": d["p"]})
            .task("c", reads=["q"], writes=["r"],
                  compute=lambda d: {"r": d["q"]})
            .chain("a", "b", "c")
            .build()
        )
        edges = potential_flow_edges([spec])
        assert edges[("w", "a")] == frozenset({("w", "b")})
        assert edges[("w", "b")] == frozenset({("w", "c")})


class TestDamageRadius:
    def test_figure1_t1_reaches_both_workflows(self):
        specs = figure1_specs()
        radius = damage_radius(specs, ("wf1", "t1"))
        affected_tasks = {t for _, t in radius.affected}
        # The paper's marks: data infection t2 t4 t8 t10, control
        # amplification t3/t4/t5, cond-4 reader t6 via t5's write.
        assert {"t2", "t4", "t8", "t10"} <= affected_tasks
        assert {"t3", "t5"} <= affected_tasks
        assert "t6" in affected_tasks

    def test_control_amplification_through_branch(self):
        specs = figure1_specs()
        radius = damage_radius(specs, ("wf1", "t1"))
        amplified = {t for _, t in radius.control_amplified}
        assert {"t3", "t4", "t5"} <= amplified

    def test_leaf_task_has_empty_radius(self):
        specs = figure1_specs()
        radius = damage_radius(specs, ("wf2", "t10"))
        assert radius.size == 0
        assert radius.fraction_of(10) == 0.0

    def test_unknown_origin_rejected(self):
        with pytest.raises(UnknownTaskError):
            damage_radius(figure1_specs(), ("wf1", "ghost"))

    def test_fraction_of(self):
        specs = figure1_specs()
        radius = damage_radius(specs, ("wf1", "t1"))
        assert 0 < radius.fraction_of(10) <= 1.0


class TestCriticalTasks:
    def test_figure1_t1_is_most_critical(self):
        specs = figure1_specs()
        ranking = critical_tasks(specs, top=3)
        assert ranking[0].origin == ("wf1", "t1")
        sizes = [r.size for r in ranking]
        assert sizes == sorted(sizes, reverse=True)

    def test_top_limits_results(self):
        specs = figure1_specs()
        assert len(critical_tasks(specs, top=2)) == 2

    def test_ranking_matches_operational_damage(self):
        """The static radius of t1 contains everything the operational
        heal of the Figure 1 attack actually touched."""
        sc = build_figure1(attacked=True)
        report = sc.heal_now()
        touched_tasks = {
            u.split("/")[1].split("#")[0]
            for u in (set(report.undone) | set(report.new_executions))
        } - {"t1"}
        specs = [sc.specs_by_instance["wf1"], sc.specs_by_instance["wf2"]]
        radius = damage_radius(specs, ("wf1", "t1"))
        radius_tasks = {t for _, t in radius.affected}
        assert touched_tasks <= radius_tasks
