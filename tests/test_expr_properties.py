"""Property-based tests (hypothesis) for the expression language.

Random expression ASTs are rendered to source and re-parsed; parsing
must invert rendering (same value, same free variables).  This checks
the tokenizer/parser against an independently-constructed ground truth
rather than hand-picked cases.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow.expr import ExprError, compile_expr

VARS = ["a", "b", "c", "qty", "rate"]
ENV = {"a": 3, "b": -2, "c": 7, "qty": 10, "rate": 4}


@st.composite
def ast(draw, depth=0):
    """A random (source, expected_value) pair, always well-formed.

    Division/modulo are avoided so expected values are computable
    without zero-division cases; the rendered source uses explicit
    parentheses, so operator precedence is exercised on re-parse.
    """
    if depth >= 4 or draw(st.booleans()):
        kind = draw(st.sampled_from(["int", "var", "bool"]))
        if kind == "int":
            n = draw(st.integers(min_value=0, max_value=99))
            return str(n), n
        if kind == "var":
            name = draw(st.sampled_from(VARS))
            return name, ENV[name]
        lit = draw(st.sampled_from(["true", "false"]))
        return lit, 1 if lit == "true" else 0
    kind = draw(st.sampled_from(
        ["add", "sub", "mul", "neg", "min", "max", "abs",
         "lt", "eq", "and", "or", "not", "cond"]
    ))
    if kind in ("add", "sub", "mul", "lt", "eq", "and", "or"):
        ls, lv = draw(ast(depth=depth + 1))
        rs, rv = draw(ast(depth=depth + 1))
        if kind == "add":
            return f"({ls} + {rs})", lv + rv
        if kind == "sub":
            return f"({ls} - {rs})", lv - rv
        if kind == "mul":
            return f"({ls} * {rs})", lv * rv
        if kind == "lt":
            return f"({ls} < {rs})", 1 if lv < rv else 0
        if kind == "eq":
            return f"({ls} == {rs})", 1 if lv == rv else 0
        if kind == "and":
            return f"({ls} and {rs})", 1 if (lv and rv) else 0
        return f"({ls} or {rs})", 1 if (lv or rv) else 0
    if kind == "neg":
        s, v = draw(ast(depth=depth + 1))
        return f"(-{s})", -v
    if kind == "not":
        s, v = draw(ast(depth=depth + 1))
        return f"(not {s})", 0 if v else 1
    if kind == "abs":
        s, v = draw(ast(depth=depth + 1))
        return f"abs({s})", abs(v)
    if kind in ("min", "max"):
        ls, lv = draw(ast(depth=depth + 1))
        rs, rv = draw(ast(depth=depth + 1))
        fn = min if kind == "min" else max
        return f"{kind}({ls}, {rs})", fn(lv, rv)
    # cond
    ts, tv = draw(ast(depth=depth + 1))
    as_, av = draw(ast(depth=depth + 1))
    bs, bv = draw(ast(depth=depth + 1))
    return f"({ts} ? {as_} : {bs})", (av if tv else bv)


@settings(max_examples=200, deadline=None)
@given(ast())
def test_parse_evaluates_to_constructed_value(pair):
    source, expected = pair
    expr = compile_expr(source)
    assert expr(ENV) == expected


@settings(max_examples=100, deadline=None)
@given(ast())
def test_free_variables_sufficient_and_sound(pair):
    source, expected = pair
    expr = compile_expr(source)
    # Soundness: every reported name is syntactically present.
    assert expr.names <= set(VARS)
    for name in expr.names:
        assert name in source
    # Sufficiency: an env restricted to exactly the reported names
    # always evaluates (names is a conservative superset of what any
    # evaluation path can touch).
    env = {k: ENV[k] for k in expr.names}
    assert expr(env) == expected


@settings(max_examples=100, deadline=None)
@given(ast())
def test_reparse_of_source_is_stable(pair):
    source, __ = pair
    first = compile_expr(source)
    second = compile_expr(first.source)
    assert first(ENV) == second(ENV)
    assert first.names == second.names
