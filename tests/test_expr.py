"""Tests for the expression language."""

import pytest

from repro.workflow.expr import Expr, ExprError, compile_expr


def ev(source, **env):
    return compile_expr(source)(env)


class TestArithmetic:
    def test_literals(self):
        assert ev("42") == 42
        assert ev("3.5") == 3.5
        assert ev("true") == 1
        assert ev("false") == 0

    def test_basic_ops(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("(2 + 3) * 4") == 20
        assert ev("10 - 4 - 3") == 3          # left associative
        assert ev("7 // 2") == 3
        assert ev("7 / 2") == 3.5
        assert ev("7 % 3") == 1

    def test_unary_minus(self):
        assert ev("-5 + 3") == -2
        assert ev("--5") == 5
        assert ev("-(2 + 3)") == -5

    def test_variables(self):
        assert ev("a * b + c", a=2, b=3, c=4) == 10

    def test_functions(self):
        assert ev("min(3, 7)") == 3
        assert ev("max(3, 7, 2)") == 7
        assert ev("abs(-9)") == 9
        assert ev("min(a, 10) + max(b, 0)", a=42, b=-3) == 10

    def test_division_by_zero_wrapped(self):
        with pytest.raises(ExprError, match="division by zero"):
            ev("1 / 0")
        with pytest.raises(ExprError, match="division by zero"):
            ev("1 % n", n=0)


class TestComparisonAndBoolean:
    def test_comparisons_yield_01(self):
        assert ev("3 < 4") == 1
        assert ev("3 > 4") == 0
        assert ev("3 <= 3") == 1
        assert ev("3 >= 4") == 0
        assert ev("3 == 3") == 1
        assert ev("3 != 3") == 0

    def test_boolean_operators(self):
        assert ev("1 and 2") == 1
        assert ev("0 and 1") == 0
        assert ev("0 or 3") == 1
        assert ev("0 or 0") == 0
        assert ev("not 0") == 1
        assert ev("not 5") == 0

    def test_precedence_not_over_and_over_or(self):
        assert ev("not 0 and 0 or 1") == 1
        assert ev("1 or 0 and 0") == 1

    def test_short_circuit_avoids_errors(self):
        assert ev("0 and 1 / 0") == 0
        assert ev("1 or 1 / 0") == 1

    def test_conditional(self):
        assert ev("x > 5 ? 10 : 20", x=7) == 10
        assert ev("x > 5 ? 10 : 20", x=3) == 20
        assert ev("a ? b : c ? d : e", a=0, c=0, e=99, b=1, d=2) == 99


class TestNamesInference:
    def test_names_are_free_variables(self):
        e = compile_expr("qty * unit + (rush ? fee : 0)")
        assert e.names == frozenset({"qty", "unit", "rush", "fee"})

    def test_literals_have_no_names(self):
        assert compile_expr("1 + 2 * 3").names == frozenset()

    def test_function_args_counted(self):
        assert compile_expr("min(a, b)").names == frozenset({"a", "b"})

    def test_boolean_names_conservative(self):
        # Short-circuit may skip a side at runtime, but the dependence
        # analysis needs the full union.
        assert compile_expr("a and b").names == frozenset({"a", "b"})


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "   ", "1 +", "* 2", "(1", "1)", "a b", "min", "min(",
        "1 ? 2", "@", "1 ? 2 : ", "min(1,)",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(ExprError):
            compile_expr(bad)

    def test_unbound_variable(self):
        with pytest.raises(ExprError, match="unbound"):
            ev("ghost + 1")

    def test_no_attribute_access_possible(self):
        with pytest.raises(ExprError):
            compile_expr("a.b")

    def test_no_arbitrary_calls(self):
        with pytest.raises(ExprError):
            compile_expr("open(1)")("x")  # 'open(' parses as name+junk

    def test_repr_and_source(self):
        e = compile_expr("a + 1")
        assert e.source == "a + 1"
        assert "a + 1" in repr(e)
