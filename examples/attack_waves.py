#!/usr/bin/env python3
"""Sequential attack waves: healing across epochs.

A long-lived system is attacked more than once.  Each recovery must
trust the *previous* recovery's results — not re-derive the world from
the original initial data.  The :class:`~repro.core.epochs.EpochManager`
provides that lifecycle: heal, roll the epoch (the healed store becomes
the next trusted baseline), keep running.

The scenario: a payment counter accumulates transfers.

- Epoch 1: the attacker forges one transfer amount → heal.
- Epoch 2: more transfers arrive; a *second* attack steers an approval
  branch using the counter → heal again.
- The end-to-end audit replays everything (both epochs) from the
  original data and confirms strict correctness.

Run:  python examples/attack_waves.py
"""

from repro.core.epochs import EpochManager
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.spec import workflow


def transfer(name: str, amount_key: str):
    return (
        workflow(f"transfer_{name}")
        .task("post", reads=[amount_key, "total"],
              writes=["total", f"receipt_{name}"],
              compute=lambda d: {
                  "total": d["total"] + d[amount_key],
                  f"receipt_{name}": d[amount_key],
              })
        .build()
    )


def audit_gate():
    return (
        workflow("audit_gate")
        .task("inspect", reads=["total"], writes=["flagged"],
              compute=lambda d: {"flagged": 1 if d["total"] > 500 else 0},
              choose=lambda d: "freeze" if d["flagged"] else "clear")
        .task("freeze", reads=[], writes=["status"],
              compute=lambda d: {"status": "FROZEN"})
        .task("clear", reads=[], writes=["status"],
              compute=lambda d: {"status": "clear"})
        .edge("inspect", "freeze").edge("inspect", "clear")
        .build()
    )


def main() -> None:
    initial = {
        "total": 0, "amt_a": 100, "amt_b": 50, "amt_c": 70,
        "receipt_a": 0, "receipt_b": 0, "receipt_c": 0,
        "flagged": 0, "status": "",
    }
    mgr = EpochManager(DataStore(initial), initial)

    # ---- Epoch 1: forged transfer amount --------------------------------
    wave1 = AttackCampaign().transform_task(
        "post", lambda i, o: {k: (v + 900 if k == "total" else v)
                              for k, v in o.items()},
        workflow_instance="t_a",
    )
    mgr.run_workflow_attacked(transfer("a", "amt_a"), wave1, name="t_a")
    print(f"epoch 1 under attack: total = {mgr.store.read('total')} "
          "(should be 100)")
    report1 = mgr.heal(wave1.malicious_uids)
    print(f"epoch 1 healed     : total = {mgr.store.read('total')} | "
          f"{report1.summary()}")

    # ---- Epoch 2: normal work + a branch-steering attack -----------------
    mgr.run_workflow(transfer("b", "amt_b"), name="t_b")     # total 150
    wave2 = AttackCampaign().transform_task(
        "post", lambda i, o: {k: (v + 800 if k == "total" else v)
                              for k, v in o.items()},
        workflow_instance="t_c",
    )
    mgr.run_workflow_attacked(transfer("c", "amt_c"), wave2, name="t_c")
    mgr.run_workflow(audit_gate(), name="gate")
    print(f"\nepoch 2 under attack: total = {mgr.store.read('total')}, "
          f"account status = {mgr.store.read('status')!r} "
          "(wrongly frozen)")

    report2 = mgr.heal(wave2.malicious_uids)
    print(f"epoch 2 healed     : total = {mgr.store.read('total')}, "
          f"account status = {mgr.store.read('status')!r} | "
          f"{report2.summary()}")

    audit = mgr.audit()
    print(f"\nend-to-end audit across {mgr.epoch} epochs: {audit.ok}")
    assert mgr.store.read("total") == 220      # 100 + 50 + 70
    assert mgr.store.read("status") == "clear"
    assert audit.ok


if __name__ == "__main__":
    main()
