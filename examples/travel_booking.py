#!/usr/bin/env python3
"""Travel booking with forged credit-card data.

The paper's second motivating attack: a booking whose card-submission
task carries forged data, steering the verification branch to approve a
reservation that should have been denied.  The corrupted booking
consumes a seat and books revenue; honest bookings that follow read the
corrupted seat count.

Recovery redoes the submission with the genuine card number, re-decides
the verification branch (deny), abandons the reserve/charge/confirm
tasks, and repairs every honest booking's stale reads — without
discarding the honest bookings themselves.

Run:  python examples/travel_booking.py
"""

from repro.scenarios.travel import build_travel


def main() -> None:
    scenario = build_travel(n_honest_bookings=3)

    print("=== Attacked state ===")
    print(f"  seats left : {scenario.store.read('seats')} (of 10)")
    print(f"  revenue    : {scenario.store.read('revenue')}")
    print(f"  fraud booking confirmed: "
          f"{bool(scenario.store.read('booked_fraud'))}")

    report = scenario.heal_now()

    print(f"\n=== Recovery ===\n  {report.summary()}")
    fraud_abandoned = sorted(
        u.split("/")[1].split("#")[0]
        for u in report.abandoned if u.startswith("booking_fraud/")
    )
    print(f"  fraud tasks abandoned : {fraud_abandoned}")
    print(f"  honest bookings kept + repaired: "
          f"{len(report.kept)} kept, {len(report.redone)} redone")

    print("\n=== Healed state ===")
    print(f"  seats left : {scenario.store.read('seats')}")
    print(f"  revenue    : {scenario.store.read('revenue')}")
    print(f"  fraud denied: {bool(scenario.store.read('denied_fraud'))}")
    for name in ("b0", "b1", "b2"):
        print(f"  booking {name} confirmed: "
              f"{bool(scenario.store.read(f'booked_{name}'))}")
    print(f"  strictly correct: {scenario.audit.ok}")

    assert scenario.store.read("seats") == 7
    assert scenario.store.read("revenue") == 360
    assert scenario.audit.ok


if __name__ == "__main__":
    main()
