#!/usr/bin/env python3
"""Forensic workflow: snapshot an attacked system, heal the copy.

Production systems rarely heal in place on first response: operations
snapshots the compromised state, analysts replay and repair the copy,
and only the validated repair is applied.  With expression-based
specifications, this library's systems are *fully serializable* —
store version history, log, and workflow definitions travel as one
JSON document.

This example attacks an order system, dumps it, reloads the dump as if
on another host, heals the copy, and verifies the result.

Run:  python examples/forensic_snapshot.py
"""

from repro import AttackCampaign, DataStore, Engine, Healer, SystemLog
from repro import audit_strict_correctness, dump_system, load_system
from repro.workflow.serialize import TaskDocument, WorkflowDocument


def order_document() -> WorkflowDocument:
    return WorkflowDocument(
        workflow_id="order",
        tasks=(
            TaskDocument("price", writes={"total": "qty * unit"}),
            TaskDocument(
                "check",
                writes={"eligible": "total >= 100"},
                choose=(("apply", "eligible"), ("skip", "true")),
            ),
            TaskDocument("apply",
                         writes={"payable": "total - total // 10"}),
            TaskDocument("skip", writes={"payable": "total"}),
        ),
        edges=(("price", "check"), ("check", "apply"),
               ("check", "skip")),
    )


def main() -> None:
    # --- production host: the attack happens -------------------------
    doc = order_document()
    initial = {"qty": 2, "unit": 20, "total": 0, "eligible": 0,
               "payable": 0}
    store, log = DataStore(initial), SystemLog()
    engine = Engine(store, log)
    attack = AttackCampaign().corrupt_task("price", total=900)
    engine.run_to_completion(engine.new_run(doc.build(), "order.1"),
                             tamper=attack)
    print(f"production: payable = {store.read('payable')} "
          "(discount stolen; should be 40)")

    snapshot = dump_system(
        store, log,
        documents={"order": doc},
        instance_documents={"order.1": "order"},
        initial_data=initial,
        indent=2,
    )
    print(f"snapshot captured: {len(snapshot)} bytes of JSON")

    # --- forensics host: reload and heal the copy ----------------------
    snap = load_system(snapshot)
    healer = Healer(snap.store, snap.log, snap.specs_by_instance)
    report = healer.heal(attack.malicious_uids)
    audit = audit_strict_correctness(
        snap.specs_by_instance, snap.initial_data,
        report.final_history, snap.store.snapshot(),
    )
    print(f"forensics : {report.summary()}")
    print(f"forensics : payable = {snap.store.read('payable')}, "
          f"strictly correct = {audit.ok}")

    assert snap.store.read("payable") == 40
    assert audit.ok
    # The production copy is untouched — repair was validated offline.
    assert store.read("payable") == 810


if __name__ == "__main__":
    main()
