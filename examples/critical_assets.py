#!/usr/bin/env python3
"""What-if damage analysis: where should hardening budget go?

Theorem 1 answers what an attack *did* damage.  Before any attack, the
same dependence reasoning answers the designer's question: if task X
were compromised, how far could damage spread?  This example ranks the
supply-chain tasks by their static damage radius and then *verifies*
the top prediction operationally — by attacking that task and counting
what the healer actually has to repair.

Run:  python examples/critical_assets.py
"""

from repro.scenarios.supply_chain import (
    audit_spec,
    build_supply_chain,
    procurement_spec,
    sales_spec,
)
from repro.workflow.analysis import critical_tasks, damage_radius


def main() -> None:
    specs = [
        procurement_spec(),
        sales_spec("s0", 20),
        sales_spec("s1", 20),
        audit_spec(),
    ]
    total = sum(len(s.tasks) for s in specs)

    print(f"Static ranking over {total} tasks "
          "(damage radius = tasks at risk if compromised):\n")
    ranking = critical_tasks(specs, top=6)
    for i, radius in enumerate(ranking, 1):
        wf, task = radius.origin
        print(f"  {i}. {wf}/{task:<10} radius={radius.size:>2} "
              f"({radius.fraction_of(total):.0%} of the system, "
              f"{len(radius.control_amplified)} via branch flips)")

    top_wf, top_task = ranking[0].origin
    print(f"\nMost critical: {top_wf}/{top_task} — "
          "verifying operationally by attacking it...")

    scenario = build_supply_chain(n_sales=2)
    report = scenario.heal_now()
    touched = len(set(report.undone) | set(report.new_executions))
    print(f"  operational attack on procurement/check touched "
          f"{touched} task instances "
          f"({len(report.undone)} undone, "
          f"{len(report.new_executions)} new-path executions)")
    print(f"  static radius predicted ≥ {ranking[0].size} tasks at risk")
    print(f"  strictly correct after heal: {scenario.audit.ok}")

    assert scenario.audit.ok
    assert ranking[0].size >= 5  # the stock pipeline is the hot spot


if __name__ == "__main__":
    main()
