#!/usr/bin/env python3
"""Quickstart: define a workflow, attack it, detect, heal, verify.

Walks through the full public API in one small scenario:

1. specify a workflow (tasks with read/write sets + a branch);
2. execute it under an attack that forges one task's output;
3. let the IDS report the malicious instance;
4. analyze the damage (Theorems 1–2) and inspect the plan;
5. heal (undo/redo with candidate resolution);
6. audit strict correctness (Definition 2).

Run:  python examples/quickstart.py
"""

from repro import (
    AttackCampaign,
    DataStore,
    Engine,
    Healer,
    IntrusionDetector,
    RecoveryAnalyzer,
    SystemLog,
    audit_strict_correctness,
    workflow,
)


def main() -> None:
    # 1. A tiny order-processing workflow:
    #    price → discount? → (apply | skip) → invoice
    spec = (
        workflow("order")
        .task("price", reads=["qty", "unit"], writes=["total"],
              compute=lambda d: {"total": d["qty"] * d["unit"]})
        .task("check", reads=["total"], writes=["eligible"],
              compute=lambda d: {"eligible": 1 if d["total"] >= 100 else 0},
              choose=lambda d: "apply" if d["eligible"] else "skip")
        .task("apply", reads=["total"], writes=["payable"],
              compute=lambda d: {"payable": int(d["total"] * 0.9)})
        .task("skip", reads=["total"], writes=["payable"],
              compute=lambda d: {"payable": d["total"]})
        .task("invoice", reads=["payable"], writes=["billed"],
              compute=lambda d: {"billed": d["payable"]})
        .edge("price", "check").edge("check", "apply")
        .edge("check", "skip").edge("apply", "invoice")
        .edge("skip", "invoice")
        .build()
    )

    # 2. Execute it while an attacker forges the computed total
    #    (qty*unit = 3*20 = 60 — no discount; the attacker writes 500,
    #    stealing a discount and corrupting the invoice).
    initial = {"qty": 3, "unit": 20, "eligible": 0, "payable": 0,
               "billed": 0, "total": 0}
    store, log = DataStore(initial), SystemLog()
    engine = Engine(store, log)
    attack = AttackCampaign().corrupt_task("price", total=500)
    engine.run_to_completion(engine.new_run(spec, "order.1"), tamper=attack)

    print("After the attacked run:")
    print(f"  path taken : "
          f"{[str(r.instance) for r in log.trace('order.1')]}")
    print(f"  billed     : {store.read('billed')} (should be 60)")

    # 3. The IDS reports the tampered instance.
    ids = IntrusionDetector(attack)
    ids.inspect(log)
    alerts = ids.drain()
    print(f"\nIDS alerts: {[a.uid for a in alerts]}")

    # 4. Damage analysis: Theorems 1 and 2.
    analyzer = RecoveryAnalyzer(log, engine.specs_by_instance)
    plan = analyzer.analyze(alerts)
    print(f"Plan: {plan.summary()}")
    print(f"  definite undo: {sorted(plan.undo_analysis.definite)}")
    print(f"  candidates   : {sorted(plan.undo_analysis.candidates)}")
    print(f"  schedule     : {[str(a) for a in plan.schedule()]}")

    # 5. Heal: re-execute the genuine code, re-decide the branch.
    healer = Healer(store, log, engine.specs_by_instance)
    report = healer.heal([a.uid for a in alerts])
    print(f"\n{report.summary()}")
    print(f"  abandoned (wrong path): {sorted(report.abandoned)}")
    print(f"  new executions        : {sorted(report.new_executions)}")

    # 6. Verify Definition 2: the healed state equals a clean execution.
    audit = audit_strict_correctness(
        engine.specs_by_instance, initial, report.final_history,
        store.snapshot(),
    )
    print(f"\nAfter healing:")
    print(f"  billed           : {store.read('billed')}")
    print(f"  strictly correct : {audit.ok}")
    assert audit.ok and store.read("billed") == 60


if __name__ == "__main__":
    main()
