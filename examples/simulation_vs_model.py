#!/usr/bin/env python3
"""Cross-validating the analytic CTMC with stochastic simulation.

The paper evaluates its recovery architecture purely analytically.
This example runs the same state process operationally — an exact
Gillespie simulation of arrivals, scanning and recovery with finite
buffers — and compares empirical occupancies with Equation 1's steady
state, plus the transient build-up with Equation 2.

Run:  python examples/simulation_vs_model.py
"""

import random

from repro.markov.metrics import category_probabilities, loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.markov.transient import transient_probabilities
from repro.sim.ctmc_sim import GillespieSimulator


def main() -> None:
    stg = RecoverySTG.paper_default(arrival_rate=1.5, buffer_size=8)
    print(f"Model: {stg!r}\n")

    chain = stg.ctmc()
    pi = steady_state(chain)
    analytic = category_probabilities(stg, pi)
    analytic_loss = loss_probability(stg, pi)

    sim = GillespieSimulator(stg, random.Random(2024))
    result = sim.run(horizon=50_000.0)

    print("Steady state: analytic vs simulated "
          f"({result.jumps} jumps over {result.horizon:g} time units)")
    print(f"  {'metric':<14} {'analytic':>10} {'simulated':>10}")
    for cat in StateCategory:
        sim_val = result.category_occupancy.get(cat, 0.0)
        print(f"  P({cat.value:<10}) {analytic[cat]:>10.4f} "
              f"{sim_val:>10.4f}")
        assert abs(analytic[cat] - sim_val) < 0.02
    print(f"  {'loss prob':<14} {analytic_loss:>10.4f} "
          f"{result.loss_time_fraction:>10.4f}")
    print(f"  alerts generated/lost: {result.arrivals} / "
          f"{result.arrivals_lost} "
          f"({result.alert_loss_fraction:.1%} lost)")

    print("\nTransient build-up from NORMAL (Equation 2):")
    pi0 = stg.initial_distribution()
    for t in (0.5, 1.0, 2.0, 5.0, 10.0):
        pi_t = transient_probabilities(chain, pi0, t)
        cats = category_probabilities(stg, pi_t)
        print(f"  t={t:>4}: P(NORMAL)={cats[StateCategory.NORMAL]:.3f}  "
              f"loss={loss_probability(stg, pi_t):.4f}")


if __name__ == "__main__":
    main()
