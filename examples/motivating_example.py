#!/usr/bin/env python3
"""The paper's Figure 1, executed and healed.

Two workflows run interleaved on shared data; the attacker corrupts
``t1``.  Damage spreads exactly as the paper describes (infected tasks
``t2 t4 t8 t10``, wrong execution path through ``t3 t4``, stale reader
``t6``), and recovery resolves every candidate:

- undo  ``t1 t2 t3 t4 t6 t8 t10``
- redo  ``t1 t2 t6 t8 t10``
- abandon (undo, no redo)  ``t3 t4``
- newly execute  ``t5``
- keep untouched  ``t7 t9``

Run:  python examples/motivating_example.py
"""

from repro.scenarios.figure1 import Figure1Scenario, build_figure1


def main() -> None:
    scenario = build_figure1(attacked=True)
    print("System log L1 :",
          " ".join(str(r.instance) for r in scenario.log.normal_records()))
    print("Attacked path :",
          [r.instance.task_id for r in scenario.log.trace("wf1")])

    report = scenario.heal_now()
    T = Figure1Scenario.task_ids

    print(f"\n{report.summary()}\n")
    rows = [
        ("malicious (IDS)", {scenario.malicious_uid.split('/')[1]}),
        ("undone", T(report.undone)),
        ("redone", T(report.redone)),
        ("abandoned", T(report.abandoned)),
        ("new executions", T(report.new_executions)),
        ("kept", T(report.kept)),
    ]
    for label, tasks in rows:
        print(f"  {label:<16}: {' '.join(sorted(tasks))}")

    print("\nHealed wf1 path:",
          [s.task_id for s in report.final_history
           if s.workflow_instance == "wf1"])
    print("Strictly correct:", scenario.audit.ok)

    assert T(report.undone) == scenario.EXPECTED_UNDONE
    assert T(report.redone) == scenario.EXPECTED_REDONE
    assert scenario.audit.ok


if __name__ == "__main__":
    main()
