#!/usr/bin/env python3
"""Supply-chain case study: compound attack, compound recovery.

Two simultaneous attacks hit a small supply chain:

1. the attacker inflates the stock reading procurement relies on, so a
   needed reorder is skipped — and later sales are wrongly backordered
   when the real stock runs out;
2. a forged sales order (stolen credentials) drains stock and books
   fake revenue.

One heal resolves everything: the forged order is undone outright, the
procurement branch is re-decided (the reorder happens — a brand-new
execution path), and every legitimate sale that was backordered is
re-decided and fulfilled.

Run:  python examples/supply_chain.py
"""

from repro.scenarios.supply_chain import build_supply_chain


def main() -> None:
    sc = build_supply_chain(n_sales=4)

    print("=== Attacked day ===")
    print(f"  figures : {sc.summary()}")
    print(f"  reorder skipped      : {bool(sc.store.read('po_note'))}")
    print(f"  forged sale invoiced : {sc.store.read('invoice_evil')}")
    backordered = [
        name for name in sc.sale_names
        if sc.store.read(f"status_{name}")
    ]
    print(f"  legit sales backordered: {backordered}")

    report = sc.heal_now()
    print(f"\n=== Recovery ===\n  {report.summary()}")
    print(f"  new executions (new paths): "
          f"{sorted(report.new_executions)}")

    print("\n=== Healed day ===")
    print(f"  figures : {sc.summary()}")
    print(f"  forged sale invoiced : {sc.store.read('invoice_evil')}")
    fulfilled = [
        name for name in sc.sale_names
        if sc.store.read(f"invoice_{name}") > 0
    ]
    print(f"  legit sales fulfilled: {fulfilled}")
    print(f"  strictly correct     : {sc.audit.ok}")

    assert sc.audit.ok
    assert sc.store.read("invoice_evil") == 0
    assert len(fulfilled) == len(sc.sale_names)


if __name__ == "__main__":
    main()
