#!/usr/bin/env python3
"""Distributed workflow processing: recovery over a segmented log.

Footnote 1 of the paper: "the system log may be stored in segments.
But it does not affect our discussion."  This example demonstrates that
claim operationally, with the workflow *specifications themselves* sent
over the wire as JSON (the decentralized model of Section VII):

1. two workflow documents are serialized, shipped, and rebuilt;
2. their execution is distributed over three processors, each keeping
   its own Lamport-stamped log segment;
3. the attacked system's segments are merged into a global log;
4. the standard healer runs on the merged log — and produces exactly
   the recovery the theory prescribes.

Run:  python examples/distributed_recovery.py
"""

from repro.core.axioms import audit_strict_correctness
from repro.core.healer import Healer
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.segments import SegmentedLog
from repro.workflow.serialize import TaskDocument, WorkflowDocument


def shipping_documents():
    """Two order workflows that share the warehouse stock counter."""
    pick = WorkflowDocument(
        workflow_id="pick",
        tasks=(
            TaskDocument("reserve",
                         writes={"stock": "stock - order_a"}),
            TaskDocument("label",
                         writes={"label_a": "order_a * 1000 + stock"}),
        ),
        edges=(("reserve", "label"),),
    )
    restock = WorkflowDocument(
        workflow_id="restock",
        tasks=(
            TaskDocument("receive",
                         writes={"stock": "stock + delivery"}),
            TaskDocument("report",
                         writes={"report": "stock"}),
        ),
        edges=(("receive", "report"),),
    )
    return pick, restock


def main() -> None:
    pick_doc, restock_doc = shipping_documents()
    wire = [doc.to_json() for doc in (pick_doc, restock_doc)]
    print(f"shipped {len(wire)} workflow documents "
          f"({sum(len(w) for w in wire)} bytes of JSON)")
    pick = WorkflowDocument.from_json(wire[0]).build()
    restock = WorkflowDocument.from_json(wire[1]).build()

    initial = {"stock": 10, "order_a": 3, "delivery": 5,
               "label_a": 0, "report": 0}
    store, log = DataStore(initial), SystemLog()
    engine = Engine(store, log)

    # The attacker forges the reservation: steals 9 units instead of 3.
    campaign = AttackCampaign().transform_task(
        "reserve", lambda i, o: {"stock": o["stock"] - 6}
    )
    runs = [engine.new_run(pick, "pick.1"),
            engine.new_run(restock, "restock.1")]
    engine.interleave(runs, policy="round_robin", tamper=campaign)
    print(f"under attack: stock={store.read('stock')} "
          f"report={store.read('report')}")

    # Distribute the log: each workflow's node owns its records; nodes
    # touching the shared stock counter witness each other's commits.
    assignment = {"pick.1": "node-A", "restock.1": "node-B"}
    slog = SegmentedLog(["node-A", "node-B", "node-C"])
    for record in log.normal_records():
        node = assignment[record.instance.workflow_instance]
        others = [n for n in slog.nodes if n != node]
        slog.commit_on(node, record.instance, record.reads,
                       record.writes, record.chosen, notify=others)
    print(f"log distributed over {len(slog.nodes)} nodes "
          f"({', '.join(f'{n}:{len(slog.segment(n))}' for n in slog.nodes)})")

    merged = slog.merge()
    healer = Healer(store, merged, engine.specs_by_instance)
    report = healer.heal(campaign.malicious_uids)
    print(f"healed via merged segments: {report.summary()}")
    print(f"after heal: stock={store.read('stock')} "
          f"report={store.read('report')}")

    audit = audit_strict_correctness(
        engine.specs_by_instance, initial, report.final_history,
        store.snapshot(),
    )
    print(f"strictly correct: {audit.ok}")
    assert store.read("stock") == 12      # 10 - 3 + 5
    assert audit.ok


if __name__ == "__main__":
    main()
