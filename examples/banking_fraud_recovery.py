#!/usr/bin/env python3
"""Banking fraud: undoing a forged transfer and its collateral damage.

The paper's introduction motivates attack recovery with forged bank
transactions.  Here the attacker uses stolen credentials to move 80
from Alice to Mallory.  The theft has a second-order effect: Alice's
*legitimate* transfer to Bob is rejected for insufficient funds.

Recovery (undo-only for the forged run — Axiom 1 condition 1) restores
the balances **and** re-decides the legitimate transfer's validation
branch: after healing, Alice's transfer to Bob is approved, as if the
theft never happened.

Run:  python examples/banking_fraud_recovery.py
"""

from repro.scenarios.banking import build_banking


def main() -> None:
    scenario = build_banking()

    print("=== Attacked state ===")
    for name, value in scenario.balances().items():
        print(f"  {name:<16}: {value}")
    print(f"  alice→bob transfer rejected: "
          f"{bool(scenario.store.read('rejected_ab'))}")
    print(f"  ledger volume: {scenario.store.read('ledger')}")

    report = scenario.heal_now()

    print(f"\n=== Recovery === \n  {report.summary()}")
    forged = [u for u in report.abandoned
              if u.startswith("transfer_forged/")]
    print(f"  forged tasks undone (never redone): {len(forged)}")
    print(f"  re-decided: transfer_ab validate → "
          f"{'approved' if not scenario.store.read('rejected_ab') else 'rejected'}")

    print("\n=== Healed state ===")
    for name, value in scenario.balances().items():
        print(f"  {name:<16}: {value}")
    print(f"  ledger volume: {scenario.store.read('ledger')}")
    print(f"  strictly correct: {scenario.audit.ok}")

    assert scenario.store.read("balance_mallory") == 0
    assert scenario.store.read("balance_bob") == 60
    assert scenario.audit.ok


if __name__ == "__main__":
    main()
