#!/usr/bin/env python3
"""Capacity planning with the CTMC model (Section VI guidelines).

Given a target attack rate λ and an acceptable steady-state loss
probability ε, size the recovery system: pick the recovery-task buffer,
verify ε-convergence, and check how long the design withstands a peak
attack rate far above its target.

Run:  python examples/capacity_planning.py
"""

from repro.markov.degradation import inverse_k
from repro.markov.design import design_system, peak_resilience
from repro.markov.metrics import (
    category_probabilities,
    epsilon_convergence,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory


def main() -> None:
    target_lambda, target_epsilon = 1.0, 0.01
    mu1, xi1 = 15.0, 20.0

    print(f"Designing for lambda={target_lambda}, "
          f"epsilon={target_epsilon}")
    print(f"Algorithms: mu_k = {mu1}/k, xi_k = {xi1}/k\n")

    result = design_system(
        arrival_rate=target_lambda,
        epsilon=target_epsilon,
        scan=inverse_k(mu1),
        recovery=inverse_k(xi1),
        max_buffer=30,
    )
    print("Buffer sweep (size -> steady-state loss probability):")
    for n, loss in sorted(result.swept.items()):
        marker = "  <-- chosen" if n == result.buffer_size else ""
        print(f"  {n:>3}: {loss:.3e}{marker}")
    print(f"\n{result.summary()}")
    assert result.feasible

    stg = RecoverySTG.paper_default(
        arrival_rate=target_lambda, mu1=mu1, xi1=xi1,
        buffer_size=result.buffer_size,
    )
    pi = steady_state(stg.ctmc())
    cats = category_probabilities(stg, pi)
    print("\nSteady state of the chosen design:")
    for cat in StateCategory:
        print(f"  P({cat.value:<8}) = {cats[cat]:.4f}")
    print(f"  epsilon-convergence: {epsilon_convergence(stg, pi):.3e}")

    print("\nPeak-rate stress (transient analysis, Section VI step 4):")
    for peak in (2.0, 4.0, 8.0):
        stressed = RecoverySTG.paper_default(
            arrival_rate=peak, mu1=mu1, xi1=xi1,
            buffer_size=result.buffer_size,
        )
        resist = peak_resilience(stressed, epsilon=0.05, horizon=30.0,
                                 step=0.25)
        verdict = ("absorbs the full horizon" if resist >= 30.0
                   else f"loses alerts after ~{resist:.2f} time units")
        print(f"  peak lambda={peak}: {verdict}")


if __name__ == "__main__":
    main()
